"""Figure 13 — Greenplum performance with varying segment counts."""

from _bench_utils import run_experiment
from repro.harness.experiments import fig13_greenplum_segments
from repro.perf import geomean


def test_fig13_segment_sweep(benchmark, report):
    rows = run_experiment(benchmark, fig13_greenplum_segments)
    report("Figure 13 — Greenplum segment sweep (normalised to 8 segments)", rows)
    by_segments = {}
    for row in rows:
        by_segments.setdefault(row["segments"], []).append(row["speedup_vs_8_segments"])
    means = {k: geomean(v) for k, v in by_segments.items()}
    # 8 segments is the sweet spot: both fewer and more segments are slower,
    # and plain PostgreSQL is the slowest configuration (paper Figure 13).
    assert means[8] == 1.0
    assert means[4] <= 1.0
    assert means[16] < 1.0
    assert means["postgres"] < means[8]
