"""Figure 13 — Greenplum performance with varying segment counts.

Two columns per (workload, segments) row: the analytical Greenplum cost
model (the paper's software baseline) and the measured functional path —
the sharded DAnA subsystem (:mod:`repro.cluster`) run at functional scale,
with speedups computed from its critical-path cycle counters.
"""

from _bench_utils import run_experiment
from repro.harness.experiments import FIG13_FUNCTIONAL_WORKLOADS, fig13_greenplum_segments
from repro.perf import geomean


def test_fig13_segment_sweep(benchmark, report):
    rows = run_experiment(benchmark, fig13_greenplum_segments)
    report("Figure 13 — Greenplum segment sweep (normalised to 8 segments)", rows)
    by_segments = {}
    for row in rows:
        by_segments.setdefault(row["segments"], []).append(row["speedup_vs_8_segments"])
    means = {k: geomean(v) for k, v in by_segments.items()}
    # 8 segments is the sweet spot: both fewer and more segments are slower,
    # and plain PostgreSQL is the slowest configuration (paper Figure 13).
    assert means[8] == 1.0
    assert means[4] <= 1.0
    assert means[16] < 1.0
    assert means["postgres"] < means[8]
    # Functional sharded-DAnA column: fewer segments must be measurably
    # slower, and — unlike the software baseline, whose coordination
    # overhead makes 16 segments regress — the accelerator path keeps at
    # least its 8-segment throughput when segments double.
    for name in FIG13_FUNCTIONAL_WORKLOADS:
        functional = {
            row["segments"]: row["functional_speedup_vs_8_segments"]
            for row in rows
            if row["workload"] == name and row["segments"] != "postgres"
        }
        assert functional[8] == 1.0
        assert functional[4] < 1.0
        assert functional[16] >= functional[4]
