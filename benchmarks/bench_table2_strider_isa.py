"""Table 2 — the Strider ISA: program generation and raw page-walking rate."""

import numpy as np

from _bench_utils import run_experiment
from repro.compiler import compile_strider
from repro.harness.experiments import table2_strider_isa
from repro.hw.strider import Strider
from repro.rdbms.page import HeapPage, PageLayout
from repro.rdbms.types import Schema


def test_table2_strider_programs(benchmark, report):
    rows = run_experiment(benchmark, table2_strider_isa)
    report("Table 2 — Strider ISA programs per page size", rows)
    assert all(row["all_words_fit_22_bits"] for row in rows)


def test_strider_page_walk_throughput(benchmark):
    """Micro-benchmark: walking one full 32 KB page with the Strider simulator."""
    layout = PageLayout(page_size=32 * 1024)
    schema = Schema.training_schema(54)
    page = HeapPage(layout)
    rng = np.random.default_rng(0)
    while page.has_room(schema):
        page.insert(schema, rng.normal(size=55).tolist())
    compiled = compile_strider(layout, schema)
    strider = Strider(compiled.program)
    image = page.to_bytes()

    result = benchmark(strider.process_page, image)
    assert result.stats.tuples_emitted == page.tuple_count
