"""Figure 10 — end-to-end speedups on the synthetic extensive (S/E) datasets."""

from _bench_utils import run_experiment
from repro.harness.experiments import fig10_synthetic_extensive


def _row(rows, name):
    return next(r for r in rows if r["workload"] == name)


def test_fig10a_warm_cache(benchmark, report):
    rows = run_experiment(benchmark, fig10_synthetic_extensive, True)
    report("Figure 10a — synthetic extensive, warm cache", rows)
    geomean = _row(rows, "Geomean")
    assert geomean["dana_speedup"] > geomean["greenplum_speedup"]
    # S/E Logistic is the headline win; S/E LRMF the weakest, as in the paper.
    logistic = _row(rows, "S/E Logistic")["dana_speedup"]
    lrmf = _row(rows, "S/E LRMF")["dana_speedup"]
    assert logistic > lrmf


def test_fig10b_cold_cache(benchmark, report):
    rows = run_experiment(benchmark, fig10_synthetic_extensive, False)
    report("Figure 10b — synthetic extensive, cold cache", rows)
    geomean = _row(rows, "Geomean")
    assert geomean["dana_speedup"] > 1.0
