"""Figure 12 — accelerator runtime versus the merge coefficient (thread count)."""

from _bench_utils import run_experiment
from repro.harness.experiments import fig12_thread_sweep


def _series(rows, workload):
    return [r["runtime_vs_single_thread"] for r in rows if r["workload"] == workload]


def test_fig12_thread_sweep(benchmark, report):
    rows = run_experiment(benchmark, fig12_thread_sweep)
    report("Figure 12 — runtime vs merge coefficient (normalised to 1 thread)", rows)
    # Narrow-model workloads speed up with threads until saturation.
    for workload in ("Remote Sensing LR", "Remote Sensing SVM"):
        series = _series(rows, workload)
        assert series[0] == 1.0
        assert min(series) < 0.6
        assert all(b <= a + 1e-9 for a, b in zip(series, series[1:]))
    # LRMF (Netflix) does not benefit from additional threads (paper §7.2).
    netflix = _series(rows, "Netflix")
    assert max(netflix) - min(netflix) < 0.1
