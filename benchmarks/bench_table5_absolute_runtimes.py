"""Table 5 — absolute runtimes across MADlib+PostgreSQL, Greenplum and DAnA."""

from _bench_utils import run_experiment
from repro.harness.experiments import table5_absolute_runtimes


def test_table5_absolute_runtimes(benchmark, report):
    rows = run_experiment(benchmark, table5_absolute_runtimes)
    report(
        "Table 5 — absolute runtimes (modelled vs paper)",
        rows,
        columns=[
            "workload",
            "madlib_postgres",
            "madlib_greenplum",
            "dana_postgres",
            "paper_madlib_postgres_s",
            "paper_dana_postgres_s",
        ],
    )
    # DAnA never loses end-to-end by more than a small margin, as in the paper
    for row in rows:
        assert row["dana_postgres_s"] <= row["madlib_postgres_s"] * 1.2
