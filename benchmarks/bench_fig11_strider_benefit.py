"""Figure 11 — DAnA with and without Striders.

The ablation replaces the buffer-pool-walking Striders with a CPU that
extracts and transforms every tuple before shipping it to the execution
engine, which is the alternative design the paper simulates.
"""

from _bench_utils import run_experiment
from repro.harness.experiments import fig11_strider_benefit


def test_fig11_strider_ablation(benchmark, report):
    rows = run_experiment(benchmark, fig11_strider_benefit)
    report("Figure 11 — DAnA with vs without Striders", rows)
    geomean = next(r for r in rows if r["workload"] == "Geomean")
    # Paper: Striders amplify the end-to-end benefit by ~4.6x on average
    # (10.8x vs 2.3x); the reproduction must show a clear amplification.
    assert geomean["dana_with_strider"] > geomean["dana_without_strider"]
    assert geomean["strider_amplification"] > 1.5
    # Striders help every single workload.
    for row in rows:
        assert row["dana_with_strider"] >= row["dana_without_strider"]
