"""Micro-benchmarks of the functional simulation pipeline itself.

These are not paper figures; they measure the reproduction's own moving
parts (translation, compilation, accelerated training, MADlib baseline) so
that regressions in the simulator are visible.
"""

import numpy as np

from repro.algorithms import Hyperparameters, LinearRegression, LogisticRegression
from repro.baselines import MADlibRunner
from repro.compiler import HardwareGenerator, Scheduler
from repro.core import DAnA
from repro.data.synthetic import generate_classification
from repro.hw import DEFAULT_FPGA
from repro.rdbms import Database, PageLayout
from repro.translator import translate


def _logistic_setup(n_tuples=1000, n_features=32, epochs=5):
    data = generate_classification(n_tuples, n_features, seed=7)
    hyper = Hyperparameters(learning_rate=0.3, merge_coefficient=16, epochs=epochs)
    spec = LogisticRegression().build_spec(n_features, hyper)
    db = Database(page_size=8 * 1024)
    db.load_table("train", spec.schema, data)
    return db, spec, data


def test_translate_and_compile(benchmark):
    """UDF → hDFG → hardware design → static schedule, end to end."""
    hyper = Hyperparameters(merge_coefficient=16)
    spec = LinearRegression().build_spec(256, hyper)

    def compile_once():
        graph = translate(LinearRegression().build_spec(256, hyper).algo)
        generator = HardwareGenerator(
            graph, PageLayout(), spec.schema, DEFAULT_FPGA,
            merge_coefficient=16, n_tuples=100_000,
        )
        design = generator.generate()
        return Scheduler(graph, design.acs_per_thread).schedule()

    schedule = benchmark(compile_once)
    assert schedule.update_rule_cycles > 0


def test_dana_accelerated_training(benchmark):
    """Full accelerated path: buffer-pool pages → Striders → engine → model."""
    db, spec, data = _logistic_setup()
    system = DAnA(db)
    system.register_udf("logisticR", spec, epochs=5)

    def train():
        return system.train("logisticR", "train", epochs=5)

    run = benchmark(train)
    assert LogisticRegression().accuracy(data, run.models) > 0.8


def test_madlib_baseline_training(benchmark):
    """The CPU-side MADlib execution model on the same workload."""
    db, spec, data = _logistic_setup()

    def train():
        return MADlibRunner(db, spec, epochs=5).run("train")

    result = benchmark(train)
    assert LogisticRegression().accuracy(data, result.models) > 0.8


def test_buffer_pool_scan_throughput(benchmark):
    """Sequential scan of a table through the buffer pool."""
    db, spec, _data = _logistic_setup(n_tuples=4000)
    table = db.table("train")

    def scan():
        return sum(1 for _ in table.scan_tuples(db.buffer_pool))

    count = benchmark(scan)
    assert count == 4000
