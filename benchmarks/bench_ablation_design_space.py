"""Ablation — the hardware generator's design-space exploration (paper §6.1)."""

from _bench_utils import run_experiment
from repro.harness.experiments import ablation_design_space


def test_design_space_exploration(benchmark, report):
    rows = run_experiment(benchmark, ablation_design_space, "Remote Sensing LR")
    report("Design-space exploration — Remote Sensing LR", rows)
    chosen = [r for r in rows if r["chosen"]]
    assert len(chosen) == 1
    best_cycles = min(r["cycles_per_epoch"] for r in rows)
    # The generator picks the smallest design within 1% of the best runtime.
    assert chosen[0]["cycles_per_epoch"] <= best_cycles * 1.01
    smaller = [r for r in rows if r["threads"] < chosen[0]["threads"]]
    assert all(r["cycles_per_epoch"] > best_cycles * 1.01 for r in smaller)


def test_design_space_lrmf_prefers_single_thread(benchmark, report):
    rows = run_experiment(benchmark, ablation_design_space, "Netflix")
    report("Design-space exploration — Netflix (LRMF)", rows)
    chosen = next(r for r in rows if r["chosen"])
    assert chosen["threads"] == 1
