"""Figure 16 — DAnA versus TABLA-generated single-threaded accelerators."""

from _bench_utils import run_experiment
from repro.harness.experiments import fig16_tabla


def test_fig16_tabla_comparison(benchmark, report):
    rows = run_experiment(benchmark, fig16_tabla)
    report("Figure 16 — DAnA speedup over TABLA", rows)
    geomean = next(r for r in rows if r["workload"] == "Geomean")
    # Paper: DAnA's multi-threading + Striders give ~4x over TABLA on average.
    assert geomean["dana_speedup_over_tabla"] > 1.5
    # DAnA never loses to TABLA on any workload.
    assert all(r["dana_speedup_over_tabla"] >= 0.95 for r in rows)
