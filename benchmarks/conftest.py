"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper through
:mod:`repro.harness.experiments` and prints the rows (run pytest with
``-s`` to see them).  The pytest-benchmark fixture wraps the generation so
the harness also reports how long each experiment takes to reproduce.
"""

from __future__ import annotations

import pytest

from repro.harness.tables import format_table


@pytest.fixture
def report():
    """Print an experiment's rows as an aligned table (visible with -s)."""

    def _report(title: str, rows, columns=None):
        print()
        print(format_table(rows, columns=columns, title=title))
        return rows

    return _report
