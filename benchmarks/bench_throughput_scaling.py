"""End-to-end throughput scaling: batched tape pipeline vs per-tuple seed path.

Measures tuples/second for the full DAnA pipeline — binary pages through
the access engine (Strider page walk + payload decode) into the execution
engine's training loop — on fig9-style synthetic workloads, across dataset
sizes, for both execution paths:

* ``per_tuple`` — the seed configuration: Strider instruction interpreter
  plus per-tuple hDFG evaluation (the tuple-at-a-time anti-pattern the
  paper targets);
* ``batched`` — the vectorized pipeline: bulk page walk, one-shot payload
  decode, and the CompiledTape evaluating whole merge batches.

Both paths must produce numerically equal models (rtol=1e-9) and identical
schedule-derived cycle counters; the script asserts this before recording
results in ``BENCH_throughput.json`` so future PRs have a perf trajectory
to beat.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_throughput_scaling.py [--smoke]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time
from pathlib import Path

import numpy as np

from repro.algorithms import Hyperparameters, get_algorithm
from repro.core import DAnA
from repro.data.synthetic import generate_for_algorithm
from repro.rdbms import Database

PAGE_SIZE = 8 * 1024
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

# fig9-style synthetic nominal shape: dense regression/classification,
# merge coefficient 16, a few epochs.
WORKLOADS = [
    ("linear", 16),
    ("logistic", 16),
]


def _train_once(algorithm_key: str, n_features: int, data: np.ndarray, epochs: int, fast: bool):
    """One full pipeline run (load → compile → extract → train); returns timing + run."""
    algorithm = get_algorithm(algorithm_key)
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=16, epochs=epochs)
    spec = algorithm.build_spec(n_features, hyper)
    if not fast:
        spec = dataclasses.replace(spec, bind_batch=None)
    database = Database(page_size=PAGE_SIZE)
    database.load_table("t", spec.schema, data)
    database.warm_cache("t")
    system = DAnA(database)
    system.register_udf(algorithm_key, spec, epochs=epochs)
    accelerator = system.accelerator_for(algorithm_key, "t")
    accelerator.access_engine.use_bulk_walk = fast
    start = time.perf_counter()
    run = system.train(algorithm_key, "t", epochs=epochs)
    elapsed = time.perf_counter() - start
    return elapsed, run


def bench_workload(algorithm_key: str, n_features: int, n_tuples: int, epochs: int) -> dict:
    data = generate_for_algorithm(algorithm_key, n_tuples, n_features, seed=0)
    slow_s, slow_run = _train_once(algorithm_key, n_features, data, epochs, fast=False)
    fast_s, fast_run = _train_once(algorithm_key, n_features, data, epochs, fast=True)

    # The two paths must be the same computation before speed means anything.
    for name, value in slow_run.models.items():
        np.testing.assert_allclose(fast_run.models[name], value, rtol=1e-9)
    assert fast_run.engine_stats == slow_run.engine_stats, "cycle counters diverged"
    assert fast_run.access_stats == slow_run.access_stats, "access stats diverged"

    processed = n_tuples * epochs
    return {
        "workload": algorithm_key,
        "n_tuples": n_tuples,
        "n_features": n_features,
        "epochs": epochs,
        "per_tuple_seconds": round(slow_s, 6),
        "batched_seconds": round(fast_s, 6),
        "per_tuple_tuples_per_sec": round(processed / slow_s, 1),
        "batched_tuples_per_sec": round(processed / fast_s, 1),
        "speedup": round(slow_s / fast_s, 2),
        "engine_cycles": fast_run.engine_stats.total_cycles,
    }


def run_suite(sizes: list[int], epochs: int) -> dict:
    rows = []
    for algorithm_key, n_features in WORKLOADS:
        for n_tuples in sizes:
            row = bench_workload(algorithm_key, n_features, n_tuples, epochs)
            rows.append(row)
            print(
                f"{row['workload']:>9} n={row['n_tuples']:>6}  "
                f"per-tuple {row['per_tuple_tuples_per_sec']:>10,.0f} t/s  "
                f"batched {row['batched_tuples_per_sec']:>11,.0f} t/s  "
                f"speedup {row['speedup']:>6.1f}x"
            )
    speedups = [row["speedup"] for row in rows]
    geomean = float(np.exp(np.mean(np.log(speedups))))
    return {
        "benchmark": "throughput_scaling",
        "description": (
            "End-to-end tuples/sec (page extraction + training) on fig9-style "
            "synthetic workloads: batched tape pipeline vs per-tuple seed path"
        ),
        "page_size": PAGE_SIZE,
        "rows": rows,
        "geomean_speedup": round(geomean, 2),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes for CI; does not overwrite BENCH_throughput.json",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="fail unless the geomean speedup reaches this factor",
    )
    args = parser.parse_args()
    sizes = [512, 2048] if args.smoke else [1000, 4000, 16000]
    epochs = 2 if args.smoke else 3
    report = run_suite(sizes, epochs)
    print(f"geomean speedup: {report['geomean_speedup']:.1f}x")
    if not args.smoke:
        RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
    if report["geomean_speedup"] < args.min_speedup:
        raise SystemExit(
            f"geomean speedup {report['geomean_speedup']:.1f}x is below the "
            f"required {args.min_speedup:.1f}x"
        )


if __name__ == "__main__":
    main()
