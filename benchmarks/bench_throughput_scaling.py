"""End-to-end throughput scaling: batched tape pipeline vs per-tuple seed path.

Measures tuples/second for the full DAnA pipeline — binary pages through
the access engine (Strider page walk + payload decode) into the execution
engine's training loop — on fig9-style synthetic workloads, across dataset
sizes, for both execution paths:

* ``per_tuple`` — the seed configuration: Strider instruction interpreter
  plus per-tuple hDFG evaluation (the tuple-at-a-time anti-pattern the
  paper targets);
* ``batched`` — the vectorized pipeline: bulk page walk, one-shot payload
  decode, and the CompiledTape evaluating whole merge batches.

Both paths must produce numerically equal models (rtol=1e-9) and identical
schedule-derived cycle counters; the script asserts this before recording
results in ``BENCH_throughput.json`` so future PRs have a perf trajectory
to beat.

The suite also sweeps the sharded execution subsystem (``segments=N``,
:mod:`repro.cluster`) on a large synthetic workload: the lock-step
executor evaluates every segment's batch in one segment-axis tape run, so
wall-clock improves with segment count even on one core (and further on
multicore, where the thread-pool path overlaps segments for real).

Finally, the ``pipeline_sweep`` measures the pipelined epoch runtime
(:mod:`repro.runtime`) on the barrier-heavy ``threads`` execution mode:
extraction overlap on/off × merge staleness (``sync="stale_synchronous"``)
plus the overlapped ``async_merge`` policy.  The pipelined configurations
must beat the fully barriered threads mode (the CI smoke gate) while the
stale-synchronous final loss stays within tolerance of bulk-synchronous.

The ``serving_sweep`` covers the prediction-serving subsystem
(:mod:`repro.serving`): whole-table scan-and-score across micro-batch
sizes and segment counts (the batched inference tape must beat the
per-tuple forward-pass oracle — the CI serving gate — with bit-identical
predictions, including through a registry save/load round trip), plus the
micro-batching prediction server's throughput / tail-latency tradeoff.

The ``sql_serving_sweep`` drives the PR-5 SQL surface end-to-end
(``CREATE MODEL`` → ``SELECT dana.predict(...)``, asserted bit-identical
to ``DAnA.score_table``) and sweeps **streaming** scan-and-score (the
Strider page walk overlapping the forward tape through a
``BatchSource`` double buffer) against the materialized oracle:
predictions and counters must be bit-identical, and the modelled
pipelined critical path must beat the serial one (the
``--min-streaming-score-speedup`` CI gate — schedule-derived, so it is
deterministic on any host; measured wall seconds are recorded alongside).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_throughput_scaling.py [--smoke]
"""

from __future__ import annotations

import argparse
import dataclasses
import gc
import json
import math
import os
import platform
import statistics
import time
from pathlib import Path

import numpy as np

from repro.algorithms import Hyperparameters, get_algorithm
from repro.core import DAnA
from repro.data.synthetic import generate_for_algorithm
from repro.rdbms import Database

PAGE_SIZE = 8 * 1024
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def _host_metadata() -> dict:
    """Host facts every sweep is stamped with.

    Wall-clock rows only mean something relative to the machine that
    produced them — most importantly ``host_cores``, which decides whether
    thread/process overlap was even possible when the row was measured.
    """
    return {
        "host_cores": os.cpu_count() or 1,
        "host_platform": platform.platform(),
        "host_machine": platform.machine(),
        "python": platform.python_version(),
    }

# fig9-style synthetic nominal shape: dense regression/classification,
# merge coefficient 16, a few epochs.
WORKLOADS = [
    ("linear", 16),
    ("logistic", 16),
]


def _train_once(algorithm_key: str, n_features: int, data: np.ndarray, epochs: int, fast: bool):
    """One full pipeline run (load → compile → extract → train); returns timing + run."""
    algorithm = get_algorithm(algorithm_key)
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=16, epochs=epochs)
    spec = algorithm.build_spec(n_features, hyper)
    if not fast:
        spec = dataclasses.replace(spec, bind_batch=None)
    database = Database(page_size=PAGE_SIZE)
    database.load_table("t", spec.schema, data)
    database.warm_cache("t")
    system = DAnA(database)
    system.register_udf(algorithm_key, spec, epochs=epochs)
    accelerator = system.accelerator_for(algorithm_key, "t")
    accelerator.access_engine.use_bulk_walk = fast
    start = time.perf_counter()
    run = system.train(algorithm_key, "t", epochs=epochs)
    elapsed = time.perf_counter() - start
    return elapsed, run


def bench_workload(algorithm_key: str, n_features: int, n_tuples: int, epochs: int) -> dict:
    data = generate_for_algorithm(algorithm_key, n_tuples, n_features, seed=0)
    slow_s, slow_run = _train_once(algorithm_key, n_features, data, epochs, fast=False)
    fast_s, fast_run = _train_once(algorithm_key, n_features, data, epochs, fast=True)

    # The two paths must be the same computation before speed means anything.
    for name, value in slow_run.models.items():
        np.testing.assert_allclose(fast_run.models[name], value, rtol=1e-9)
    assert fast_run.engine_stats == slow_run.engine_stats, "cycle counters diverged"
    assert fast_run.access_stats == slow_run.access_stats, "access stats diverged"

    processed = n_tuples * epochs
    return {
        "workload": algorithm_key,
        "n_tuples": n_tuples,
        "n_features": n_features,
        "epochs": epochs,
        "per_tuple_seconds": round(slow_s, 6),
        "batched_seconds": round(fast_s, 6),
        "per_tuple_tuples_per_sec": round(processed / slow_s, 1),
        "batched_tuples_per_sec": round(processed / fast_s, 1),
        "speedup": round(slow_s / fast_s, 2),
        "engine_cycles": fast_run.engine_stats.total_cycles,
    }


def bench_segment_sweep(
    segment_counts: list[int],
    n_tuples: int,
    n_features: int,
    epochs: int,
    merge_coefficient: int = 16,
    repeats: int = 2,
) -> list[dict]:
    """Wall-clock sweep of ``DAnA.train(..., segments=N)`` on one workload."""
    algorithm_key = "linear"
    algorithm = get_algorithm(algorithm_key)
    hyper = Hyperparameters(
        learning_rate=0.05, merge_coefficient=merge_coefficient, epochs=epochs
    )
    spec = algorithm.build_spec(n_features, hyper)
    data = generate_for_algorithm(algorithm_key, n_tuples, n_features, seed=0)
    database = Database(page_size=PAGE_SIZE)
    database.load_table("t", spec.schema, data)
    database.warm_cache("t")
    system = DAnA(database)
    system.register_udf(algorithm_key, spec, epochs=epochs)
    system.compile_udf(algorithm_key, "t")  # compile outside the timed region
    rows = []
    baseline_s = None
    baseline_loss = None
    for segments in segment_counts:
        best_s, run = None, None
        for _ in range(repeats):
            start = time.perf_counter()
            run = system.train(algorithm_key, "t", epochs=epochs, segments=segments)
            elapsed = time.perf_counter() - start
            best_s = elapsed if best_s is None else min(best_s, elapsed)
        # Every segment count must consume every tuple exactly once per epoch
        # and still learn the same regression.
        assert run.engine_stats.tuples_processed == n_tuples * epochs
        loss = algorithm.loss(data, run.models)
        if baseline_s is None:
            baseline_s, baseline_loss = best_s, loss
        assert loss <= max(baseline_loss * 1.5, 1e-6), (
            f"segments={segments} lost model quality: {loss} vs {baseline_loss}"
        )
        rows.append(
            {
                "segments": segments,
                "mode": run.cluster.mode,
                "n_tuples": n_tuples,
                "n_features": n_features,
                "epochs": epochs,
                "seconds": round(best_s, 6),
                "tuples_per_sec": round(n_tuples * epochs / best_s, 1),
                "wall_speedup_vs_1_segment": round(baseline_s / best_s, 2),
                "critical_path_cycles": run.critical_path_cycles,
                "loss": round(loss, 8),
            }
        )
        print(
            f"segments={segments:>2} ({run.cluster.mode:8s})  "
            f"{rows[-1]['tuples_per_sec']:>12,.0f} t/s  "
            f"wall speedup {rows[-1]['wall_speedup_vs_1_segment']:>5.2f}x  "
            f"critical cycles {run.critical_path_cycles:,}"
        )
    return rows


def bench_pipeline_sweep(
    n_tuples: int,
    n_features: int,
    epochs: int,
    segments: int = 4,
    merge_coefficient: int = 16,
    repeats: int = 3,
) -> list[dict]:
    """Overlap on/off × staleness sweep of the pipelined epoch runtime.

    All configurations run the ``threads`` execution mode — the one that
    pays a real pool-dispatch barrier per merge — so the sweep isolates
    what the pipeline runtime buys: streaming extraction overlap and fewer
    / overlapped cross-segment merges.  Row 0 (overlap off, staleness 1)
    is the fully barriered PR-2 behaviour every other row is normalised to.
    """
    algorithm_key = "linear"
    algorithm = get_algorithm(algorithm_key)
    hyper = Hyperparameters(
        learning_rate=0.05, merge_coefficient=merge_coefficient, epochs=epochs
    )
    spec = algorithm.build_spec(n_features, hyper)
    data = generate_for_algorithm(algorithm_key, n_tuples, n_features, seed=0)
    database = Database(page_size=PAGE_SIZE)
    database.load_table("t", spec.schema, data)
    database.warm_cache("t")
    system = DAnA(database)
    system.register_udf(algorithm_key, spec, epochs=epochs)
    system.compile_udf(algorithm_key, "t")  # compile outside the timed region
    configs = [
        dict(stream=stream, sync="stale_synchronous", staleness=staleness)
        for stream in (False, True)
        for staleness in (1, 2, 8)
    ] + [
        dict(stream=False, sync="async_merge", staleness=1),
        dict(stream=True, sync="async_merge", staleness=1),
    ]
    rows = []
    baseline_s = None
    baseline_loss = None
    for config in configs:
        best_s, run = None, None
        for _ in range(repeats):
            start = time.perf_counter()
            run = system.train(
                algorithm_key,
                "t",
                epochs=epochs,
                segments=segments,
                execution="threads",
                **config,
            )
            elapsed = time.perf_counter() - start
            best_s = elapsed if best_s is None else min(best_s, elapsed)
        assert run.engine_stats.tuples_processed == n_tuples * epochs
        loss = algorithm.loss(data, run.models)
        if baseline_s is None:
            baseline_s, baseline_loss = best_s, loss
        # Relaxing synchronization must never cost real model quality.
        assert loss <= max(baseline_loss * 1.5, 1e-6), (
            f"{config} lost model quality: {loss} vs BSP {baseline_loss}"
        )
        rows.append(
            {
                **config,
                "segments": segments,
                "n_tuples": n_tuples,
                "epochs": epochs,
                "merges_performed": run.cluster.merges_performed,
                "seconds": round(best_s, 6),
                "tuples_per_sec": round(n_tuples * epochs / best_s, 1),
                "speedup_vs_barriered": round(baseline_s / best_s, 3),
                "loss": round(loss, 8),
            }
        )
        print(
            f"stream={str(config['stream']):5s} sync={config['sync']:<18s} "
            f"staleness={config['staleness']}  {rows[-1]['seconds']*1e3:8.1f} ms  "
            f"speedup {rows[-1]['speedup_vs_barriered']:>5.2f}x  "
            f"merges {run.cluster.merges_performed}  loss {loss:.6f}"
        )
    return rows


def bench_process_sweep(
    segment_counts: list[int],
    n_tuples: int,
    n_features: int,
    epochs: int,
    repeats: int = 2,
) -> dict:
    """Process-pool execution vs the in-process threads mode, same computation.

    Sweeps ``DAnA.train(..., execution="processes")`` against the
    ``threads`` baseline at each segment count.  The two modes must be
    **bit-identical** — models and schedule-derived counters — before any
    timing is recorded; the wall-clock comparison then isolates what one
    OS process per segment buys (no GIL contention on the tape evaluation)
    against what it costs (worker spawn, shared-page export, per-window
    pickled state over pipes — recorded per row as ``ipc_bytes`` /
    ``ipc_round_trips``).

    Wall speedups only mean something on multicore hosts: on one core the
    compute serialises either way and the process path can only add its
    overheads, which is why every sweep is stamped with ``host_cores`` and
    the CI gate skips below 2 cores.
    """
    algorithm_key = "linear"
    algorithm = get_algorithm(algorithm_key)
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=16, epochs=epochs)
    spec = algorithm.build_spec(n_features, hyper)
    data = generate_for_algorithm(algorithm_key, n_tuples, n_features, seed=0)
    database = Database(page_size=PAGE_SIZE)
    database.load_table("t", spec.schema, data)
    database.warm_cache("t")
    system = DAnA(database)
    system.register_udf(algorithm_key, spec, epochs=epochs)
    system.compile_udf(algorithm_key, "t")  # compile outside the timed region

    def timed_train(execution: str, segments: int):
        best_s, run = None, None
        for _ in range(repeats):
            start = time.perf_counter()
            run = system.train(
                algorithm_key, "t", epochs=epochs,
                segments=segments, execution=execution,
            )
            elapsed = time.perf_counter() - start
            best_s = elapsed if best_s is None else min(best_s, elapsed)
        return best_s, run

    rows = []
    for segments in segment_counts:
        threads_s, threads_run = timed_train("threads", segments)
        process_s, process_run = timed_train("processes", segments)
        # Parity first: the process pool must be the same computation as
        # the in-process oracle, bit for bit.
        for name, value in threads_run.models.items():
            np.testing.assert_array_equal(process_run.models[name], value)
        assert process_run.engine_stats == threads_run.engine_stats, (
            f"segments={segments}: process engine counters diverged"
        )
        assert process_run.access_stats == threads_run.access_stats, (
            f"segments={segments}: process access counters diverged"
        )
        assert process_run.engine_stats.tuples_processed == n_tuples * epochs
        ipc = process_run.cluster.ipc
        rows.append(
            {
                "segments": segments,
                "n_tuples": n_tuples,
                "n_features": n_features,
                "epochs": epochs,
                "threads_seconds": round(threads_s, 6),
                "process_seconds": round(process_s, 6),
                "speedup_vs_threads": round(threads_s / process_s, 3),
                "tuples_per_sec": round(n_tuples * epochs / process_s, 1),
                "ipc_bytes": ipc.bytes_shipped,
                "ipc_round_trips": ipc.round_trips,
                "loss": round(algorithm.loss(data, process_run.models), 8),
            }
        )
        print(
            f"segments={segments:>2}  threads {threads_s*1e3:8.1f} ms  "
            f"processes {process_s*1e3:8.1f} ms  "
            f"speedup {rows[-1]['speedup_vs_threads']:>5.2f}x  "
            f"ipc {ipc.bytes_shipped:,} B / {ipc.round_trips} round trips"
        )
    return {
        "description": (
            "Process-parallel segment execution (one OS worker per segment "
            "over shared-memory heap pages) vs the in-process threads mode: "
            "bit-identical models and counters asserted at every segment "
            "count before timing; speedups are threads/processes wall-clock "
            "at the same segment count and only mean something when "
            "host_cores > 1"
        ),
        "rows": rows,
        **_host_metadata(),
    }


def bench_serving_sweep(
    n_tuples: int,
    n_features: int,
    segment_counts: list[int],
    batch_sizes: list[int],
    repeats: int = 2,
    server_requests: int = 1024,
) -> dict:
    """Scan-and-score sweep: micro-batch size x segments, batched vs per-tuple.

    The per-tuple forward-pass oracle (one :class:`HDFGEvaluator` walk per
    tuple, the serving twin of the seed training path) is the baseline every
    batched configuration is normalised to.  Predictions must be
    bit-identical across paths — and across the registry round trip —
    before speed means anything.
    """
    from repro.perf import ScoreRunCost

    algorithm_key = "linear"
    algorithm = get_algorithm(algorithm_key)
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=16, epochs=2)
    spec = algorithm.build_spec(n_features, hyper)
    data = generate_for_algorithm(algorithm_key, n_tuples, n_features, seed=0)
    database = Database(page_size=PAGE_SIZE)
    database.load_table("t", spec.schema, data)
    database.warm_cache("t")
    system = DAnA(database)
    system.register_udf(algorithm_key, spec, epochs=2)
    models = system.train(algorithm_key, "t", epochs=2).models

    # Registry round trip must be bit-identical (models and predictions).
    system.save_model("bench_model", algorithm_key, models)
    loaded = system.load_model("bench_model")
    for name, value in models.items():
        np.testing.assert_array_equal(loaded[name], np.asarray(value, np.float64))
    from_memory = system.score_table(algorithm_key, "t", models=models)
    from_registry = system.score_table(algorithm_key, "t", model_name="bench_model")
    np.testing.assert_array_equal(from_memory.predictions, from_registry.predictions)

    def timed_score(**kwargs):
        best_s, result = None, None
        for _ in range(repeats):
            start = time.perf_counter()
            result = system.score_table(algorithm_key, "t", models=models, **kwargs)
            elapsed = time.perf_counter() - start
            best_s = elapsed if best_s is None else min(best_s, elapsed)
        return best_s, result

    # Baseline: the per-tuple forward-pass oracle, single segment.
    oracle_s, oracle = timed_score(path="per_tuple", segments=1)
    per_tuple = {
        "path": "per_tuple",
        "segments": 1,
        "n_tuples": n_tuples,
        "seconds": round(oracle_s, 6),
        "tuples_per_sec": round(n_tuples / oracle_s, 1),
        "inference_cycles_per_tuple": round(
            ScoreRunCost.from_result(oracle).inference_cycles_per_tuple, 2
        ),
    }
    print(
        f"per-tuple oracle      {per_tuple['tuples_per_sec']:>12,.0f} t/s  "
        f"(baseline)"
    )
    rows = []
    for segments in segment_counts:
        for batch_size in batch_sizes:
            best_s, result = timed_score(
                path="batched", segments=segments, batch_size=batch_size
            )
            # Batched predictions must match the oracle bit-for-bit.
            np.testing.assert_array_equal(result.predictions, oracle.predictions)
            cost = ScoreRunCost.from_result(result)
            rows.append(
                {
                    "path": "batched",
                    "segments": segments,
                    "batch_size": batch_size,
                    "n_tuples": n_tuples,
                    "seconds": round(best_s, 6),
                    "tuples_per_sec": round(n_tuples / best_s, 1),
                    "speedup_vs_per_tuple": round(oracle_s / best_s, 2),
                    "inference_cycles_per_tuple": round(
                        cost.inference_cycles_per_tuple, 2
                    ),
                    "critical_path_cycles": cost.critical_path_cycles,
                }
            )
            print(
                f"segments={segments:>2} batch={batch_size:>5}  "
                f"{rows[-1]['tuples_per_sec']:>12,.0f} t/s  "
                f"speedup {rows[-1]['speedup_vs_per_tuple']:>7.2f}x  "
                f"{rows[-1]['inference_cycles_per_tuple']:.1f} cycles/tuple"
            )

    # Micro-batching server: throughput vs tail latency across batch bounds.
    microbatch = []
    request_rows = data[:server_requests]
    for max_batch in (1, 16, 64):
        with system.serve(
            algorithm_key, models=models, max_batch_size=max_batch, max_wait_ms=1.0
        ) as server:
            futures = [server.submit(row) for row in request_rows]
            for f in futures:
                f.result(timeout=60)
        stats = server.stats
        microbatch.append(
            {
                "max_batch_size": max_batch,
                "requests": stats.requests,
                "batches": stats.batches,
                "mean_batch_size": round(stats.mean_batch_size, 1),
                "requests_per_sec": round(stats.requests_per_second, 1),
                "p50_latency_ms": round(stats.p50_latency_ms, 3),
                "p99_latency_ms": round(stats.p99_latency_ms, 3),
            }
        )
        print(
            f"server max_batch={max_batch:>3}  "
            f"{microbatch[-1]['requests_per_sec']:>10,.0f} req/s  "
            f"p50 {microbatch[-1]['p50_latency_ms']:>6.2f} ms  "
            f"p99 {microbatch[-1]['p99_latency_ms']:>6.2f} ms"
        )
    return {
        "description": (
            "Scan-and-score sweep (micro-batch size x segments) on the "
            "synthetic linear workload: batched inference tape vs the "
            "per-tuple forward-pass oracle, plus the micro-batching "
            "prediction server's throughput/latency tradeoff"
        ),
        "per_tuple_baseline": per_tuple,
        "rows": rows,
        "microbatch": microbatch,
        **_host_metadata(),
    }


def bench_sql_serving_sweep(
    n_tuples: int,
    n_features: int,
    segment_counts: list[int],
    repeats: int = 3,
) -> dict:
    """SQL surface + streaming scan-and-score sweep.

    Drives the whole serving loop through SQL (``CREATE MODEL`` →
    ``SELECT dana.predict(...)``) and sweeps streaming vs materialized
    scan-and-score.  Three invariants are asserted before anything is
    recorded:

    * SQL predictions are bit-identical to ``DAnA.score_table``;
    * streaming predictions and counters are bit-identical to the
      materialized oracle at every segment count;
    * the modelled pipelined critical path (``max(extract, forward)`` per
      segment) beats the serial one — the schedule-derived speedup the
      CI ``--min-streaming-score-speedup`` gate holds, which is
      deterministic and host-independent (measured wall seconds are
      recorded alongside for transparency; real-thread overlap needs
      multiple cores, which CI runners and laptops have but the modelled
      FPGA pipeline does not depend on).
    """
    from repro.perf import ScoreRunCost

    algorithm_key = "linear"
    algorithm = get_algorithm(algorithm_key)
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=16, epochs=2)
    spec = algorithm.build_spec(n_features, hyper)
    data = generate_for_algorithm(algorithm_key, n_tuples, n_features, seed=0)
    database = Database(page_size=PAGE_SIZE)
    database.load_table("t", spec.schema, data)
    database.warm_cache("t")
    system = DAnA(database)
    system.register_udf(algorithm_key, spec, epochs=2)

    # Train + persist through SQL, not the Python API.
    created = database.execute(
        "CREATE MODEL sql_model AS TRAIN linear ON t WITH (epochs => 2)"
    )
    assert created.rows[0][:2] == ("sql_model", 1)

    # SQL predictions must be bit-identical to the Python serving API.
    direct = system.score_table(algorithm_key, "t", model_name="sql_model")
    start = time.perf_counter()
    via_sql = database.execute("SELECT dana.predict('sql_model') FROM t")
    sql_seconds = time.perf_counter() - start
    np.testing.assert_array_equal(
        np.array([row[0] for row in via_sql.rows]), direct.predictions
    )
    print(
        f"SQL predict: {len(via_sql)} rows in {sql_seconds*1e3:.1f}ms, "
        f"bit-identical to score_table"
    )

    def timed_score(stream: bool, segments: int):
        best_s, result = None, None
        for _ in range(repeats):
            start = time.perf_counter()
            result = system.score_table(
                algorithm_key, "t", model_name="sql_model",
                segments=segments, stream=stream,
            )
            elapsed = time.perf_counter() - start
            best_s = elapsed if best_s is None else min(best_s, elapsed)
        return best_s, result

    rows = []
    best_modelled_speedup = 0.0
    for segments in segment_counts:
        mat_s, materialized = timed_score(stream=False, segments=segments)
        stream_s, streamed = timed_score(stream=True, segments=segments)
        # Streaming must be the same computation as the materialized oracle.
        np.testing.assert_array_equal(
            streamed.predictions, materialized.predictions
        )
        assert streamed.inference_stats == materialized.inference_stats, (
            "streaming diverged from the materialized counters"
        )
        cost_stream = ScoreRunCost.from_result(streamed)
        cost_mat = ScoreRunCost.from_result(materialized)
        modelled_speedup = (
            cost_mat.wall_cycles / cost_stream.wall_cycles
            if cost_stream.wall_cycles
            else 0.0
        )
        best_modelled_speedup = max(best_modelled_speedup, modelled_speedup)
        rows.append(
            {
                "segments": segments,
                "n_tuples": n_tuples,
                "materialized_seconds": round(mat_s, 6),
                "streaming_seconds": round(stream_s, 6),
                "measured_wall_speedup": round(mat_s / stream_s, 3),
                "serial_critical_path_cycles": cost_mat.wall_cycles,
                "pipelined_critical_path_cycles": cost_stream.wall_cycles,
                "modelled_streaming_speedup": round(modelled_speedup, 3),
                "modelled_streaming_seconds": cost_stream.seconds(),
                "modelled_materialized_seconds": cost_mat.seconds(),
            }
        )
        print(
            f"segments={segments:>2}  modelled streaming speedup "
            f"{modelled_speedup:>5.2f}x (serial {cost_mat.wall_cycles} -> "
            f"pipelined {cost_stream.wall_cycles} cycles), measured wall "
            f"{rows[-1]['measured_wall_speedup']:.2f}x on "
            f"{os.cpu_count()} host core(s)"
        )
    return {
        "description": (
            "SQL serving surface (CREATE MODEL -> SELECT dana.predict) + "
            "streaming scan-and-score vs the materialized oracle: "
            "bit-identical predictions asserted; the modelled speedup is "
            "the schedule-derived pipelined critical path "
            "(max(extract, forward) per segment) over the serial one, "
            "host-independent; measured host wall seconds recorded "
            "alongside (real-thread overlap needs >1 core)"
        ),
        "sql_predict_seconds": round(sql_seconds, 6),
        "rows": rows,
        "best_modelled_streaming_speedup": round(best_modelled_speedup, 3),
        **_host_metadata(),
    }


def bench_reliability_sweep(
    n_tuples: int,
    n_features: int,
    segments: int = 2,
    repeats: int = 40,
) -> dict:
    """Fault-tolerance overhead sweep on the batched scan-and-score path.

    Three configurations of the same scoring computation:

    * ``baseline`` — injection off, no retry supervision (the hot path is
      one module-global load + is-None check per fault site);
    * ``retry_armed`` — a :class:`~repro.reliability.RetryPolicy` is
      supervising every segment but no fault fires; the overhead of the
      armed reliability machinery is the number the
      ``--max-reliability-overhead`` CI gate bounds;
    * ``chaos_recovery`` — a seeded :class:`~repro.reliability.FaultPlan`
      injects transient faults that retries absorb; recorded for the
      recovery-cost trajectory, not gated.

    All three must produce bit-identical predictions, and the fault-free
    pair identical schedule-derived counters, before timing means
    anything.  The overhead estimate is the **median of per-pair time
    ratios** over ``repeats`` adjacent (baseline, retry-armed) pairs,
    with the in-pair order alternating each iteration and the cyclic GC
    paused: host drift is slow relative to one pair, so it cancels
    inside each ratio, and the median discards the pairs a scheduler
    hiccup landed in.  The CI gate compares the allowance against the
    one-sided 95% lower confidence bound of that median (the sign-test
    order statistic), not the point estimate — per-run wall times on
    busy hosts swing far more than the ~0% signal this gate bounds, so
    the gate trips only when the regression is statistically real, while
    staying sharp on quiet CI runners where the bound hugs the median.
    The reported ms figures are the per-configuration minima (the usual
    floor estimate).
    """
    from repro.reliability import FaultPlan, RetryPolicy

    algorithm_key = "linear"
    algorithm = get_algorithm(algorithm_key)
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=16, epochs=2)
    spec = algorithm.build_spec(n_features, hyper)
    data = generate_for_algorithm(algorithm_key, n_tuples, n_features, seed=0)
    database = Database(page_size=PAGE_SIZE)
    database.load_table("t", spec.schema, data)
    database.warm_cache("t")
    system = DAnA(database)
    system.register_udf(algorithm_key, spec, epochs=2)
    models = system.train(algorithm_key, "t", epochs=2).models

    retry = RetryPolicy(max_attempts=3, backoff_s=0.0)

    def score(**kwargs):
        return system.score_table(
            algorithm_key, "t", models=models, segments=segments, **kwargs
        )

    # Warm every code path once (compilation, plan caches) before timing.
    baseline = score()
    retry_armed = score(retry=retry)
    np.testing.assert_array_equal(baseline.predictions, retry_armed.predictions)
    assert baseline.inference_stats == retry_armed.inference_stats, (
        "armed-but-idle retry supervision changed the scoring counters"
    )

    timings = {"baseline": None, "retry_armed": None}
    configs = [("baseline", {}), ("retry_armed", {"retry": retry})]
    ratios = []
    # Alternate which configuration runs first each iteration (so periodic
    # host work cannot alias with one of them) and pause the cyclic GC (a
    # collection landing inside one timed run would be charged to whichever
    # configuration happened to trigger it).
    gc.collect()
    gc.disable()
    try:
        for iteration in range(repeats):
            order = configs if iteration % 2 == 0 else configs[::-1]
            pair = {}
            for name, kwargs in order:
                start = time.perf_counter()
                score(**kwargs)
                elapsed = time.perf_counter() - start
                pair[name] = elapsed
                if timings[name] is None or elapsed < timings[name]:
                    timings[name] = elapsed
            ratios.append(pair["retry_armed"] / pair["baseline"])
    finally:
        gc.enable()

    from repro.reliability import inject_faults

    plan = FaultPlan.transient(
        ("serving.scorer.segment", 1),
        ("runtime.batch_source.producer", 2),
    )
    chaos_s, chaos = None, None
    for _ in range(max(2, repeats // 2)):
        with inject_faults(plan):
            start = time.perf_counter()
            chaos = score(retry=retry)
            elapsed = time.perf_counter() - start
        chaos_s = elapsed if chaos_s is None else min(chaos_s, elapsed)
    # The recovered run is the same computation, bit for bit.
    np.testing.assert_array_equal(baseline.predictions, chaos.predictions)
    assert chaos.retry.faults >= 2, "the chaos plan failed to fire"

    overhead = statistics.median(ratios) - 1.0
    # One-sided 95% lower confidence bound on the median ratio: with the
    # true median, the count of pairs below it is Binomial(n, 1/2), so the
    # k-th order statistic with k = n/2 - 1.645*sqrt(n)/2 bounds it from
    # below at the 95% level.  This is what the CI gate tests against.
    ordered = sorted(ratios)
    k = max(0, math.floor(len(ordered) / 2 - 1.645 * math.sqrt(len(ordered)) / 2))
    overhead_lower_bound = ordered[k] - 1.0
    report = {
        "description": (
            "Fault-tolerance overhead on the batched scan-and-score path: "
            "injection off vs armed-but-idle retry supervision (gated by "
            "--max-reliability-overhead) vs seeded chaos recovery "
            "(bit-identical predictions asserted for all three)"
        ),
        "n_tuples": n_tuples,
        "segments": segments,
        "baseline_seconds": round(timings["baseline"], 6),
        "retry_armed_seconds": round(timings["retry_armed"], 6),
        "reliability_overhead": round(overhead, 4),
        "reliability_overhead_lower_95": round(overhead_lower_bound, 4),
        "overhead_pairs": repeats,
        "chaos_recovery_seconds": round(chaos_s, 6),
        "chaos_faults_injected": chaos.retry.faults,
        "chaos_retries": chaos.retry.retries,
        **_host_metadata(),
    }
    print(
        f"reliability: baseline {timings['baseline']*1e3:8.1f} ms  "
        f"retry-armed {timings['retry_armed']*1e3:8.1f} ms  "
        f"overhead {overhead*100:+.2f}% "
        f"(median of {repeats} pairs, 95% lower bound "
        f"{overhead_lower_bound*100:+.2f}%)  "
        f"chaos recovery {chaos_s*1e3:8.1f} ms "
        f"({chaos.retry.faults} faults retried)"
    )
    return report


def bench_observability_sweep(
    n_tuples: int,
    n_features: int,
    segments: int = 2,
    repeats: int = 40,
) -> dict:
    """Telemetry overhead sweep on the batched scan-and-score path.

    Two configurations of the same scoring computation:

    * ``baseline`` — telemetry disarmed (every instrumentation site is
      one module-global load + is-None check, the ``fault_point``
      discipline);
    * ``telemetry_armed`` — a :class:`~repro.obs.Telemetry` session is
      active, so every site opens a span and the serving path feeds the
      shared histograms; this is the number the
      ``--max-observability-overhead`` CI gate bounds.

    Both configurations must produce bit-identical predictions and
    identical schedule-derived counters before timing means anything —
    spans are wall-clock observers, never inputs to the computation.
    The estimator and gate statistic are the same as the reliability
    sweep: median of per-pair time ratios over ``repeats`` adjacent
    pairs (in-pair order alternating, cyclic GC paused), gated on the
    one-sided 95% lower confidence bound of that median.
    """
    from repro.obs import Telemetry, enable_telemetry

    algorithm_key = "linear"
    algorithm = get_algorithm(algorithm_key)
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=16, epochs=2)
    spec = algorithm.build_spec(n_features, hyper)
    data = generate_for_algorithm(algorithm_key, n_tuples, n_features, seed=0)
    database = Database(page_size=PAGE_SIZE)
    database.load_table("t", spec.schema, data)
    database.warm_cache("t")
    system = DAnA(database)
    system.register_udf(algorithm_key, spec, epochs=2)
    models = system.train(algorithm_key, "t", epochs=2).models

    def score():
        return system.score_table(
            algorithm_key, "t", models=models, segments=segments
        )

    def score_armed():
        # A fresh session per run: per-run cost stays constant instead of
        # the span list growing across iterations.
        with enable_telemetry(Telemetry()) as session:
            result = score()
        return result, session

    # Warm every code path once, then assert the parity invariant.
    baseline = score()
    armed, session = score_armed()
    np.testing.assert_array_equal(baseline.predictions, armed.predictions)
    assert baseline.inference_stats == armed.inference_stats, (
        "armed telemetry changed the scoring counters"
    )
    spans_per_run = len(session.tracer)
    assert spans_per_run >= segments, "the scorer spans did not fire"

    timings = {"baseline": None, "telemetry_armed": None}
    configs = [("baseline", score), ("telemetry_armed", lambda: score_armed()[0])]
    ratios = []
    gc.collect()
    gc.disable()
    try:
        for iteration in range(repeats):
            order = configs if iteration % 2 == 0 else configs[::-1]
            pair = {}
            for name, run in order:
                start = time.perf_counter()
                run()
                elapsed = time.perf_counter() - start
                pair[name] = elapsed
                if timings[name] is None or elapsed < timings[name]:
                    timings[name] = elapsed
            ratios.append(pair["telemetry_armed"] / pair["baseline"])
    finally:
        gc.enable()

    overhead = statistics.median(ratios) - 1.0
    ordered = sorted(ratios)
    k = max(0, math.floor(len(ordered) / 2 - 1.645 * math.sqrt(len(ordered)) / 2))
    overhead_lower_bound = ordered[k] - 1.0
    report = {
        "description": (
            "Telemetry overhead on the batched scan-and-score path: "
            "disarmed (is-None check per site) vs an armed span/metrics "
            "session (gated by --max-observability-overhead); "
            "bit-identical predictions and counters asserted first"
        ),
        "n_tuples": n_tuples,
        "segments": segments,
        "baseline_seconds": round(timings["baseline"], 6),
        "telemetry_armed_seconds": round(timings["telemetry_armed"], 6),
        "observability_overhead": round(overhead, 4),
        "observability_overhead_lower_95": round(overhead_lower_bound, 4),
        "overhead_pairs": repeats,
        "spans_per_run": spans_per_run,
        **_host_metadata(),
    }
    print(
        f"observability: baseline {timings['baseline']*1e3:8.1f} ms  "
        f"telemetry-armed {timings['telemetry_armed']*1e3:8.1f} ms  "
        f"overhead {overhead*100:+.2f}% "
        f"(median of {repeats} pairs, 95% lower bound "
        f"{overhead_lower_bound*100:+.2f}%)  "
        f"{spans_per_run} spans per run"
    )
    return report


def bench_explain_analyze_sweep(
    n_tuples: int,
    n_features: int,
    segments: int = 2,
    repeats: int = 40,
) -> dict:
    """``EXPLAIN ANALYZE`` overhead sweep on the SQL scoring statement.

    Two executions of the same ``dana.score`` statement:

    * ``baseline`` — the bare statement through ``Database.execute``;
    * ``explain_analyze`` — the statement wrapped in ``EXPLAIN ANALYZE``,
      which additionally builds the costed plan tree, runs the statement
      inside a :class:`~repro.obs.StatementTrace`, and annotates every
      operator with its measured side.

    The wrapped statement's inner result must be bit-identical to the
    bare one before timing means anything.  The estimator and gate
    statistic mirror :func:`bench_observability_sweep` (median of
    per-pair ratios, one-sided 95% lower confidence bound), and CI
    bounds the overhead with the same ``--max-observability-overhead``
    gate — statement tracing is observability, so it obeys the same
    budget.
    """
    algorithm_key = "linear"
    algorithm = get_algorithm(algorithm_key)
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=16, epochs=2)
    spec = algorithm.build_spec(n_features, hyper)
    data = generate_for_algorithm(algorithm_key, n_tuples, n_features, seed=0)
    database = Database(page_size=PAGE_SIZE)
    database.load_table("t", spec.schema, data)
    database.warm_cache("t")
    system = DAnA(database)
    system.register_udf(algorithm_key, spec, epochs=2)
    run = system.train(algorithm_key, "t", epochs=2)
    system.save_model("m", algorithm_key, run.models)

    sql = f"SELECT * FROM dana.score('m', 't', segments => {segments})"

    def bare():
        return database.execute(sql)

    def explained():
        return database.execute("EXPLAIN ANALYZE " + sql)

    # Warm both paths once, then assert the bit-identity invariant.
    baseline = bare()
    report_result = explained()
    assert report_result.payload.result.rows == baseline.rows, (
        "EXPLAIN ANALYZE changed the statement's result"
    )

    timings = {"baseline": None, "explain_analyze": None}
    configs = [("baseline", bare), ("explain_analyze", explained)]
    ratios = []
    gc.collect()
    gc.disable()
    try:
        for iteration in range(repeats):
            order = configs if iteration % 2 == 0 else configs[::-1]
            pair = {}
            for name, runner in order:
                start = time.perf_counter()
                runner()
                elapsed = time.perf_counter() - start
                pair[name] = elapsed
                if timings[name] is None or elapsed < timings[name]:
                    timings[name] = elapsed
            ratios.append(pair["explain_analyze"] / pair["baseline"])
    finally:
        gc.enable()

    overhead = statistics.median(ratios) - 1.0
    ordered = sorted(ratios)
    k = max(0, math.floor(len(ordered) / 2 - 1.645 * math.sqrt(len(ordered)) / 2))
    overhead_lower_bound = ordered[k] - 1.0
    report = {
        "description": (
            "EXPLAIN ANALYZE overhead on the SQL scoring statement: bare "
            "execution vs plan build + statement trace + annotation "
            "(gated by --max-observability-overhead); bit-identical "
            "inner result asserted first"
        ),
        "n_tuples": n_tuples,
        "segments": segments,
        "baseline_seconds": round(timings["baseline"], 6),
        "explain_analyze_seconds": round(timings["explain_analyze"], 6),
        "explain_analyze_overhead": round(overhead, 4),
        "explain_analyze_overhead_lower_95": round(overhead_lower_bound, 4),
        "overhead_pairs": repeats,
        **_host_metadata(),
    }
    print(
        f"explain-analyze: baseline {timings['baseline']*1e3:8.1f} ms  "
        f"explain-analyze {timings['explain_analyze']*1e3:8.1f} ms  "
        f"overhead {overhead*100:+.2f}% "
        f"(median of {repeats} pairs, 95% lower bound "
        f"{overhead_lower_bound*100:+.2f}%)"
    )
    return report


def run_suite(sizes: list[int], epochs: int) -> dict:
    rows = []
    for algorithm_key, n_features in WORKLOADS:
        for n_tuples in sizes:
            row = bench_workload(algorithm_key, n_features, n_tuples, epochs)
            rows.append(row)
            print(
                f"{row['workload']:>9} n={row['n_tuples']:>6}  "
                f"per-tuple {row['per_tuple_tuples_per_sec']:>10,.0f} t/s  "
                f"batched {row['batched_tuples_per_sec']:>11,.0f} t/s  "
                f"speedup {row['speedup']:>6.1f}x"
            )
    speedups = [row["speedup"] for row in rows]
    geomean = float(np.exp(np.mean(np.log(speedups))))
    return {
        "benchmark": "throughput_scaling",
        "description": (
            "End-to-end tuples/sec (page extraction + training) on fig9-style "
            "synthetic workloads: batched tape pipeline vs per-tuple seed path"
        ),
        "page_size": PAGE_SIZE,
        "rows": rows,
        "geomean_speedup": round(geomean, 2),
        **_host_metadata(),
    }


def bench_refresh_sweep(
    table_sizes: list[int],
    delta: int,
    n_features: int = 16,
    epochs: int = 3,
) -> dict:
    """Incremental-refresh cost vs table size, at a **fixed** insert delta.

    For each table size: bulk-load the base, train and save a watermarked
    model, ``INSERT`` the same ``delta`` rows, then ``refresh_model``.
    The refresh warm-starts from the saved parameters and scans only the
    heap pages past the watermark, so its cost must track the *delta*,
    not the table — the point of online training over live tables.

    The gate statistic is **schedule-derived**: the refresh run's engine
    cycles across table sizes must stay within ``max/min <=
    --max-refresh-cost-ratio`` (deterministic on any host; the only
    wiggle is the restamped tail page, whose slack depends on how full
    the base left it).  Measured wall seconds and the full-train cycle
    counts are recorded alongside for the scaling story.
    """
    algorithm_key = "linear"
    algorithm = get_algorithm(algorithm_key)
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=16, epochs=epochs)
    rows = []
    for n_tuples in table_sizes:
        spec = algorithm.build_spec(n_features, hyper)
        data = generate_for_algorithm(
            algorithm_key, n_tuples + delta, n_features, seed=0
        )
        database = Database(page_size=PAGE_SIZE)
        database.load_table("t", spec.schema, data[:n_tuples])
        database.warm_cache("t")
        system = DAnA(database)
        system.register_udf(algorithm_key, spec, epochs=epochs)
        train_run = system.train(algorithm_key, "t", epochs=epochs)
        system.save_model(
            "m",
            algorithm_key,
            train_run.models,
            metadata={"trained_on": "t"},
            watermark=train_run.snapshot_lsn,
        )
        database.insert_rows("t", data[n_tuples:])
        start = time.perf_counter()
        refresh = system.refresh_model("m", epochs=epochs)
        refresh_s = time.perf_counter() - start
        assert refresh.refreshed, "the delta must trigger a real refresh"
        heap = database.table("t")
        # Page-granular scan set: the delta plus at most one restamped
        # tail page of pre-watermark rows.
        assert refresh.tuples_trained <= delta + heap.tuples_per_page()
        assert refresh.tuples_trained >= delta
        rows.append(
            {
                "n_tuples": n_tuples,
                "delta": delta,
                "n_features": n_features,
                "epochs": epochs,
                "refresh_seconds": round(refresh_s, 6),
                "refresh_tuples_trained": refresh.tuples_trained,
                "refresh_pages_trained": refresh.pages_trained,
                "refresh_engine_cycles": refresh.run.engine_stats.total_cycles,
                "train_engine_cycles": train_run.engine_stats.total_cycles,
                "train_to_refresh_cycle_ratio": round(
                    train_run.engine_stats.total_cycles
                    / refresh.run.engine_stats.total_cycles,
                    2,
                ),
            }
        )
        print(
            f"table={n_tuples:>7,}  delta={delta:>5,}  "
            f"refresh {refresh_s*1e3:8.1f} ms  "
            f"refresh cycles {rows[-1]['refresh_engine_cycles']:>9,}  "
            f"full-train cycles {rows[-1]['train_engine_cycles']:>11,}"
        )
    cycles = [r["refresh_engine_cycles"] for r in rows]
    return {
        "description": (
            "Incremental model refresh (warm start over pages past the "
            "LSN watermark) at a fixed insert delta, across table sizes; "
            "gated on refresh engine cycles being ~invariant in the table "
            "size (cost scales with the delta, not the table)"
        ),
        "rows": rows,
        "refresh_cycle_ratio_max_over_min": round(max(cycles) / min(cycles), 3),
        **_host_metadata(),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes for CI; does not overwrite BENCH_throughput.json",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="fail unless the geomean speedup reaches this factor",
    )
    parser.add_argument(
        "--min-segment-speedup",
        type=float,
        default=1.5,
        help="fail unless 4 segments beat 1 segment by this wall-clock factor",
    )
    parser.add_argument(
        "--min-pipeline-speedup",
        type=float,
        default=1.03,
        help=(
            "fail unless the pipelined runtime (streaming overlap / stale "
            "windows / overlapped merges) beats the barriered threads mode "
            "by this wall-clock factor"
        ),
    )
    parser.add_argument(
        "--min-process-speedup",
        type=float,
        default=1.5,
        help=(
            "fail unless execution='processes' beats the threads mode at "
            "4 segments by this wall-clock factor; only enforced in full "
            "on hosts with >= 4 cores (2-3 cores require near-break-even, "
            "1-core hosts skip the gate with a notice — parity is still "
            "asserted everywhere)"
        ),
    )
    parser.add_argument(
        "--min-serving-speedup",
        type=float,
        default=2.0,
        help=(
            "fail unless batched sharded scan-and-score beats the per-tuple "
            "forward-pass oracle by this wall-clock factor"
        ),
    )
    parser.add_argument(
        "--min-streaming-score-speedup",
        type=float,
        default=1.05,
        help=(
            "fail unless streaming scan-and-score beats the materialized "
            "oracle by this factor on the modelled (schedule-derived) "
            "pipelined critical path"
        ),
    )
    parser.add_argument(
        "--max-reliability-overhead",
        type=float,
        default=0.02,
        help=(
            "fail if armed-but-idle retry supervision slows the batched "
            "scan-and-score path by more than this fraction (tested "
            "against the 95%% lower confidence bound of the median "
            "per-pair ratio, so host noise cannot trip it)"
        ),
    )
    parser.add_argument(
        "--max-observability-overhead",
        type=float,
        default=0.02,
        help=(
            "fail if an armed telemetry session slows the batched "
            "scan-and-score path by more than this fraction (tested "
            "against the 95%% lower confidence bound of the median "
            "per-pair ratio, same method as the reliability gate)"
        ),
    )
    parser.add_argument(
        "--max-refresh-cost-ratio",
        type=float,
        default=1.5,
        help=(
            "fail if the incremental-refresh engine cycles (fixed insert "
            "delta) vary across table sizes by more than this max/min "
            "ratio — refresh cost must scale with the new rows, not the "
            "table (schedule-derived, so deterministic on any host)"
        ),
    )
    args = parser.parse_args()
    sizes = [512, 2048] if args.smoke else [1000, 4000, 16000]
    epochs = 2 if args.smoke else 3
    report = run_suite(sizes, epochs)
    print(f"geomean speedup: {report['geomean_speedup']:.1f}x")
    print("\nsegment sweep (sharded execution, large synthetic workload):")
    if args.smoke:
        sweep = bench_segment_sweep([1, 2, 4], n_tuples=8192, n_features=16, epochs=3)
    else:
        sweep = bench_segment_sweep(
            [1, 2, 4, 8], n_tuples=32768, n_features=32, epochs=3
        )
    report["segment_sweep"] = {
        "description": (
            "Wall-clock sweep of DAnA.train(segments=N) on the large "
            "synthetic linear workload; lock-step segment-axis execution"
        ),
        "rows": sweep,
        **_host_metadata(),
    }
    print("\npipeline sweep (pipelined epoch runtime, threads execution):")
    # Epoch-heavy shapes keep the per-epoch synchronization cost visible
    # relative to per-epoch compute — that is the regime the sync policies
    # target (the segment sweep above covers the compute-heavy regime).
    if args.smoke:
        pipeline = bench_pipeline_sweep(
            n_tuples=512, n_features=16, epochs=32, segments=4
        )
    else:
        pipeline = bench_pipeline_sweep(
            n_tuples=512, n_features=16, epochs=48, segments=4, repeats=5
        )
    report["pipeline_sweep"] = {
        "description": (
            "Pipelined epoch runtime on the barrier-heavy threads mode: "
            "extraction overlap on/off x merge staleness (plus async_merge); "
            "speedups are vs the fully barriered stream=False/staleness=1 row"
        ),
        "rows": pipeline,
        **_host_metadata(),
    }
    print("\nprocess sweep (process-pool execution vs threads, shared pages):")
    # Worker spawn costs hundreds of ms per child, so the workload must be
    # heavy enough (seconds of compute) that the comparison measures
    # steady-state execution, not interpreter start-up.
    if args.smoke:
        process_sweep = bench_process_sweep(
            [1, 4], n_tuples=131072, n_features=32, epochs=10, repeats=1
        )
    else:
        process_sweep = bench_process_sweep(
            [1, 2, 4], n_tuples=131072, n_features=32, epochs=20
        )
    report["process_sweep"] = process_sweep
    print("\nserving sweep (scan-and-score + micro-batching server):")
    if args.smoke:
        serving = bench_serving_sweep(
            n_tuples=4096,
            n_features=16,
            segment_counts=[1, 2, 4],
            batch_sizes=[256],
            server_requests=512,
        )
    else:
        serving = bench_serving_sweep(
            n_tuples=32768,
            n_features=16,
            segment_counts=[1, 2, 4],
            batch_sizes=[64, 256, 1024],
            server_requests=2048,
        )
    report["serving_sweep"] = serving
    print("\nsql serving sweep (SQL surface + streaming scan-and-score):")
    if args.smoke:
        sql_serving = bench_sql_serving_sweep(
            n_tuples=4096, n_features=16, segment_counts=[1, 2]
        )
    else:
        sql_serving = bench_sql_serving_sweep(
            n_tuples=32768, n_features=16, segment_counts=[1, 2, 4]
        )
    report["sql_serving_sweep"] = sql_serving
    print("\nreliability sweep (fault-injection overhead, batched scoring):")
    # Same workload size in smoke mode: a run has to be long enough (tens
    # of ms) that thread spawn/join jitter cannot dominate the ~0% signal
    # the overhead gate bounds.
    reliability = bench_reliability_sweep(n_tuples=32768, n_features=16)
    report["reliability_sweep"] = reliability
    print("\nobservability sweep (telemetry overhead, batched scoring):")
    # Same full-size workload in smoke mode, for the same reason as the
    # reliability sweep: the ~0% signal needs runs long enough that
    # thread spawn/join jitter cannot dominate.
    observability = bench_observability_sweep(n_tuples=32768, n_features=16)
    report["observability_sweep"] = observability
    print("\nexplain-analyze sweep (statement-trace overhead, SQL scoring):")
    # Full-size workload in smoke mode too: the plan build + trace is a
    # fixed per-statement cost, so the statement has to be long enough
    # for the ~0% signal to be measurable at all.
    explain_analyze = bench_explain_analyze_sweep(n_tuples=32768, n_features=16)
    report["explain_analyze_sweep"] = explain_analyze
    print("\nrefresh sweep (incremental model refresh, fixed insert delta):")
    # The delta must dwarf one heap page (~100 tuples at this schema and
    # page size): the restamped tail page re-trains up to a page of
    # pre-watermark rows, and the gate ratio bound is (delta + page)/delta.
    if args.smoke:
        refresh_sweep = bench_refresh_sweep([2000, 8000], delta=512)
    else:
        refresh_sweep = bench_refresh_sweep([4000, 16000, 64000], delta=512)
    report["refresh_sweep"] = refresh_sweep
    if not args.smoke:
        RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
    if report["geomean_speedup"] < args.min_speedup:
        raise SystemExit(
            f"geomean speedup {report['geomean_speedup']:.1f}x is below the "
            f"required {args.min_speedup:.1f}x"
        )
    # The sharded gate holds in smoke mode too (CI regressions must fail),
    # but capped at a noise-tolerant bar for the tiny smoke workload.
    required = (
        min(args.min_segment_speedup, 1.2) if args.smoke else args.min_segment_speedup
    )
    at_four = next(r for r in sweep if r["segments"] == 4)
    if at_four["wall_speedup_vs_1_segment"] < required:
        raise SystemExit(
            f"4-segment wall speedup {at_four['wall_speedup_vs_1_segment']:.2f}x "
            f"is below the required {required:.2f}x"
        )
    # The pipelined path must beat the fully barriered threads mode — in
    # smoke mode too (CI regressions must fail), at a noise-tolerant bar.
    pipeline_required = (
        min(args.min_pipeline_speedup, 1.02) if args.smoke else args.min_pipeline_speedup
    )
    # "Pipelined" = any non-barriered configuration the runtime offers
    # (streaming overlap, stale windows, overlapped merges).  Multicore
    # hosts favour the streamed rows; single-core hosts the stale windows.
    pipelined_best = max(
        r["speedup_vs_barriered"]
        for r in pipeline
        if r["stream"] or r["staleness"] > 1 or r["sync"] == "async_merge"
    )
    if pipelined_best < pipeline_required:
        raise SystemExit(
            f"pipelined speedup {pipelined_best:.2f}x over the barriered "
            f"threads mode is below the required {pipeline_required:.2f}x"
        )
    # Process gate: one worker process per segment must beat the
    # GIL-sharing threads mode at 4 segments — but only where the OS can
    # actually schedule the workers side by side.  On a 1-core host the
    # comparison is meaningless (the compute serialises either way and the
    # process path can only add spawn + IPC overhead), so the gate skips
    # with a notice; parity was still asserted inside the sweep.  On 2-3
    # core hosts 4 workers cannot all overlap, so break-even is the bar.
    cores = os.cpu_count() or 1
    process_at_four = next(
        (r for r in process_sweep["rows"] if r["segments"] == 4), None
    )
    if cores < 2:
        print(
            f"process-speedup gate skipped: host has {cores} core(s), "
            "process overlap is impossible (bit-identity was still asserted)"
        )
    elif process_at_four is not None:
        process_required = args.min_process_speedup
        if cores < 4:
            # 4 workers cannot all overlap on 2-3 cores and still pay the
            # full spawn bill, so near-break-even is the honest bar there.
            process_required = min(process_required, 0.9)
        if args.smoke:
            # Noise-tolerant smoke bars, same policy as the other gates.
            process_required = min(
                process_required, 1.05 if cores >= 4 else 0.7
            )
        if process_at_four["speedup_vs_threads"] < process_required:
            raise SystemExit(
                f"4-segment process speedup "
                f"{process_at_four['speedup_vs_threads']:.2f}x over the "
                f"threads mode is below the required "
                f"{process_required:.2f}x on this {cores}-core host"
            )
    # Serving gate: the batched scan-and-score must beat the per-tuple
    # forward-pass oracle — in smoke mode too (CI regressions must fail).
    serving_best = max(r["speedup_vs_per_tuple"] for r in serving["rows"])
    if serving_best < args.min_serving_speedup:
        raise SystemExit(
            f"batched scan-and-score speedup {serving_best:.2f}x over the "
            f"per-tuple oracle is below the required "
            f"{args.min_serving_speedup:.2f}x"
        )
    # Streaming gate: the pipelined (max(extract, forward)) critical path
    # must beat the serial one.  Schedule-derived, so it holds identically
    # in smoke and full mode on any host.
    streaming_best = sql_serving["best_modelled_streaming_speedup"]
    if streaming_best < args.min_streaming_score_speedup:
        raise SystemExit(
            f"modelled streaming scan-and-score speedup {streaming_best:.2f}x "
            f"over the materialized oracle is below the required "
            f"{args.min_streaming_score_speedup:.2f}x"
        )
    # Reliability gate: armed-but-idle retry supervision must be ~free on
    # the batched path (injection off is a single is-None check per site).
    # Tested against the 95% lower bound of the median pair ratio so host
    # scheduler noise cannot trip it, while a real regression still does.
    if reliability["reliability_overhead_lower_95"] > args.max_reliability_overhead:
        raise SystemExit(
            f"reliability overhead {reliability['reliability_overhead']*100:.2f}% "
            f"(95% lower bound "
            f"{reliability['reliability_overhead_lower_95']*100:.2f}%) "
            f"on the batched scan-and-score path exceeds the allowed "
            f"{args.max_reliability_overhead*100:.2f}%"
        )
    # Observability gate: an armed telemetry session must stay ~free on
    # the batched path (disarmed is a single is-None check per site, and
    # armed sites fire per batch/segment, never per tuple).  Same gate
    # statistic as the reliability gate.
    if (
        observability["observability_overhead_lower_95"]
        > args.max_observability_overhead
    ):
        raise SystemExit(
            f"observability overhead "
            f"{observability['observability_overhead']*100:.2f}% "
            f"(95% lower bound "
            f"{observability['observability_overhead_lower_95']*100:.2f}%) "
            f"on the batched scan-and-score path exceeds the allowed "
            f"{args.max_observability_overhead*100:.2f}%"
        )
    # EXPLAIN ANALYZE gate: statement tracing is observability, so the
    # plan build + trace capture + annotation must fit the same budget.
    if (
        explain_analyze["explain_analyze_overhead_lower_95"]
        > args.max_observability_overhead
    ):
        raise SystemExit(
            f"EXPLAIN ANALYZE overhead "
            f"{explain_analyze['explain_analyze_overhead']*100:.2f}% "
            f"(95% lower bound "
            f"{explain_analyze['explain_analyze_overhead_lower_95']*100:.2f}%) "
            f"on the SQL scoring statement exceeds the allowed "
            f"{args.max_observability_overhead*100:.2f}%"
        )
    # Refresh gate: at a fixed insert delta, the incremental refresh's
    # engine cycles must not grow with the table size — the warm-start
    # run scans only the pages past the LSN watermark.  Schedule-derived,
    # so it holds identically in smoke and full mode on any host; the
    # residual wiggle is the restamped tail page (how full the bulk base
    # left it varies with the table size).
    refresh_ratio = refresh_sweep["refresh_cycle_ratio_max_over_min"]
    if refresh_ratio > args.max_refresh_cost_ratio:
        raise SystemExit(
            f"incremental-refresh engine-cycle ratio {refresh_ratio:.2f}x "
            f"across table sizes exceeds the allowed "
            f"{args.max_refresh_cost_ratio:.2f}x — refresh cost is scaling "
            f"with the table, not the insert delta"
        )


if __name__ == "__main__":
    main()
