"""Figure 15 — comparison with out-of-RDBMS libraries (Liblinear, DimmWitted)."""

import pytest

from _bench_utils import run_experiment
from repro.harness.experiments import fig15_end_to_end, fig15_external_breakdown


def test_fig15a_runtime_breakdown(benchmark, report):
    rows = run_experiment(benchmark, fig15_external_breakdown)
    report("Figure 15a — external-library runtime breakdown (%)", rows)
    # Exporting the data out of the RDBMS is a first-order cost for every
    # workload and always dwarfs the reformatting step (paper Figure 15a);
    # only the slow external SVM solvers let compute grow past it.
    for row in rows:
        assert row["data_export_pct"] > row["data_transform_pct"]
        assert row["data_export_pct"] >= 20.0
        total = row["data_export_pct"] + row["data_transform_pct"] + row["compute_pct"]
        # per-query overhead and rounding keep this just below 100%
        assert total == pytest.approx(100.0, abs=3.0)


def test_fig15c_end_to_end_comparison(benchmark, report):
    rows = run_experiment(benchmark, fig15_end_to_end)
    report("Figure 15c — end-to-end speedup over MADlib+PostgreSQL", rows)
    for row in rows:
        external = [row[k] for k in ("liblinear", "dimmwitted") if row.get(k)]
        # DAnA is uniformly faster than the external libraries end-to-end.
        assert all(row["dana"] > value for value in external)
        # External SVM solvers lose even to in-database MADlib (paper §7.3).
        if row["algorithm"] == "svm":
            assert all(value < 1.0 for value in external)
