"""Figure 14 — sensitivity of DAnA's runtime to the FPGA's off-chip bandwidth."""

from _bench_utils import run_experiment
from repro.harness.experiments import fig14_bandwidth_sweep


def test_fig14_bandwidth_sweep(benchmark, report):
    rows = run_experiment(benchmark, fig14_bandwidth_sweep)
    report(
        "Figure 14 — FPGA bandwidth sweep (speedup vs baseline bandwidth)",
        [r for r in rows if r["workload"] == "Geomean"],
    )
    geomeans = {
        r["bandwidth_scale"]: r["speedup_vs_baseline_bandwidth"]
        for r in rows
        if r["workload"] == "Geomean"
    }
    # Less bandwidth hurts, more bandwidth helps, monotonically.
    assert geomeans[0.25] < geomeans[0.5] < geomeans[1.0] <= geomeans[2.0] <= geomeans[4.0]
    # The compute-bound LRMF workloads are insensitive to bandwidth (paper §7.2).
    lrmf = {
        r["bandwidth_scale"]: r["speedup_vs_baseline_bandwidth"]
        for r in rows
        if r["workload"] == "S/N LRMF"
    }
    assert lrmf[4.0] - lrmf[0.25] < 0.3
