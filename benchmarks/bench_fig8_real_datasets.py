"""Figure 8 — end-to-end speedups on the publicly-available datasets.

Reproduces both panels: warm cache (8a) and cold cache (8b), with the
paper's reported speedups alongside for comparison.
"""

from _bench_utils import run_experiment
from repro.harness.experiments import fig8_real_datasets


def _geomean_row(rows):
    return next(r for r in rows if r["workload"] == "Geomean")


def test_fig8a_warm_cache(benchmark, report):
    rows = run_experiment(benchmark, fig8_real_datasets, True)
    report("Figure 8a — real datasets, warm cache (speedup over MADlib+PostgreSQL)", rows)
    geomean = _geomean_row(rows)
    # Paper: 8.3x geomean for DAnA, 2.1x for Greenplum, max 28.2x.
    assert 5.0 <= geomean["dana_speedup"] <= 14.0
    assert 1.2 <= geomean["greenplum_speedup"] <= 4.0
    assert max(r["dana_speedup"] for r in rows) > 20.0


def test_fig8b_cold_cache(benchmark, report):
    rows = run_experiment(benchmark, fig8_real_datasets, False)
    report("Figure 8b — real datasets, cold cache (speedup over MADlib+PostgreSQL)", rows)
    geomean = _geomean_row(rows)
    # Paper: 4.8x geomean; cold cache always below warm cache.
    warm = _geomean_row(fig8_real_datasets(True))
    assert geomean["dana_speedup"] < warm["dana_speedup"]
    assert geomean["dana_speedup"] > 2.0
