"""Utilities shared by the benchmark modules."""

from __future__ import annotations


def run_experiment(benchmark, fn, *args, **kwargs):
    """Run an experiment function exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
