"""Table 3 — datasets and machine-learning models used for evaluation."""

from _bench_utils import run_experiment
from repro.harness.experiments import table3_workloads


def test_table3_workloads(benchmark, report):
    rows = run_experiment(benchmark, table3_workloads)
    report("Table 3 — workloads", rows)
    assert len(rows) == 14
    assert {row["algorithm"] for row in rows} == {"linear", "logistic", "svm", "lrmf"}
