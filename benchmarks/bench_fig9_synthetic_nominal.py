"""Figure 9 — end-to-end speedups on the synthetic nominal (S/N) datasets."""

from _bench_utils import run_experiment
from repro.harness.experiments import fig9_synthetic_nominal


def _row(rows, name):
    return next(r for r in rows if r["workload"] == name)


def test_fig9a_warm_cache(benchmark, report):
    rows = run_experiment(benchmark, fig9_synthetic_nominal, True)
    report("Figure 9a — synthetic nominal, warm cache", rows)
    geomean = _row(rows, "Geomean")
    # Paper: 13.2x geomean over MADlib+PostgreSQL, 5.0x over Greenplum.
    assert geomean["dana_speedup"] > 8.0
    assert geomean["dana_speedup"] > geomean["greenplum_speedup"]
    # LRMF is DAnA's weakest S/N workload and the one where Greenplum competes.
    lrmf = _row(rows, "S/N LRMF")
    assert lrmf["dana_speedup"] == min(
        r["dana_speedup"] for r in rows if r["workload"] != "Geomean"
    )


def test_fig9b_cold_cache(benchmark, report):
    rows = run_experiment(benchmark, fig9_synthetic_nominal, False)
    report("Figure 9b — synthetic nominal, cold cache", rows)
    warm = _row(fig9_synthetic_nominal(True), "Geomean")["dana_speedup"]
    cold = _row(rows, "Geomean")["dana_speedup"]
    assert cold <= warm
