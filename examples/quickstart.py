"""Quickstart: the paper's linear-regression example, end to end.

This script follows §4.3 of the paper exactly:

1. express the update rule, merge function and convergence of linear
   regression in the Python-embedded DSL;
2. register it as a UDF with DAnA;
3. load a training table into the (miniature) PostgreSQL-style database;
4. invoke the UDF from SQL — ``SELECT * FROM dana.linearR('training_data_table')`` —
   which compiles the accelerator, walks the buffer-pool pages with
   Striders and trains the model on the simulated execution engine.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import dana
from repro.algorithms.base import AlgorithmSpec, Hyperparameters
from repro.core import DAnA
from repro.rdbms import Database, Schema

N_FEATURES = 10
N_TUPLES = 2_000


def build_linear_regression_udf() -> AlgorithmSpec:
    """The linear-regression UDF of paper §4.3, written in the DSL."""
    # --- data declarations -------------------------------------------------
    mo = dana.model([N_FEATURES], name="mo")
    x = dana.input([N_FEATURES], name="in")
    y = dana.output(name="out")
    lr = dana.meta(0.1, name="lr")                 # learning rate
    merge_coef = dana.meta(8, name="merge_coef")   # batch of parallel threads

    linearR = dana.algo(mo, x, y, name="linearR")

    # --- gradient of the loss function --------------------------------------
    s = dana.sigma(mo * x, 1)          # prediction: dot(mo, x)
    er = s - y                         # error
    grad = er * x                      # gradient for this tuple

    # --- merge function: sum gradients across parallel threads --------------
    merged = linearR.merge(grad, 8, "+")

    # --- gradient-descent optimizer ------------------------------------------
    up = lr * (merged / merge_coef)
    mo_up = mo - up
    linearR.setModel(mo_up)
    linearR.setEpochs(40)

    schema = Schema.training_schema(N_FEATURES)
    return AlgorithmSpec(
        name="linear_regression",
        algo=linearR,
        schema=schema,
        bind_tuple=lambda row: {"in": row[:N_FEATURES], "out": float(row[N_FEATURES])},
        # The batched twin of bind_tuple: ellipsis indexing slices the
        # trailing column axis of a (B, cols) batch — and of the sharded
        # lock-step (B, segments, cols) block — in one shot.
        bind_batch=lambda rows: {
            "in": rows[..., :N_FEATURES],
            "out": rows[..., N_FEATURES],
        },
        initial_models={"mo": np.zeros(N_FEATURES)},
        hyperparameters=Hyperparameters(learning_rate=0.1, merge_coefficient=8, epochs=40),
    )


def make_training_table(seed: int = 0) -> np.ndarray:
    """A synthetic regression dataset with a known ground-truth model."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(N_TUPLES, N_FEATURES))
    true_model = rng.normal(size=N_FEATURES)
    y = X @ true_model + 0.01 * rng.normal(size=N_TUPLES)
    return np.hstack([X, y[:, None]]), true_model


def main() -> None:
    spec = build_linear_regression_udf()
    data, true_model = make_training_table()

    # The RDBMS side: create the database, load the training table, warm the
    # buffer pool (the paper's default setting).
    db = Database(page_size=8 * 1024)
    db.load_table("training_data_table", spec.schema, data)
    db.warm_cache("training_data_table")

    # The DAnA side: register the UDF; compilation happens on first use and
    # the generated design is stored in the RDBMS catalog.
    system = DAnA(db)
    system.register_udf("linearR", spec, epochs=40)

    print("Running: SELECT * FROM dana.linearR('training_data_table');")
    result = db.execute("SELECT * FROM dana.linearR('training_data_table');")

    model = np.asarray(dict(result.rows)["mo"])
    error = np.linalg.norm(model - true_model) / np.linalg.norm(true_model)
    print(f"\nLearned model (first 5 coefficients): {np.round(model[:5], 4)}")
    print(f"True model    (first 5 coefficients): {np.round(true_model[:5], 4)}")
    print(f"Relative model error: {error:.4f}")

    # Hardware-side activity recorded by the simulator.
    entry = db.catalog.accelerator("linearR")
    print("\nAccelerator design stored in the RDBMS catalog:")
    for key, value in sorted(entry.metadata.items()):
        print(f"  {key:25s} {value}")
    print("\nRun statistics:")
    for key, value in sorted(result.stats.items()):
        print(f"  {key:25s} {value}")

    # Scale-out: the paper's Greenplum deployment attaches one DAnA
    # accelerator per segment (Figure 13).  segments=4 partitions the heap
    # pages across four accelerators, trains them in lock step and merges
    # the per-segment models every epoch.
    sharded = system.train("linearR", "training_data_table", epochs=40, segments=4)
    sharded_error = np.linalg.norm(sharded.models["mo"] - true_model) / np.linalg.norm(
        true_model
    )
    print(f"\nSharded run (segments=4, {sharded.cluster.mode} execution):")
    print(f"  relative model error      {sharded_error:.4f}")
    print(f"  tuples extracted          {sharded.tuples_extracted}")
    print(f"  critical-path cycles      {sharded.critical_path_cycles}")
    print(f"  cross-segment merge cyc   {sharded.cluster.cross_merge_cycles}")


if __name__ == "__main__":
    main()
