"""Serving quickstart: train -> save -> load -> score -> micro-batched serving.

The training quickstart stops when the model converges; this script shows
the other half of in-database analytics — getting predictions back out
without the data (or the model) ever leaving the RDBMS:

1. train linear regression on a heap table (sharded, 2 segments);
2. ``save_model`` — parameters persisted into a real heap table, descriptor
   in the catalog, versioned;
3. ``load_model`` — bit-identical round trip;
4. ``score_table`` — whole-table scan-and-score through the bulk Strider
   page walk, fanned out across segments;
5. a micro-batching :class:`PredictionServer` coalescing concurrent point
   requests into bounded-latency batches.

Run with:  PYTHONPATH=src python examples/serving_quickstart.py
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.algorithms import Hyperparameters, get_algorithm
from repro.core import DAnA
from repro.perf import ScoreRunCost
from repro.rdbms import Database

N_FEATURES = 12
N_TUPLES = 4_000


def main() -> None:
    rng = np.random.default_rng(11)
    X = rng.normal(size=(N_TUPLES, N_FEATURES))
    true_model = rng.normal(size=N_FEATURES)
    y = X @ true_model + 0.01 * rng.normal(size=N_TUPLES)
    data = np.hstack([X, y[:, None]])

    algorithm = get_algorithm("linear")
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=16, epochs=8)
    spec = algorithm.build_spec(N_FEATURES, hyper)

    database = Database()
    database.load_table("ratings", spec.schema, data)
    system = DAnA(database)
    system.register_udf("linearR", spec, epochs=8)

    # 1. train (sharded: one accelerator per segment)
    run = system.train("linearR", "ratings", segments=2)
    print(f"trained: {run.epochs_run} epochs, loss {algorithm.loss(data, run.models):.6f}")

    # 2./3. save into heap tables through the catalog, load back bit-identically
    entry = system.save_model("house_prices", "linearR", run.models)
    loaded = system.load_model("house_prices")
    assert all(np.array_equal(loaded[k], np.asarray(v, np.float64)) for k, v in run.models.items())
    print(f"saved model {entry.name!r} v{entry.version} -> heap table {entry.table_name!r}")

    # 4. whole-table scan-and-score via the bulk Strider page walk
    result = system.score_table("linearR", "ratings", model_name="house_prices", segments=2)
    cost = ScoreRunCost.from_result(result)
    rmse = float(np.sqrt(np.mean((result.predictions - y) ** 2)))
    print(
        f"scored {result.tuples_scored} tuples on {len(result.segments)} segments: "
        f"rmse {rmse:.4f}, {cost.inference_cycles_per_tuple:.1f} inference cycles/tuple, "
        f"modelled {cost.tuples_per_second():,.0f} tuples/s"
    )

    # 5. micro-batched point predictions from concurrent clients
    with system.serve(
        "linearR", model_name="house_prices", max_batch_size=32, max_wait_ms=1.0
    ) as server:
        with ThreadPoolExecutor(max_workers=8) as clients:
            futures = list(clients.map(server.submit, (row for row in X[:512])))
        predictions = np.array([f.result(timeout=30) for f in futures])
    direct = system.predict("linearR", X[:512], model_name="house_prices")
    assert np.allclose(predictions, direct, rtol=1e-12)
    stats = server.stats
    print(
        f"served {stats.requests} point requests in {stats.batches} micro-batches "
        f"(mean batch {stats.mean_batch_size:.1f}): "
        f"{stats.requests_per_second:,.0f} req/s, "
        f"p50 {stats.p50_latency_ms:.2f} ms, p99 {stats.p99_latency_ms:.2f} ms"
    )


if __name__ == "__main__":
    main()
