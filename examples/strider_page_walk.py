"""Under the hood: how a Strider walks a raw PostgreSQL-style page.

This example shows the lowest layer of DAnA: the compiler turns the page
layout + table schema into a 22-bit Strider instruction sequence (Table 2),
and the Strider executes it against the binary page image to extract,
cleanse and emit the training tuples — no CPU involved.

Run with:  python examples/strider_page_walk.py
"""

from __future__ import annotations

import numpy as np

from repro.compiler import compile_strider
from repro.hw.access_engine import PayloadDecoder
from repro.hw.strider import Strider
from repro.rdbms import HeapPage, PageLayout, Schema


def main() -> None:
    layout = PageLayout(page_size=8 * 1024)
    schema = Schema.training_schema(6)

    # Fill one slotted heap page with training tuples.
    rng = np.random.default_rng(1)
    page = HeapPage(layout)
    rows = rng.normal(size=(12, 7)).round(3)
    for row in rows:
        page.insert(schema, row.tolist())
    image = page.to_bytes()
    print(f"Page: {layout.page_size} bytes, {page.tuple_count} tuples, "
          f"{page.free_space} bytes free")
    print(f"Raw page header bytes: {image[:24].hex()}\n")

    # Compile the Strider program for this page layout and schema.
    compiled = compile_strider(layout, schema)
    print("Generated Strider program (Table 2 ISA):")
    print(compiled.program.to_assembly())
    words = compiled.program.encode()
    print(f"\nEncoded: {len(words)} x 22-bit instructions "
          f"({[hex(w) for w in words[:4]]} ...)")

    # Execute it against the raw page image.
    strider = Strider(compiled.program, read_width_bytes=8)
    result = strider.process_page(image)
    print(f"\nStrider run: {result.stats.instructions_executed} instructions, "
          f"{result.stats.cycles} cycles, {result.stats.tuples_emitted} tuples emitted, "
          f"{result.stats.bytes_emitted} payload bytes")

    decoder = PayloadDecoder(schema)
    extracted = decoder.decode_many(result.payloads)
    print("\nFirst three cleansed tuples handed to the execution engine:")
    print(np.round(extracted[:3], 3))
    print("\nFirst three tuples as loaded:")
    print(np.round(rows[:3], 3))
    assert np.allclose(extracted, rows, atol=1e-3)
    print("\nByte-exact extraction straight from the buffer-pool page image.")


if __name__ == "__main__":
    main()
