"""Hardware-generator design-space exploration and sensitivity sweeps.

Reproduces, at a glance, the back-end behaviour of §6.1 and the sensitivity
studies of §7.2: the candidate thread/AC allocations the hardware generator
considers for a workload, how runtime scales with the merge coefficient
(Figure 12) and with the FPGA's off-chip bandwidth (Figure 14).

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.data import get_workload
from repro.harness.experiments import (
    ablation_design_space,
    fig12_thread_sweep,
    fig14_bandwidth_sweep,
)
from repro.harness.tables import format_table
from repro.perf import DAnAModel, epochs_for


def main() -> None:
    workload = get_workload("Remote Sensing LR")

    print("=== Design points considered by the hardware generator ===")
    rows = ablation_design_space(workload.name)
    print(format_table(rows, columns=[
        "threads", "acs_per_thread", "total_aus", "update_rule_cycles",
        "merge_cycles", "compute_cycles_per_epoch", "data_cycles_per_epoch", "chosen",
    ]))

    print("\n=== Figure 12: runtime vs merge coefficient ===")
    rows = fig12_thread_sweep(workload_names=(workload.name, "Netflix"))
    print(format_table(rows, columns=[
        "workload", "merge_coefficient", "threads", "runtime_vs_single_thread",
    ]))

    print("\n=== Figure 14: bandwidth sensitivity (geomean over all workloads) ===")
    rows = [r for r in fig14_bandwidth_sweep() if r["workload"] == "Geomean"]
    print(format_table(rows))

    print("\n=== Where does the chosen design spend its per-epoch time? ===")
    model = DAnAModel()
    cost = model.epoch_cost(workload)
    epochs = epochs_for(workload)
    print(f"workload            : {workload.name} ({epochs} epochs at paper scale)")
    print(f"compute per epoch   : {cost.compute_seconds * 1e3:8.2f} ms")
    print(f"data path per epoch : {cost.data_seconds * 1e3:8.2f} ms "
          f"(striders {cost.detail['strider_seconds'] * 1e3:.2f} ms, "
          f"AXI {cost.detail['axi_seconds'] * 1e3:.2f} ms)")
    bound = "bandwidth" if cost.data_seconds > cost.compute_seconds else "compute"
    print(f"the accelerator is {bound}-bound for this workload")


if __name__ == "__main__":
    main()
