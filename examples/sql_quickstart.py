"""SQL quickstart: the whole in-database analytics loop from SQL.

The paper's deployment story (and MADlib's before it) is that a data
scientist never leaves SQL: training is a ``CREATE MODEL`` away, models are
catalogued database objects, and predictions are a ``SELECT``.  This script
drives that loop end-to-end through ``Database.execute``:

1. ``CREATE MODEL ... AS TRAIN ... WITH (epochs, segments, ...)`` — train
   on the simulated DAnA accelerator and persist the model into heap
   tables through the catalog;
2. ``SHOW MODELS`` — the registry as a catalog view;
3. ``SELECT dana.predict('<model>') FROM <table> [WHERE ...] [LIMIT n]`` —
   scan-and-score through the batched inference tape (bit-identical to the
   Python ``DAnA.score_table`` API);
4. ``SELECT * FROM dana.score('<model>', '<table>', segments => N)`` —
   sharded scoring with explicit serving knobs;
5. ``EXPLAIN`` / ``EXPLAIN ANALYZE`` — the costed operator tree (predicted
   cycles and modelled seconds from the schedule-derived cost models) and,
   under ANALYZE, measured spans/wall/rows next to every prediction;
6. ``DROP MODEL`` — clean up, parameter tables included.

Run with:  PYTHONPATH=src python examples/sql_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import Hyperparameters, get_algorithm
from repro.core import DAnA
from repro.rdbms import Database

N_FEATURES = 10
N_TUPLES = 3_000


def main() -> None:
    """Run the SQL session and print each statement's result."""
    rng = np.random.default_rng(7)
    X = rng.normal(size=(N_TUPLES, N_FEATURES))
    true_model = rng.normal(size=N_FEATURES)
    y = X @ true_model + 0.01 * rng.normal(size=N_TUPLES)
    data = np.hstack([X, y[:, None]])

    algorithm = get_algorithm("linear")
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=16, epochs=6)
    spec = algorithm.build_spec(N_FEATURES, hyper)

    database = Database()
    database.load_table("houses", spec.schema, data)
    system = DAnA(database)  # attaches itself as the SQL serving runtime
    system.register_udf("linearR", spec, epochs=6)

    def run(sql: str):
        print(f"\n=> {sql}")
        result = database.execute(sql)
        for row in result.rows[:5]:
            print("  ", row)
        if len(result.rows) > 5:
            print(f"   ... ({len(result.rows)} rows)")
        return result

    # 1. train + persist, entirely from SQL
    created = run(
        "CREATE MODEL prices AS TRAIN linearR ON houses "
        "WITH (epochs => 6, segments => 2)"
    )
    assert created.rows[0][:2] == ("prices", 1)

    # 2. the registry is a catalog view
    run("SHOW MODELS")

    # 3. predictions are a SELECT (streaming scan-and-score underneath)
    run("SELECT count(*) FROM houses")
    predictions = run("SELECT dana.predict('prices') AS yhat FROM houses")
    served = np.array([row[0] for row in predictions.rows])
    rmse = float(np.sqrt(np.mean((served - y) ** 2)))
    print(f"   rmse vs ground truth: {rmse:.4f}")

    # The SQL surface and the Python API are the same computation.
    direct = system.score_table("linearR", "houses", model_name="prices")
    assert np.array_equal(served, direct.predictions), "SQL != Python API"
    print("   SQL predictions bit-identical to DAnA.score_table: OK")

    filtered = run(
        "SELECT dana.predict('prices') FROM houses WHERE x0 > 1.5 LIMIT 5"
    )
    assert len(filtered.rows) <= 5

    # 4. explicit serving knobs through dana.score(...)
    sharded = run(
        "SELECT * FROM dana.score('prices', 'houses', segments => 4, "
        "stream => true) LIMIT 3"
    )
    print(f"   stats: {sharded.stats}")

    # 5. plan introspection: EXPLAIN prices the statement without running
    # it; EXPLAIN ANALYZE runs it inside a statement trace and renders
    # predicted-vs-actual per operator.
    run(
        "EXPLAIN CREATE MODEL prices2 AS TRAIN linearR ON houses "
        "WITH (epochs => 6, segments => 2)"
    )
    assert database.execute("SHOW MODELS").rows != [], "EXPLAIN must not DROP"
    score_sql = "SELECT * FROM dana.score('prices', 'houses', segments => 2)"
    bare = database.execute(score_sql)
    explained = run("EXPLAIN ANALYZE " + score_sql)
    report = explained.payload
    assert (
        report.result.rows == bare.rows
    ), "EXPLAIN ANALYZE changed the statement's result"
    print("   EXPLAIN ANALYZE result bit-identical to the bare statement: OK")

    # 6. clean up: the model and its parameter heap tables disappear
    run("DROP MODEL prices")
    assert database.execute("SHOW MODELS").rows == []
    print("\nSQL session complete.")


if __name__ == "__main__":
    main()
