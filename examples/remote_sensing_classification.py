"""Remote Sensing classification: DAnA vs MADlib vs Greenplum.

This is the paper's motivating scenario (§1, Example 1): a data scientist
trains a classifier over a table that already lives in the RDBMS.  The
script uses the Remote Sensing LR workload shape from Table 3 (54 features,
logistic regression), trains it with every system on identical data, checks
that they learn equally good models, and prints the paper-scale runtime
estimates that reproduce Figure 8's speedups.

Run with:  python examples/remote_sensing_classification.py
"""

from __future__ import annotations

from repro.algorithms import LogisticRegression
from repro.core import WorkloadRunner
from repro.data import get_workload
from repro.perf import format_seconds


def main() -> None:
    workload = get_workload("Remote Sensing LR")
    print(f"Workload: {workload.name}")
    print(f"  algorithm       : {workload.algorithm_key}")
    print(f"  model topology  : {workload.model_topology}")
    print(f"  paper scale     : {workload.paper_tuples:,} tuples, "
          f"{workload.paper_pages:,} pages, {workload.paper_size_mb} MB")
    print(f"  functional scale: {workload.func_tuples:,} tuples, "
          f"{workload.func_features} features\n")

    runner = WorkloadRunner(workload, epochs=15)
    algorithm = LogisticRegression()

    print("Training on identical data with every system (functional simulation)...")
    comparison = runner.compare(include_external=True)
    reference = runner.reference()
    print(f"{'system':28s} {'log-loss':>10s} {'accuracy':>9s}")
    for name, run in comparison.runs.items():
        accuracy = algorithm.accuracy(runner.data, run.models)
        print(f"{name:28s} {run.loss:10.4f} {accuracy:9.3f}")
    accuracy = algorithm.accuracy(runner.data, reference.models)
    print(f"{'NumPy reference':28s} {reference.loss:10.4f} {accuracy:9.3f}")

    print("\nPaper-scale end-to-end runtime estimates (warm cache):")
    estimates = comparison.estimates
    baseline = estimates["MADlib+PostgreSQL"]
    print(f"{'system':28s} {'runtime':>12s} {'speedup':>9s}")
    for name, estimate in estimates.items():
        speedup = baseline.total / estimate.total
        print(f"{name:28s} {format_seconds(estimate.total):>12s} {speedup:8.1f}x")
    print("\n(The paper reports 28.2x for DAnA and 3.4x for Greenplum on this workload.)")

    dana_run = comparison.runs["DAnA+PostgreSQL"]
    print("\nAccelerator activity (functional run):")
    for key, value in sorted(dana_run.detail.items()):
        print(f"  {key:20s} {value}")


if __name__ == "__main__":
    main()
