"""Movie recommendation with in-database Low-Rank Matrix Factorization.

The Netflix workload of Table 3: a ratings table ``(row, col, value)`` is
factorised into two low-rank matrices.  Each training tuple addresses one
row of each factor matrix through the reproduction's ``gather`` extension,
and the accelerator applies the per-rating updates Hogwild-style (which is
why, per the paper's Figure 12, LRMF gains nothing from extra threads).

Run with:  python examples/movie_recommendation_lrmf.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import Hyperparameters, LowRankMatrixFactorization
from repro.baselines import MADlibRunner
from repro.core import DAnA
from repro.data.synthetic import generate_ratings
from repro.rdbms import Database

N_USERS = 60
N_MOVIES = 45
RANK = 8
N_RATINGS = 1_800
EPOCHS = 25


def main() -> None:
    algorithm = LowRankMatrixFactorization()
    hyper = Hyperparameters(
        learning_rate=0.08, regularization=1e-4, rank=RANK, epochs=EPOCHS
    )
    spec = algorithm.build_spec(RANK, hyper, model_topology=(N_USERS, N_MOVIES, RANK))

    ratings = generate_ratings(
        N_USERS, N_MOVIES, rank=RANK, noise=0.02, seed=3, n_ratings=N_RATINGS
    )
    print(f"Ratings table: {len(ratings):,} ratings over a "
          f"{N_USERS}x{N_MOVIES} matrix (rank-{RANK} ground truth)\n")

    db = Database(page_size=8 * 1024)
    db.load_table("ratings", spec.schema, ratings)
    db.warm_cache("ratings")

    system = DAnA(db)
    system.register_udf("lrmf", spec, epochs=EPOCHS)

    print("Running: SELECT * FROM dana.lrmf('ratings');")
    run = system.train("lrmf", "ratings", epochs=EPOCHS)
    dana_loss = algorithm.loss(ratings, run.models)
    initial_loss = algorithm.loss(ratings, spec.initial_models)

    madlib = MADlibRunner(db, spec, epochs=EPOCHS).run("ratings")
    madlib_loss = algorithm.loss(ratings, madlib.models)

    print(f"\n{'':24s} {'MSE on ratings':>15s}")
    print(f"{'initial factors':24s} {initial_loss:15.4f}")
    print(f"{'DAnA accelerator':24s} {dana_loss:15.4f}")
    print(f"{'MADlib baseline':24s} {madlib_loss:15.4f}")

    # Recommend: top movies for one user from the learned factors.
    left, right = run.models["L"], run.models["R"]
    user = 7
    scores = left[user] @ right.T
    top = np.argsort(scores)[::-1][:5]
    print(f"\nTop-5 recommended movie ids for user {user}: {top.tolist()}")

    design = db.catalog.accelerator("lrmf").metadata
    print("\nGenerated accelerator (note: a single thread, as the update "
          "rule itself carries the parallelism):")
    for key in ("threads", "acs_per_thread", "num_striders", "update_rule_cycles"):
        print(f"  {key:20s} {design[key]}")


if __name__ == "__main__":
    main()
