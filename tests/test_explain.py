"""EXPLAIN / EXPLAIN ANALYZE: costed plan introspection and traces.

The bit-identity matrix is the load-bearing part: wrapping any statement
in ``EXPLAIN ANALYZE`` must leave its result — trained models, scored
predictions, every counter — bit-identical to the bare statement, across
all four algorithms, segment counts and execution strategies.  The plan
trees must also stay honest: every operator that claims a telemetry span
site has to find matching spans in the captured statement trace.
"""

import os

import numpy as np
import pytest

from repro.algorithms import Hyperparameters, get_algorithm
from repro.core.dana import DAnA
from repro.data.synthetic import generate_for_algorithm
from repro.exceptions import QueryError
from repro.rdbms import Database
from repro.rdbms.explain import ExplainReport, PlanOperator
from repro.rdbms.query import CreateModel, Explain, ScoreCall, SeqScan, parse

LRMF_TOPOLOGY = (24, 18, 4)
ALGORITHMS = ("linear", "logistic", "svm", "lrmf")
SEGMENT_COUNTS = (1, 2, 4)


def _system(key, n_tuples=192, epochs=2, seed=11):
    """A fresh DAnA system with one algorithm UDF over a multi-page table."""
    algorithm = get_algorithm(key)
    n_features = 4 if key == "lrmf" else 6
    topology = LRMF_TOPOLOGY if key == "lrmf" else ()
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=8, epochs=epochs)
    spec = algorithm.build_spec(n_features, hyper, topology)
    data = generate_for_algorithm(key, n_tuples, n_features, LRMF_TOPOLOGY, seed=seed)
    database = Database(page_size=2048)
    database.load_table("train", spec.schema, data)
    database.warm_cache("train")
    system = DAnA(database)
    system.register_udf(key, spec, epochs=epochs)
    return system


def _first_line(error) -> str:
    """The diagnostic line of a QueryError (drops the echoed statement)."""
    return str(error).splitlines()[0]


def _create_model_sql(udf, segments, execution, epochs=2):
    return (
        f"CREATE MODEL m AS TRAIN {udf} ON train WITH (epochs => {epochs}, "
        f"segments => {segments}, execution => '{execution}');"
    )


def _assert_span_coverage(report: ExplainReport) -> None:
    """Every operator claiming a span site found spans, and vice versa."""
    rollup = report.trace["rollup"]
    for op in report.root.walk():
        if op.span_site is not None:
            assert op.actual.get("spans", 0) >= 1, (
                f"operator {op.name} {op.label} claims span site "
                f"{op.span_site} but matched no spans; rollup: {rollup}"
            )
            assert op.span_site in rollup
        else:
            # honest trees: span-less operators never pretend to measure
            assert "spans" not in op.actual


class TestExplainParsing:
    def test_explain_wraps_any_statement(self):
        plan = parse("EXPLAIN SELECT * FROM train;")
        assert isinstance(plan, Explain)
        assert not plan.analyze
        assert isinstance(plan.statement, SeqScan)

    def test_explain_analyze(self):
        plan = parse("EXPLAIN ANALYZE CREATE MODEL m AS TRAIN linear ON train;")
        assert isinstance(plan, Explain)
        assert plan.analyze
        assert isinstance(plan.statement, CreateModel)

    def test_nested_explain_rejected_with_caret(self):
        with pytest.raises(QueryError) as excinfo:
            parse("EXPLAIN EXPLAIN SELECT * FROM train;")
        assert "nested" in str(excinfo.value)
        assert "^" in str(excinfo.value)

    def test_score_execution_kwarg(self):
        plan = parse(
            "SELECT * FROM dana.score('m', 't', execution => 'processes');"
        )
        assert isinstance(plan, ScoreCall)
        assert plan.execution == "processes"
        assert parse("SELECT * FROM dana.score('m', 't');").execution is None

    def test_score_execution_kwarg_must_be_string(self):
        with pytest.raises(QueryError) as excinfo:
            parse("SELECT * FROM dana.score('m', 't', execution => 2);")
        assert "execution" in str(excinfo.value)

    def test_execution_survives_limit_rebuild(self):
        plan = parse(
            "SELECT * FROM dana.score('m', 't', execution => 'threads') LIMIT 5;"
        )
        assert plan.execution == "threads"
        assert plan.limit == 5


class TestExplainStorageStatements:
    def test_seq_scan_tree(self):
        system = _system("linear")
        result = system.database.execute(
            "EXPLAIN SELECT x0, x1 FROM train WHERE x0 > 0.5 LIMIT 10;"
        )
        assert result.columns == ("QUERY PLAN",)
        lines = [row[0] for row in result.rows]
        assert lines[0].startswith("SeqScan train")
        assert any("Filter" in line for line in lines)
        assert any("Limit" in line for line in lines)
        report = result.payload
        assert report.root.predicted["rows"] == 192

    def test_seq_scan_analyze_measures_rows(self):
        system = _system("linear")
        result = system.database.execute(
            "EXPLAIN ANALYZE SELECT * FROM train LIMIT 7;"
        )
        report = result.payload
        assert report.root.actual["rows"] == 7
        assert report.root.actual["wall_seconds"] >= 0.0
        assert report.result is not None and len(report.result.rows) == 7
        assert result.stats["analyze"] is True

    def test_count_star_analyze(self):
        system = _system("linear")
        result = system.database.execute(
            "EXPLAIN ANALYZE SELECT count(*) FROM train;"
        )
        assert result.payload.root.actual["count"] == 192

    def test_unknown_table_fails_like_execution(self):
        system = _system("linear")
        with pytest.raises(QueryError, match="does not exist"):
            system.database.execute("EXPLAIN SELECT * FROM missing;")

    def test_serving_statement_needs_attached_runtime(self):
        database = Database(page_size=2048)
        with pytest.raises(QueryError, match="no DAnA system"):
            database.execute("EXPLAIN SELECT * FROM dana.score('m', 't');")


class TestExplainIsDryRun:
    def test_explain_create_model_trains_nothing(self):
        system = _system("linear")
        recorder = system.enable_run_recording()
        result = system.database.execute(
            "EXPLAIN " + _create_model_sql("linear", 2, "threads")
        )
        assert system.database.catalog.model_names() == []
        assert recorder.runs() == []
        report = result.payload
        assert report.analyze is False and report.result is None
        loop = report.root.children[0]
        assert loop.name == "EpochLoop"
        assert loop.predicted["critical_path_cycles"] > 0
        assert loop.predicted["seconds"] > 0.0
        assert loop.knobs["workers"] == min(2, max(1, os.cpu_count() or 1))

    def test_explain_score_scores_nothing(self):
        system = _system("linear")
        recorder = system.enable_run_recording()
        run = system.train("linear", "train", segments=2)
        system.save_model("m", "linear", run.models)
        runs_before = len(recorder.runs())
        result = system.database.execute(
            "EXPLAIN SELECT * FROM dana.score('m', 'train', segments => 2);"
        )
        assert len(recorder.runs()) == runs_before
        root = result.payload.root
        assert root.name == "ScanScore"
        assert root.predicted["tuples"] == 192
        assert root.predicted["wall_cycles"] > 0
        assert root.predicted["seconds"] > 0.0
        assert root.knobs["workers"] == min(2, max(1, os.cpu_count() or 1))
        segment_ops = [op for op in root.children if op.name == "Segment"]
        assert len(segment_ops) == 2
        assert sum(op.knobs["tuples"] for op in segment_ops) == 192

    def test_explain_predicted_cost_matches_dedicated_predictor(self):
        # the tree's numbers must be the perf package's, not a re-derivation
        from repro.perf import page_tuple_counts, predict_score_cost

        system = _system("linear")
        run = system.train("linear", "train", segments=1)
        system.save_model("m", "linear", run.models)
        result = system.database.execute(
            "EXPLAIN SELECT * FROM dana.score('m', 'train');"
        )
        root = result.payload.root
        registered = system._registered("linear")
        entry = system.database.catalog.table("train")
        pages = system.database.storage.page_count(entry.file_name)
        counts = page_tuple_counts(
            range(pages),
            entry.tuple_count,
            system.database.table("train").tuples_per_page(),
        )
        cost = predict_score_cost(
            registered.accelerators["train"].access_engine,
            system._inference_plan(registered, "train"),
            [counts],
        )
        assert root.predicted["wall_cycles"] == cost.wall_cycles
        assert root.predicted["seconds"] == cost.seconds(system.fpga)

    def test_invalid_options_fail_like_execution(self):
        sql = _create_model_sql("linear", 1, "lockstep")
        bare = _system("linear")
        with pytest.raises(QueryError) as bare_error:
            bare.database.execute(sql)
        explained = _system("linear")
        with pytest.raises(QueryError) as explain_error:
            explained.database.execute("EXPLAIN " + sql)
        # identical diagnostics; only the echoed statement differs
        assert _first_line(explain_error.value) == _first_line(bare_error.value)

    def test_unknown_model_and_udf_fail_like_execution(self):
        system = _system("linear")
        with pytest.raises(QueryError, match="no saved model"):
            system.database.execute(
                "EXPLAIN SELECT * FROM dana.score('ghost', 'train');"
            )
        with pytest.raises(QueryError, match="not registered"):
            system.database.execute(
                "EXPLAIN CREATE MODEL m AS TRAIN ghost ON train;"
            )


class TestExplainAnalyzeTraining:
    @pytest.mark.slow
    @pytest.mark.parametrize("key", ALGORITHMS)
    @pytest.mark.parametrize("execution", ["lockstep", "threads", "processes"])
    def test_bit_identical_and_span_covered(self, key, execution):
        for segments in SEGMENT_COUNTS:
            sql = _create_model_sql(key, segments, execution)
            if execution == "lockstep" and (segments == 1 or key == "lrmf"):
                # invalid combos must fail identically, explained or not
                with pytest.raises(QueryError) as bare_error:
                    _system(key).database.execute(sql)
                with pytest.raises(QueryError) as explain_error:
                    _system(key).database.execute("EXPLAIN ANALYZE " + sql)
                assert _first_line(explain_error.value) == _first_line(
                    bare_error.value
                )
                continue
            bare = _system(key)
            bare_result = bare.database.execute(sql)
            explained = _system(key)
            result = explained.database.execute("EXPLAIN ANALYZE " + sql)
            report = result.payload
            assert report.result.rows == bare_result.rows
            bare_models = bare.load_model("m")
            explained_models = explained.load_model("m")
            assert sorted(bare_models) == sorted(explained_models)
            for name, value in bare_models.items():
                assert np.array_equal(value, explained_models[name]), (
                    f"{key}/{execution}/segments={segments}: parameter "
                    f"{name} drifted under EXPLAIN ANALYZE"
                )
            _assert_span_coverage(report)
            loop = report.root.children[0]
            assert loop.knobs["mode"] == (
                execution if execution != "lockstep" else "lockstep"
            )
            # epoch spans sum the epochs the driver executed (mode-dependent
            # window accounting, so a lower bound only)
            assert loop.actual["executed"] >= 2

    def test_single_accelerator_tree(self):
        # segments omitted → the classic single-accelerator path: no epoch
        # driver (span-less Train operator), page walk measured in-process
        system = _system("linear")
        result = system.database.execute(
            "EXPLAIN ANALYZE CREATE MODEL m AS TRAIN linear ON train "
            "WITH (epochs => 2);"
        )
        report = result.payload
        train = report.root.children[0]
        assert train.name == "Train"
        assert train.knobs["mode"] == "single"
        assert train.span_site is None
        walk = train.children[0]
        assert walk.name == "StriderPageWalk"
        assert walk.actual["spans"] >= 1
        assert report.root.actual["version"] == 1
        assert report.root.actual["epochs_run"] == 2
        _assert_span_coverage(report)

    def test_udf_call_tree(self):
        system = _system("linear")
        result = system.database.execute(
            "EXPLAIN ANALYZE SELECT * FROM dana.linear('train');"
        )
        report = result.payload
        assert report.root.name == "AcceleratedUDF"
        assert report.root.actual["tuples_extracted"] > 0
        assert report.root.actual["engine_cycles"] > 0
        _assert_span_coverage(report)


class TestExplainAnalyzeScoring:
    @pytest.mark.parametrize("execution", ["threads", "processes"])
    def test_acceptance_path(self, execution):
        """The issue's acceptance statement, for both scoring fan-outs."""
        bare = _system("linear")
        run = bare.train("linear", "train", segments=2)
        bare.save_model("m", "linear", run.models)
        sql = (
            "SELECT * FROM dana.score('m', 'train', segments => 2, "
            f"execution => '{execution}');"
        )
        bare_result = bare.database.execute(sql)

        explained = _system("linear")
        explained.enable_run_recording()
        run = explained.train("linear", "train", segments=2)
        explained.save_model("m", "linear", run.models)
        result = explained.database.execute("EXPLAIN ANALYZE " + sql)
        report = result.payload
        # bit-identical predictions
        assert report.result.rows == bare_result.rows
        # predicted cycles/seconds and measured wall/rows/retries rendered
        root = report.root
        assert root.predicted["wall_cycles"] > 0
        assert root.predicted["seconds"] > 0.0
        assert root.actual["wall_seconds"] > 0.0
        assert root.actual["rows"] == 192
        assert root.actual["retries"] == 0
        assert root.actual["workers"] == min(2, max(1, os.cpu_count() or 1))
        rendered = "\n".join(row[0] for row in result.rows)
        assert "predicted:" in rendered and "actual:" in rendered
        _assert_span_coverage(report)
        # trace round-trips through the run registry
        run_id = result.stats["run_id"]
        assert report.run_id == run_id
        detail = explained.run_recorder.run_detail(run_id)
        assert detail["trace"]["plan"] == [row[0] for row in result.rows]
        assert detail["trace"]["operators"]["name"] == "ScanScore"
        assert detail["trace"]["rollup"]["serving.scorer.segment"]["count"] == 2

    @pytest.mark.slow
    @pytest.mark.parametrize("key", ALGORITHMS)
    def test_bit_identical_across_segment_counts(self, key):
        for segments in SEGMENT_COUNTS:
            bare = _system(key)
            run = bare.train(key, "train", segments=2)
            bare.save_model("m", key, run.models)
            sql = f"SELECT * FROM dana.score('m', 'train', segments => {segments});"
            bare_result = bare.database.execute(sql)
            explained = _system(key)
            run = explained.train(key, "train", segments=2)
            explained.save_model("m", key, run.models)
            result = explained.database.execute("EXPLAIN ANALYZE " + sql)
            report = result.payload
            assert report.result.rows == bare_result.rows
            _assert_span_coverage(report)

    def test_predict_scan_tree_with_filter(self):
        system = _system("linear")
        run = system.train("linear", "train", segments=2)
        system.save_model("m", "linear", run.models)
        result = system.database.execute(
            "EXPLAIN ANALYZE SELECT dana.predict('m') FROM train "
            "WHERE x0 > 0.0 LIMIT 5;"
        )
        report = result.payload
        names = [op.name for op in report.root.walk()]
        assert "Filter" in names and "Limit" in names
        assert report.root.actual["rows"] <= 5
        _assert_span_coverage(report)


class TestWorkerClamp:
    def test_score_result_worker_limit(self):
        system = _system("linear")
        run = system.train("linear", "train", segments=2)
        system.save_model("m", "linear", run.models)
        for execution in ("threads", "processes"):
            score = system.score_table(
                "linear", "train", model_name="m", segments=2, execution=execution
            )
            assert score.worker_limit == min(2, max(1, os.cpu_count() or 1))

    def test_cluster_stats_worker_limit(self):
        system = _system("linear")
        run = system.train("linear", "train", segments=4, execution="threads")
        assert run.cluster.worker_limit == min(4, max(1, os.cpu_count() or 1))
        system = _system("linear")
        run = system.train("linear", "train", segments=2, execution="lockstep")
        assert run.cluster.worker_limit == 0

    def test_process_pool_worker_limit(self):
        system = _system("linear")
        run = system.train("linear", "train", segments=2, execution="processes")
        assert run.cluster.worker_limit == min(2, max(1, os.cpu_count() or 1))


class TestExplainReportShape:
    def test_payload_round_trips_as_json(self):
        import json

        system = _system("linear")
        system.enable_run_recording()
        result = system.database.execute(
            "EXPLAIN ANALYZE " + _create_model_sql("linear", 2, "threads")
        )
        payload = result.payload.to_payload()
        decoded = json.loads(json.dumps(payload))
        assert decoded["analyze"] is True
        assert decoded["operators"]["children"]
        assert decoded["plan"] == [row[0] for row in result.rows]

    def test_operator_walk_and_render(self):
        root = PlanOperator(
            name="A",
            knobs={"k": 1},
            predicted={"cycles": 2},
            children=[PlanOperator(name="B"), PlanOperator(name="C")],
        )
        assert [op.name for op in root.walk()] == ["A", "B", "C"]
        lines = root.render()
        assert lines[0] == "A  (k=1)"
        assert any(line.startswith("├─ B") for line in lines)
        assert any(line.startswith("└─ C") for line in lines)
