"""Smoke tests: every ``examples/`` script must run to completion.

The examples are the documented entry points of the reproduction (and the
quickstart now demos the sharded ``segments=`` path); running them under
pytest keeps them from rotting.  Each script executes in a subprocess with
``PYTHONPATH=src``, exactly as the README instructs users to run them.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))
TIMEOUT_S = 180


@pytest.mark.smoke
@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs_clean(script: Path):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=TIMEOUT_S,
    )
    assert result.returncode == 0, (
        f"{script.name} exited with {result.returncode}\n"
        f"--- stdout ---\n{result.stdout[-2000:]}\n"
        f"--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 6, "examples/ directory lost scripts"
