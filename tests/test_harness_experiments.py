"""Tests for the experiment harness: every table/figure function produces
rows whose *shape* matches the paper's qualitative findings."""

import pytest

from repro.harness import format_table
from repro.harness.experiments import (
    EXPERIMENTS,
    ablation_design_space,
    fig8_real_datasets,
    fig9_synthetic_nominal,
    fig10_synthetic_extensive,
    fig11_strider_benefit,
    fig12_thread_sweep,
    fig13_greenplum_segments,
    fig14_bandwidth_sweep,
    fig15_end_to_end,
    fig15_external_breakdown,
    fig16_tabla,
    table2_strider_isa,
    table3_workloads,
    table5_absolute_runtimes,
)


def _row(rows, **filters):
    for row in rows:
        if all(row.get(k) == v for k, v in filters.items()):
            return row
    raise AssertionError(f"no row matching {filters}")


class TestTables:
    def test_table2_programs_fit_isa(self):
        rows = table2_strider_isa()
        assert len(rows) == 3
        assert all(row["all_words_fit_22_bits"] for row in rows)
        assert all(row["instruction_bits"] == 22 for row in rows)

    def test_table3_has_all_workloads(self):
        rows = table3_workloads()
        assert len(rows) == 14
        netflix = _row(rows, workload="Netflix")
        assert netflix["model_topology"] == "6040x3952x10"

    def test_table5_ordering_matches_paper(self):
        rows = table5_absolute_runtimes()
        assert len(rows) == 14
        for row in rows:
            assert row["dana_postgres_s"] < row["madlib_postgres_s"] * 1.2
        # the largest MADlib runtime is the S/E Logistic workload, as in Table 5
        worst = max(rows, key=lambda r: r["madlib_postgres_s"])
        assert worst["workload"] == "S/E Logistic"


class TestSpeedupFigures:
    def test_fig8_geomean_in_paper_ballpark(self):
        rows = fig8_real_datasets(warm_cache=True)
        geomean_row = _row(rows, workload="Geomean")
        assert 5.0 <= geomean_row["dana_speedup"] <= 14.0      # paper: 8.3
        assert 1.2 <= geomean_row["greenplum_speedup"] <= 4.0   # paper: 2.1
        best = _row(rows, workload="Remote Sensing LR")
        assert best["dana_speedup"] > 20                        # paper: 28.2

    def test_fig8_cold_cache_lower_than_warm(self):
        warm = _row(fig8_real_datasets(True), workload="Geomean")["dana_speedup"]
        cold = _row(fig8_real_datasets(False), workload="Geomean")["dana_speedup"]
        assert cold < warm

    def test_fig9_and_fig10_dana_wins(self):
        for rows in (fig9_synthetic_nominal(True), fig10_synthetic_extensive(True)):
            geomean_row = _row(rows, workload="Geomean")
            assert geomean_row["dana_speedup"] > geomean_row["greenplum_speedup"]

    def test_fig9_lrmf_is_dana_weak_spot(self):
        rows = fig9_synthetic_nominal(True)
        lrmf = _row(rows, workload="S/N LRMF")
        others = [r for r in rows if r["workload"] not in ("S/N LRMF", "Geomean")]
        assert all(lrmf["dana_speedup"] <= r["dana_speedup"] for r in others)
        assert lrmf["greenplum_speedup"] >= lrmf["dana_speedup"] * 0.8

    def test_every_speedup_row_has_paper_reference(self):
        for rows in (fig8_real_datasets(True), fig9_synthetic_nominal(True)):
            for row in rows:
                assert row["paper_dana_speedup"] is not None


class TestAblationsAndSweeps:
    def test_fig11_striders_amplify(self):
        rows = fig11_strider_benefit()
        geomean_row = _row(rows, workload="Geomean")
        assert geomean_row["dana_with_strider"] > geomean_row["dana_without_strider"]
        assert geomean_row["strider_amplification"] > 1.5

    def test_fig12_narrow_models_scale_with_threads(self):
        rows = fig12_thread_sweep()
        rs = [r for r in rows if r["workload"] == "Remote Sensing LR"]
        assert rs[0]["runtime_vs_single_thread"] == pytest.approx(1.0)
        assert min(r["runtime_vs_single_thread"] for r in rs) < 0.5
        # monotonically non-increasing runtime with more threads
        values = [r["runtime_vs_single_thread"] for r in rs]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    def test_fig12_lrmf_flat(self):
        rows = fig12_thread_sweep()
        netflix = [r["runtime_vs_single_thread"] for r in rows if r["workload"] == "Netflix"]
        assert max(netflix) - min(netflix) < 0.1

    def test_fig13_eight_segments_best(self):
        rows = fig13_greenplum_segments()
        for workload in ("Remote Sensing LR", "Patient"):
            eight = _row(rows, workload=workload, segments=8)["speedup_vs_8_segments"]
            sixteen = _row(rows, workload=workload, segments=16)["speedup_vs_8_segments"]
            postgres = _row(rows, workload=workload, segments="postgres")["speedup_vs_8_segments"]
            assert eight == pytest.approx(1.0)
            assert sixteen < 1.0
            assert postgres < 1.0

    def test_fig14_bandwidth_monotone(self):
        rows = fig14_bandwidth_sweep()
        geomeans = {r["bandwidth_scale"]: r["speedup_vs_baseline_bandwidth"]
                    for r in rows if r["workload"] == "Geomean"}
        assert geomeans[0.25] < geomeans[0.5] < geomeans[1.0] <= geomeans[2.0] <= geomeans[4.0]

    def test_fig14_lrmf_insensitive(self):
        rows = fig14_bandwidth_sweep()
        lrmf = {r["bandwidth_scale"]: r["speedup_vs_baseline_bandwidth"]
                for r in rows if r["workload"] == "S/N LRMF"}
        assert lrmf[4.0] - lrmf[0.25] < 0.3

    def test_fig15_export_dominates(self):
        rows = fig15_external_breakdown()
        assert rows, "no external-library rows"
        for row in rows:
            assert row["data_export_pct"] > row["data_transform_pct"]

    def test_fig15_dana_fastest_end_to_end(self):
        rows = fig15_end_to_end()
        for row in rows:
            competitors = [v for k, v in row.items()
                           if k in ("liblinear", "dimmwitted", "madlib_greenplum") and v]
            assert row["dana"] >= max(competitors) * 0.8

    def test_fig16_dana_beats_tabla(self):
        rows = fig16_tabla()
        geomean_row = _row(rows, workload="Geomean")
        assert geomean_row["dana_speedup_over_tabla"] > 1.5

    def test_design_space_ablation(self):
        rows = ablation_design_space("Remote Sensing LR")
        assert any(row["chosen"] for row in rows)
        chosen = _row(rows, chosen=True)
        best_cycles = min(row["cycles_per_epoch"] for row in rows)
        assert chosen["cycles_per_epoch"] <= best_cycles * 1.01


class TestHarnessUtilities:
    def test_registry_complete(self):
        assert len(EXPERIMENTS) >= 15
        for name, fn in EXPERIMENTS.items():
            assert callable(fn), name

    def test_format_table(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2.5, "b": None}]
        text = format_table(rows, title="demo")
        assert "demo" in text and "a" in text and "x" in text and "-" in text
        assert format_table([]) == "(no rows)"
