"""Tier-1 enforcement of the public-API docstring contract.

``tools/check_docstrings.py`` is the CI gate; running it under pytest too
means a plain ``pytest -x -q`` catches an undocumented public def before
the workflow does.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_docstrings.py"


def test_public_api_docstrings_complete():
    result = subprocess.run(
        [sys.executable, str(CHECKER)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, (
        "public defs without docstrings:\n" + result.stdout + result.stderr
    )


def test_runtime_pipeline_layer_documented_too():
    # BatchSource / SyncPolicy / EpochDriver are part of the documented
    # public surface (docs/architecture.md) even though the CI default
    # scope is core/rdbms/serving.
    result = subprocess.run(
        [sys.executable, str(CHECKER), "--packages", "runtime"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stdout + result.stderr
