"""Telemetry layer tests: metric primitives, spans, arming, and parity.

The parity class is the load-bearing one: arming a telemetry session must
leave models, predictions and every schedule-derived counter bit-identical
to a telemetry-off run — spans and histograms are wall-clock observers,
never inputs to the computation.
"""

import json

import numpy as np
import pytest

from repro.algorithms import Hyperparameters, get_algorithm
from repro.core.dana import DAnA
from repro.data.synthetic import generate_for_algorithm
from repro.exceptions import ConfigurationError
from repro.obs import (
    DEFAULT_SECONDS_BUCKETS,
    HISTOGRAM_SITES,
    SPAN_SITES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanTracer,
    StatementTrace,
    Telemetry,
    enable_telemetry,
    telemetry,
)
from repro.rdbms import Database

LRMF_TOPOLOGY = (24, 18, 4)
ALGORITHMS = ("linear", "logistic", "svm", "lrmf")


def _system(key, n_tuples=192, epochs=2, seed=11):
    """A fresh DAnA system with one algorithm UDF over a loaded table."""
    algorithm = get_algorithm(key)
    n_features = 4 if key == "lrmf" else 6
    topology = LRMF_TOPOLOGY if key == "lrmf" else ()
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=8, epochs=epochs)
    spec = algorithm.build_spec(n_features, hyper, topology)
    data = generate_for_algorithm(key, n_tuples, n_features, LRMF_TOPOLOGY, seed=seed)
    database = Database(page_size=8 * 1024)
    database.load_table("train", spec.schema, data)
    database.warm_cache("train")
    system = DAnA(database)
    system.register_udf(key, spec, epochs=epochs)
    return system


class TestCounter:
    def test_monotonic_add(self):
        counter = Counter("requests")
        counter.add()
        counter.add(2.5)
        assert counter.value == 3.5
        assert counter.to_dict() == {"type": "counter", "value": 3.5}

    def test_negative_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("requests").add(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("queue_depth")
        assert gauge.value == 0.0
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3.0
        assert gauge.to_dict() == {"type": "gauge", "value": 3.0}


class TestHistogram:
    def test_bucket_counts(self):
        hist = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.bucket_counts == [1, 1, 1, 1]
        assert hist.count == 4
        assert hist.min == 0.05
        assert hist.max == 50.0
        assert hist.mean == pytest.approx((0.05 + 0.5 + 5.0 + 50.0) / 4)

    def test_buckets_must_increase(self):
        with pytest.raises(ConfigurationError):
            Histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("bad", buckets=())

    def test_observe_many_matches_observe_loop(self):
        values = list(np.random.default_rng(0).uniform(0.0, 3.0, size=500))
        one_by_one = Histogram("a", buckets=DEFAULT_SECONDS_BUCKETS, window=64)
        bulk = Histogram("b", buckets=DEFAULT_SECONDS_BUCKETS, window=64)
        for value in values:
            one_by_one.observe(value)
        bulk.observe_many(values)
        assert bulk.bucket_counts == one_by_one.bucket_counts
        assert bulk.count == one_by_one.count
        assert bulk.sum == pytest.approx(one_by_one.sum)
        assert bulk.min == one_by_one.min
        assert bulk.max == one_by_one.max
        assert list(bulk.samples) == pytest.approx(list(one_by_one.samples))

    def test_windowed_percentile_is_exact(self):
        hist = Histogram("lat", buckets=(1e9,), window=1000)
        values = np.random.default_rng(1).normal(loc=5.0, scale=2.0, size=999)
        hist.observe_many(values)
        assert hist.percentile(50) == pytest.approx(
            float(np.percentile(values, 50))
        )
        assert hist.percentile(99) == pytest.approx(
            float(np.percentile(values, 99))
        )

    def test_bucket_percentile_estimate(self):
        hist = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        hist.observe_many([0.5] * 50 + [3.0] * 50)
        # the p50 rank falls on the boundary of the first bucket
        assert 0.0 <= hist.percentile(50) <= 1.0
        assert 2.0 <= hist.percentile(99) <= 4.0

    def test_empty_percentile(self):
        assert Histogram("lat").percentile(99) == 0.0


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.names() == ["a", "h"]

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ConfigurationError):
            registry.gauge("a")

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        registry.histogram("h").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["c"]["type"] == "counter"
        assert snapshot["h"]["type"] == "histogram"
        json.dumps(snapshot)  # must be JSON-serializable as-is


class TestSpanTracer:
    def test_nesting_depth_and_parent(self):
        tracer = SpanTracer()
        outer = tracer.start("runtime.epoch", epoch=0)
        inner = tracer.start("cluster.segment.train", segment=1)
        tracer.finish(inner)
        tracer.finish(outer, executed=True)
        spans = tracer.to_list()
        assert [span["name"] for span in spans] == [
            "cluster.segment.train",
            "runtime.epoch",
        ]
        assert spans[0]["depth"] == 1
        assert spans[0]["parent"] == "runtime.epoch"
        assert spans[1]["depth"] == 0
        assert spans[1]["parent"] is None
        assert spans[1]["attrs"] == {"epoch": 0, "executed": True}
        assert all(span["duration_s"] >= 0.0 for span in spans)

    def test_rollup_and_mark(self):
        tracer = SpanTracer()
        for _ in range(3):
            tracer.finish(tracer.start("hw.decode"))
        mark = tracer.mark()
        tracer.finish(tracer.start("hw.decode"))
        assert tracer.rollup()["hw.decode"]["count"] == 4
        assert tracer.rollup(start=mark)["hw.decode"]["count"] == 1
        assert len(tracer) == 4

    def test_to_json(self):
        tracer = SpanTracer()
        tracer.finish(tracer.start("sql.execute", statement="Select"))
        parsed = json.loads(tracer.to_json())
        assert parsed[0]["name"] == "sql.execute"


class TestArming:
    def test_disarmed_by_default(self):
        assert telemetry() is None

    def test_enable_scopes_the_session(self):
        session = Telemetry()
        with enable_telemetry(session) as armed:
            assert armed is session
            assert telemetry() is session
        assert telemetry() is None

    def test_nesting_composes(self):
        outer_session = Telemetry()
        inner_session = Telemetry()
        with enable_telemetry(outer_session):
            span = outer_session.span("sql.execute")
            outer_session.finish(span)
            with enable_telemetry(inner_session):
                assert telemetry() is inner_session
                span = inner_session.span("runtime.epoch")
                inner_session.finish(span)
            # the outer session is re-armed and has absorbed the inner copy
            assert telemetry() is outer_session
            outer_rollup = outer_session.tracer.rollup()
            assert outer_rollup["sql.execute"]["count"] == 1
            assert outer_rollup["runtime.epoch"]["count"] == 1
            # the inner session kept only its own private spans
            inner_rollup = inner_session.tracer.rollup()
            assert set(inner_rollup) == {"runtime.epoch"}
        assert telemetry() is None

    def test_statement_trace_composes_with_outer_session(self):
        outer_session = Telemetry()
        trace = StatementTrace()
        with enable_telemetry(outer_session):
            with trace:
                span = telemetry().span("sql.execute")
                telemetry().finish(span)
            assert telemetry() is outer_session
        assert telemetry() is None
        assert trace.rollup()["sql.execute"]["count"] == 1
        assert outer_session.tracer.rollup()["sql.execute"]["count"] == 1
        assert trace.wall_seconds > 0.0
        payload = trace.to_payload()
        assert set(payload) == {"wall_seconds", "rollup", "spans", "metrics"}

    def test_site_tables_are_disjoint(self):
        assert not set(SPAN_SITES) & set(HISTOGRAM_SITES)


@pytest.mark.parametrize("key", ALGORITHMS)
@pytest.mark.parametrize("segments", [1, 2, 4])
class TestTelemetryParity:
    """Telemetry-on runs are bit-identical to telemetry-off runs."""

    def test_train_and_score_parity(self, key, segments):
        baseline_system = _system(key)
        baseline = baseline_system.train(key, "train", segments=segments)
        baseline_scores = baseline_system.score_table(
            key, "train", models=baseline.models, segments=segments
        )

        armed_system = _system(key)
        with enable_telemetry() as session:
            armed = armed_system.train(key, "train", segments=segments)
            armed_scores = armed_system.score_table(
                key, "train", models=armed.models, segments=segments
            )

        assert set(baseline.models) == set(armed.models)
        for name in baseline.models:
            np.testing.assert_array_equal(baseline.models[name], armed.models[name])
        assert baseline.engine_stats.__dict__ == armed.engine_stats.__dict__
        assert baseline.access_stats.__dict__ == armed.access_stats.__dict__
        np.testing.assert_array_equal(
            baseline_scores.predictions, armed_scores.predictions
        )
        assert baseline_scores.inference_stats == armed_scores.inference_stats
        assert (
            baseline_scores.critical_path_cycles == armed_scores.critical_path_cycles
        )

        # the observers actually observed: spans landed at known sites
        rollup = session.tracer.rollup()
        assert rollup, "an armed train/score run recorded no spans"
        assert set(rollup) <= set(SPAN_SITES)
        assert rollup["serving.scorer.segment"]["count"] == segments


class TestInstrumentationSites:
    def test_lockstep_train_spans(self):
        # lockstep trains all segments on one segment-axis tape, so the
        # per-segment train span does not apply; the epoch and merge
        # spans carry the trace.
        system = _system("linear")
        with enable_telemetry() as session:
            system.train("linear", "train", segments=2)
        rollup = session.tracer.rollup()
        assert rollup["cluster.segment.merge"]["count"] >= 1
        assert rollup["runtime.epoch"]["count"] >= 2
        assert rollup["hw.strider.page_walk"]["count"] >= 1
        assert rollup["hw.decode"]["count"] >= 1

    def test_threads_train_spans(self):
        system = _system("linear")
        with enable_telemetry() as session:
            system.train("linear", "train", segments=2, execution="threads")
        rollup = session.tracer.rollup()
        assert rollup["cluster.segment.train"]["count"] >= 2
        assert rollup["cluster.segment.merge"]["count"] >= 1
        assert rollup["runtime.epoch"]["count"] >= 2

    def test_streaming_wait_histograms(self):
        system = _system("linear")
        with enable_telemetry() as session:
            system.train("linear", "train", stream=True)
        snapshot = session.metrics.snapshot()
        produce = snapshot["runtime.batch_source.produce"]
        consume = snapshot["runtime.batch_source.consume"]
        assert produce["count"] >= 1
        # the consumer pulls every delivered chunk plus the end-of-stream
        # sentinel, so its wait count is at least the producer's
        assert consume["count"] >= produce["count"]

    def test_sql_execute_span(self):
        system = _system("linear")
        with enable_telemetry() as session:
            result = system.execute("SELECT COUNT(*) FROM train")
        spans = [
            span
            for span in session.tracer.to_list()
            if span["name"] == "sql.execute"
        ]
        assert len(spans) == 1
        assert spans[0]["attrs"]["rows"] == len(result.rows)
