"""Tests for the Strider simulator + Strider compiler against real pages."""

import numpy as np
import pytest

from repro.compiler import compile_strider
from repro.exceptions import StriderError
from repro.hw.access_engine import PayloadDecoder
from repro.hw.strider import Strider
from repro.isa import StriderInstruction, StriderOpcode, StriderProgram, cr, imm, tr
from repro.rdbms.heaptuple import decode_tuple
from repro.rdbms.page import HeapPage, PageLayout
from repro.rdbms.types import Schema


@pytest.fixture
def layout():
    return PageLayout(page_size=8 * 1024)


@pytest.fixture
def schema():
    return Schema.training_schema(4)


@pytest.fixture
def page_with_rows(layout, schema):
    page = HeapPage(layout)
    rows = [(float(i), float(i) * 2, -float(i), 1.0, float(i) % 3) for i in range(20)]
    for row in rows:
        page.insert(schema, row)
    return page, rows


class TestStriderCompiler:
    def test_program_structure(self, layout, schema):
        result = compile_strider(layout, schema)
        opcodes = [inst.opcode for inst in result.program.instructions]
        assert opcodes.count(StriderOpcode.READB) >= 5
        assert StriderOpcode.BENTR in opcodes
        assert StriderOpcode.BEXIT in opcodes
        assert StriderOpcode.CLN in opcodes
        assert result.header_instructions > 0
        assert result.loop_instructions > 0

    def test_all_instructions_encode(self, layout, schema):
        result = compile_strider(layout, schema)
        for word in result.program.encode():
            assert 0 <= word < (1 << 22)

    def test_constants_cover_large_offsets(self, layout, schema):
        result = compile_strider(layout, schema)
        # line-pointer start (24) does not fit in a 5-bit immediate
        assert any(v == layout.line_pointer_start for v in result.program.constants.values())

    def test_dynamic_instruction_count(self, layout, schema):
        result = compile_strider(layout, schema)
        assert result.instructions_for_page(10) == (
            result.header_instructions + 10 * result.loop_instructions
        )


class TestStriderExecution:
    def test_extracts_every_tuple(self, layout, schema, page_with_rows):
        page, rows = page_with_rows
        result = compile_strider(layout, schema)
        strider = Strider(result.program)
        out = strider.process_page(page.to_bytes())
        assert out.stats.tuples_emitted == len(rows)
        decoder = PayloadDecoder(schema)
        decoded = decoder.decode_many(out.payloads)
        np.testing.assert_allclose(decoded, np.asarray(rows), rtol=1e-6)

    def test_payloads_are_cleansed(self, layout, schema, page_with_rows):
        page, rows = page_with_rows
        result = compile_strider(layout, schema)
        out = Strider(result.program).process_page(page.to_bytes())
        # the payload is exactly the attribute bytes: no tuple header left
        assert all(len(p) == schema.row_width for p in out.payloads)
        assert decode_tuple(schema, page.read_raw(0)) == rows[0]

    def test_cycle_accounting(self, layout, schema, page_with_rows):
        page, rows = page_with_rows
        result = compile_strider(layout, schema)
        out = Strider(result.program).process_page(page.to_bytes())
        assert out.stats.cycles >= out.stats.instructions_executed
        assert out.stats.loop_iterations == len(rows) - 1
        assert out.stats.bytes_read > 0

    def test_different_page_sizes(self, schema):
        for page_size in (8 * 1024, 16 * 1024, 32 * 1024):
            layout = PageLayout(page_size=page_size)
            page = HeapPage(layout)
            rows = [(1.0, 2.0, 3.0, 4.0, 5.0)] * 7
            for row in rows:
                page.insert(schema, row)
            result = compile_strider(layout, schema)
            out = Strider(result.program).process_page(page.to_bytes())
            assert out.stats.tuples_emitted == 7

    def test_wide_tuples(self):
        layout = PageLayout(page_size=32 * 1024)
        schema = Schema.training_schema(520)
        page = HeapPage(layout)
        rng = np.random.default_rng(3)
        rows = rng.normal(size=(10, 521))
        for row in rows:
            page.insert(schema, row.tolist())
        result = compile_strider(layout, schema)
        out = Strider(result.program).process_page(page.to_bytes())
        decoded = PayloadDecoder(schema).decode_many(out.payloads)
        np.testing.assert_allclose(decoded, rows, rtol=1e-5, atol=1e-5)

    def test_lrmf_schema_page(self):
        layout = PageLayout(page_size=8 * 1024)
        schema = Schema.lrmf_schema()
        page = HeapPage(layout)
        rows = [(3, 5, 4.5), (1, 2, 2.0), (0, 7, 1.5)]
        for row in rows:
            page.insert(schema, row)
        result = compile_strider(layout, schema)
        out = Strider(result.program).process_page(page.to_bytes())
        decoded = PayloadDecoder(schema).decode_many(out.payloads)
        np.testing.assert_allclose(decoded, np.asarray(rows, dtype=float), rtol=1e-6)

    def test_out_of_bounds_read_rejected(self):
        program = StriderProgram(
            instructions=[StriderInstruction(StriderOpcode.READB, cr(0), imm(8), tr(0))],
            constants={0: 10_000},
        )
        with pytest.raises(StriderError):
            Strider(program).process_page(b"\x00" * 1024)

    def test_runaway_loop_detected(self):
        program = StriderProgram(
            instructions=[
                StriderInstruction(StriderOpcode.BENTR),
                StriderInstruction(StriderOpcode.AD, tr(0), tr(0), imm(0)),
                StriderInstruction(StriderOpcode.BEXIT, imm(0), tr(0), imm(1)),
            ],
            constants={},
        )
        with pytest.raises(StriderError):
            Strider(program, max_instructions=1000).process_page(b"\x00" * 1024)

    def test_arithmetic_and_extract_instructions(self):
        # hand-written program: read 4 bytes, extract the second byte,
        # do arithmetic on registers, and emit a cleansed payload.
        page = bytearray(64)
        page[0:4] = (10).to_bytes(4, "little")
        page[8:16] = b"ABCDEFGH"
        program = StriderProgram(
            instructions=[
                StriderInstruction(StriderOpcode.READB, imm(0), imm(4), tr(0)),
                StriderInstruction(StriderOpcode.EXTRB, imm(1), imm(1), tr(1)),
                StriderInstruction(StriderOpcode.AD, tr(2), tr(0), imm(5)),
                StriderInstruction(StriderOpcode.MUL, tr(3), tr(2), imm(2)),
                StriderInstruction(StriderOpcode.SUB, tr(4), tr(3), imm(6)),
                StriderInstruction(StriderOpcode.READB, imm(8), imm(8), tr(5)),
                StriderInstruction(StriderOpcode.CLN, imm(2), imm(4), imm(2)),
            ],
            constants={},
        )
        strider = Strider(program)
        out = strider.process_page(bytes(page))
        assert out.payloads == [b"CDEF"]

    def test_extrbi_bit_extraction(self):
        page = bytearray(16)
        page[0] = 0b1011_0110
        program = StriderProgram(
            instructions=[
                StriderInstruction(StriderOpcode.READB, imm(0), imm(1), tr(0)),
                StriderInstruction(StriderOpcode.EXTRBI, imm(1), imm(3), tr(1)),
                StriderInstruction(StriderOpcode.INS, imm(7), imm(2), imm(0)),
                StriderInstruction(StriderOpcode.CLN, imm(0), imm(0), imm(2)),
            ],
            constants={},
        )
        out = Strider(program).process_page(bytes(page))
        # bits [1:4) of 0b10110110 are 0b011 = 3; payload = original byte + 2 inserted bytes
        assert out.payloads == [bytes([0b1011_0110, 7, 7])]
