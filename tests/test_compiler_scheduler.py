"""Tests for the static scheduler, hardware generator and design space."""

import numpy as np
import pytest

from repro.compiler import (
    DesignSpaceExplorer,
    HardwareGenerator,
    Scheduler,
    SubNodeExpander,
    WorkloadShape,
    estimate_region_cycles,
)
from repro.compiler.scheduler import broadcast_source_index, node_ref
from repro.exceptions import ResourceError, SchedulingError
from repro.hw.fpga import ARRIA_10, DEFAULT_FPGA, FPGASpec
from repro.isa.engine_isa import AUS_PER_CLUSTER
from repro.rdbms.page import PageLayout
from repro.rdbms.types import Schema
from repro.translator import NodeKind, Region, translate


@pytest.fixture
def graph(linear_algo_factory):
    return translate(linear_algo_factory(n_features=10, merge_coefficient=8))


class TestSubNodeExpansion:
    def test_broadcast_source_index(self):
        # scalar source
        assert broadcast_source_index(5, (10,), ()) == 0
        # identical shapes
        assert broadcast_source_index(7, (10,), (10,)) == 7
        # replicated smaller operand: out (2, 3), src (3,)
        assert broadcast_source_index(4, (2, 3), (3,)) == 1

    def test_primary_node_expansion_count(self, graph):
        expander = SubNodeExpander(graph)
        for node in graph.compute_nodes():
            subs = expander.expand(node)
            expected = node.sub_node_count(graph.input_dims_of(node))
            if node.kind is NodeKind.GROUP:
                # the expander adds one copy-out per output element
                assert len(subs) == expected + node.element_count
            elif node.kind is NodeKind.MERGE:
                assert subs == []
            else:
                assert len(subs) == expected

    def test_group_expansion_has_reduction_tree(self, graph):
        expander = SubNodeExpander(graph)
        group = next(n for n in graph.nodes() if n.kind is NodeKind.GROUP)
        subs = expander.expand(group)
        from repro.dsl import Operator

        multiplies = [s for s in subs if s.op is Operator.MUL]
        adds = [s for s in subs if s.op is Operator.ADD]
        assert len(multiplies) == 10          # K products
        assert len(adds) == 9 + 1             # K-1 reductions + final copy-out


class TestScheduler:
    def test_schedule_is_complete_and_resource_safe(self, graph):
        schedule = Scheduler(graph, acs_per_thread=2).schedule()
        program = schedule.program
        assert program.update_rule_cycles > 0
        assert program.post_merge_cycles > 0
        for steps in (program.update_rule_steps, program.post_merge_steps):
            for step in steps:
                assert len(step.cluster_instructions) <= 2
                for instruction in step.cluster_instructions:
                    assert instruction.enabled_au_count <= AUS_PER_CLUSTER

    def test_more_clusters_means_fewer_cycles(self, linear_algo_factory):
        graph = translate(linear_algo_factory(n_features=64, merge_coefficient=8))
        narrow = Scheduler(graph, acs_per_thread=1).schedule()
        wide = Scheduler(graph, acs_per_thread=8).schedule()
        assert wide.update_rule_cycles < narrow.update_rule_cycles

    def test_selective_simd_one_operation_per_cluster(self, graph):
        schedule = Scheduler(graph, acs_per_thread=4).schedule()
        for step in schedule.program.update_rule_steps:
            cluster_ids = [ci.cluster_id for ci in step.cluster_instructions]
            assert len(cluster_ids) == len(set(cluster_ids))

    def test_schedule_stats_utilization(self, graph):
        schedule = Scheduler(graph, acs_per_thread=2).schedule()
        stats = schedule.stats[Region.UPDATE_RULE]
        assert 0 < stats.average_au_utilization <= 1.0
        assert stats.operations == sum(
            ci.enabled_au_count
            for step in schedule.program.update_rule_steps
            for ci in step.cluster_instructions
        )

    def test_invalid_cluster_count(self, graph):
        with pytest.raises(SchedulingError):
            Scheduler(graph, acs_per_thread=0)

    def test_estimate_is_lower_bound_of_real_schedule(self, graph):
        real = Scheduler(graph, acs_per_thread=2).schedule()
        estimate = estimate_region_cycles(graph, Region.UPDATE_RULE, acs_per_thread=2)
        assert estimate <= real.update_rule_cycles * 2  # same order of magnitude
        assert estimate >= 1

    def test_convergence_region_scheduled(self, linear_algo_factory):
        from repro import dana

        algo = linear_algo_factory(n_features=6)
        graph = translate(algo)
        schedule = Scheduler(graph, acs_per_thread=1).schedule()
        assert schedule.program.convergence_cycles == 0  # no convergence condition

    def test_address_map_covers_all_destinations(self, graph):
        schedule = Scheduler(graph, acs_per_thread=2).schedule()
        for step in schedule.program.update_rule_steps:
            for instruction in step.cluster_instructions:
                for slot in instruction.au_slots:
                    assert slot.dest_address < len(schedule.address_map)


class TestHardwareGenerator:
    def _generator(self, graph, fpga=DEFAULT_FPGA, n_tuples=10_000, merge=8):
        return HardwareGenerator(
            graph,
            PageLayout(page_size=32 * 1024),
            Schema.training_schema(10),
            fpga,
            merge_coefficient=merge,
            n_tuples=n_tuples,
        )

    def test_design_respects_fpga_budget(self, graph):
        design = self._generator(graph).generate()
        assert design.total_aus <= DEFAULT_FPGA.max_analytic_units()
        assert design.threads <= 8
        assert design.num_striders >= 1
        assert design.bram.total_bytes <= DEFAULT_FPGA.bram_bytes

    def test_smaller_fpga_gets_smaller_design(self, graph):
        big = self._generator(graph, DEFAULT_FPGA).generate()
        small = self._generator(graph, ARRIA_10).generate()
        assert small.total_aus <= big.total_aus
        assert small.num_striders <= big.num_striders

    def test_thread_count_bounded_by_merge_coefficient(self, graph):
        design = self._generator(graph, merge=2).generate()
        assert design.threads <= 2

    def test_model_too_large_for_bram(self, linear_algo_factory):
        graph = translate(linear_algo_factory(n_features=64))
        tiny = FPGASpec(
            name="tiny", luts=1000, flip_flops=1000, frequency_mhz=100,
            bram_bytes=60 * 1024, dsp_slices=80,
        )
        generator = HardwareGenerator(
            graph, PageLayout(page_size=32 * 1024), Schema.training_schema(64), tiny,
            merge_coefficient=4, n_tuples=1000,
        )
        with pytest.raises(ResourceError):
            generator.generate()

    def test_access_engine_config(self, graph):
        design = self._generator(graph).generate()
        config = design.access_engine_config
        assert config.num_striders == design.num_striders
        assert config.page_size == 32 * 1024


class TestDesignSpace:
    def _explorer(self, graph, merge=64, n_tuples=100_000):
        workload = WorkloadShape(
            n_tuples=n_tuples, tuples_per_page=100, page_size=32 * 1024, tuple_bytes=220
        )
        return DesignSpaceExplorer(
            graph=graph,
            fpga=DEFAULT_FPGA,
            workload=workload,
            merge_coefficient=merge,
            strider_cycles_per_page=5000,
            num_striders=32,
        )

    def test_candidates_are_powers_of_two(self, graph):
        explorer = self._explorer(graph)
        candidates = explorer.candidate_thread_counts()
        assert candidates[0] == 1
        assert all(b % a == 0 for a, b in zip(candidates, candidates[1:]))

    def test_more_threads_reduce_compute_cycles(self, linear_algo_factory):
        graph = translate(linear_algo_factory(n_features=512, merge_coefficient=64))
        explorer = self._explorer(graph)
        one = explorer.evaluate(1)
        many = explorer.evaluate(32)
        assert many.compute_cycles_per_epoch < one.compute_cycles_per_epoch

    def test_best_is_smallest_within_tolerance(self, graph):
        explorer = self._explorer(graph)
        best = explorer.best()
        floor = min(p.cycles_per_epoch for p in explorer.explore())
        assert best.cycles_per_epoch <= floor * 1.01

    def test_data_cycles_independent_of_threads(self, graph):
        explorer = self._explorer(graph)
        points = explorer.explore()
        assert len({round(p.data_cycles_per_epoch, 3) for p in points}) == 1
