"""Tests for the DAnA facade and the end-to-end workload runner."""

import numpy as np
import pytest

from repro.algorithms import Hyperparameters, LinearRegression
from repro.core import DAnA, WorkloadRunner
from repro.data import get_workload
from repro.exceptions import ConfigurationError
from repro.rdbms import Database


class TestDAnAFacade:
    @pytest.fixture
    def system(self, small_database):
        return DAnA(small_database)

    def test_register_and_query_via_sql(self, system, small_database, small_regression_data):
        system.register_algorithm_udf(
            "linearR",
            "linear",
            n_features=4,
            hyper=Hyperparameters(learning_rate=0.05, merge_coefficient=8),
            epochs=30,
        )
        result = small_database.execute("SELECT * FROM dana.linearR('train')")
        assert result.stats["system"] == "DAnA+PostgreSQL"
        assert result.stats["tuples_extracted"] == 200
        models = {name: np.asarray(coeffs) for name, coeffs in result.rows}
        loss = LinearRegression().loss(small_regression_data, models)
        assert loss < 0.05

    def test_catalog_holds_accelerator_metadata(self, system, small_database):
        system.register_algorithm_udf("linearR", "linear", n_features=4, epochs=2)
        system.compile_udf("linearR", "train")
        entry = small_database.catalog.accelerator("linearR")
        assert entry.algorithm == "linear"
        assert entry.strider_program.instruction_count() > 0
        assert entry.metadata["threads"] >= 1

    def test_compile_is_cached_per_table(self, system):
        system.register_algorithm_udf("linearR", "linear", n_features=4, epochs=2)
        first = system.compile_udf("linearR", "train")
        second = system.compile_udf("linearR", "train")
        assert first is second

    def test_duplicate_registration_rejected(self, system):
        system.register_algorithm_udf("linearR", "linear", n_features=4)
        with pytest.raises(ConfigurationError):
            system.register_algorithm_udf("linearR", "linear", n_features=4)

    def test_unknown_udf_train(self, system):
        with pytest.raises(ConfigurationError):
            system.train("missing", "train")

    def test_custom_dsl_udf(self, small_database, small_regression_data):
        from repro import dana as d
        from repro.algorithms.base import AlgorithmSpec
        from repro.rdbms import Schema

        mo = d.model([4], name="mo")
        x = d.input([4], name="x")
        y = d.output(name="y")
        lr = d.meta(0.05, name="lr")
        algo = d.algo(mo, x, y, name="custom")
        grad = (d.sigma(mo * x, 1) - y) * x
        merged = algo.merge(grad, 8, "+")
        algo.setModel(mo - lr * (merged / 8.0))
        algo.setEpochs(30)
        spec = AlgorithmSpec(
            name="custom_linear",
            algo=algo,
            schema=Schema.training_schema(4),
            bind_tuple=lambda row: {"x": row[:4], "y": float(row[4])},
            initial_models={"mo": np.zeros(4)},
            hyperparameters=Hyperparameters(),
        )
        system = DAnA(small_database)
        system.register_udf("customR", spec)
        run = system.train("customR", "train")
        assert LinearRegression().loss(small_regression_data, run.models) < 0.1

    def test_without_striders_path(self, small_database, small_regression_data):
        system = DAnA(small_database, use_striders=False)
        system.register_algorithm_udf("linearR", "linear", n_features=4, epochs=20)
        run = system.train("linearR", "train")
        assert LinearRegression().loss(small_regression_data, run.models) < 0.2


class TestWorkloadRunner:
    def test_netflix_functional_comparison(self):
        runner = WorkloadRunner(get_workload("Netflix"), epochs=3)
        dana_run = runner.run_dana()
        madlib_run = runner.run_madlib()
        assert dana_run.loss == pytest.approx(madlib_run.loss, rel=1e-5)
        assert dana_run.detail["tuples_extracted"] == runner.workload.func_tuples

    def test_real_workload_estimates_favour_dana(self):
        runner = WorkloadRunner(get_workload("Remote Sensing LR"), epochs=3)
        comparison = runner.compare()
        assert comparison.speedup("DAnA+PostgreSQL") > 5.0
        assert set(comparison.runs) >= {"DAnA+PostgreSQL", "MADlib+PostgreSQL"}
        dana_loss = comparison.runs["DAnA+PostgreSQL"].loss
        madlib_loss = comparison.runs["MADlib+PostgreSQL"].loss
        assert dana_loss == pytest.approx(madlib_loss, rel=1e-5)

    def test_external_library_run(self):
        runner = WorkloadRunner(get_workload("WLAN"), epochs=3)
        external = runner.run_external("dimmwitted")
        assert external is not None
        assert external.detail["exported_bytes"] > 0

    def test_reference_run(self):
        runner = WorkloadRunner(get_workload("Patient"), epochs=5)
        reference = runner.reference()
        dana_run = runner.run_dana()
        assert dana_run.loss == pytest.approx(reference.loss, rel=1e-4)
