"""Tests for the ALU, AU/AC micro-architecture, tree bus and execution engine."""

import numpy as np
import pytest

from repro.algorithms import Hyperparameters, LinearRegression, LogisticRegression
from repro.compiler import Scheduler
from repro.dsl import Operator
from repro.exceptions import ExecutionEngineError
from repro.hw import ALU, AnalyticCluster, ExecutionEngine, TreeBus
from repro.hw.analytic_unit import AnalyticUnit
from repro.isa.engine_isa import ACInstruction, AUInstruction, AUOperand, DestKind, SourceKind
from repro.translator import Region, translate


class TestALU:
    def test_basic_operations(self):
        alu = ALU()
        assert alu.execute(Operator.ADD, 2.0, 3.0) == 5.0
        assert alu.execute(Operator.SUB, 2.0, 3.0) == -1.0
        assert alu.execute(Operator.MUL, 2.0, 3.0) == 6.0
        assert alu.execute(Operator.DIV, 6.0, 3.0) == 2.0
        assert alu.execute(Operator.GT, 2.0, 3.0) == 0.0
        assert alu.execute(Operator.LT, 2.0, 3.0) == 1.0

    def test_nonlinear_operations(self):
        alu = ALU()
        assert alu.execute(Operator.SIGMOID, 0.0) == pytest.approx(0.5)
        assert alu.execute(Operator.SQRT, 9.0) == pytest.approx(3.0)
        assert alu.execute(Operator.GAUSSIAN, 0.0) == pytest.approx(1.0)

    def test_unsupported_operation_rejected(self):
        alu = ALU({Operator.ADD})
        with pytest.raises(ExecutionEngineError):
            alu.execute(Operator.MUL, 1.0, 2.0)

    def test_error_cases(self):
        alu = ALU()
        with pytest.raises(ExecutionEngineError):
            alu.execute(Operator.DIV, 1.0, 0.0)
        with pytest.raises(ExecutionEngineError):
            alu.execute(Operator.SQRT, -1.0)

    def test_latency(self):
        alu = ALU()
        assert alu.latency(Operator.ADD) == 1
        assert alu.latency(Operator.SIGMOID) > 1


class TestAnalyticUnitAndCluster:
    def test_au_memory_and_register(self):
        au = AnalyticUnit(0)
        au.write_memory(3, 1.5)
        assert au.read_memory(3) == 1.5
        with pytest.raises(ExecutionEngineError):
            au.read_memory(99)

    def test_cluster_selective_simd(self):
        cluster = AnalyticCluster(0)
        for au in cluster.aus:
            au.write_memory(0, 2.0)
            au.write_memory(1, 3.0)
        instruction = ACInstruction(cluster_id=0, operation=Operator.MUL)
        for index in (0, 2, 5):
            instruction.add_slot(
                AUInstruction(
                    au_index=index,
                    src_a=AUOperand(SourceKind.DATA_MEMORY, address=0),
                    src_b=AUOperand(SourceKind.DATA_MEMORY, address=1),
                    dest_kind=DestKind.DATA_MEMORY,
                    dest_address=2,
                )
            )
        results = cluster.execute_instruction(instruction)
        assert results == {0: 6.0, 2: 6.0, 5: 6.0}
        assert cluster.au(0).read_memory(2) == 6.0
        assert cluster.stats.operations_executed == 3
        # disabled AUs did not execute
        assert cluster.au(1).stats.operations_executed == 0

    def test_neighbor_communication(self):
        cluster = AnalyticCluster(0)
        cluster.au(0).register = 7.0
        slot = AUInstruction(
            au_index=1,
            src_a=AUOperand(SourceKind.LEFT_NEIGHBOR),
            src_b=AUOperand(SourceKind.IMMEDIATE, value=1.0),
            dest_kind=DestKind.DATA_MEMORY,
            dest_address=0,
        )
        instruction = ACInstruction(cluster_id=0, operation=Operator.ADD, au_slots=[slot])
        results = cluster.execute_instruction(instruction)
        assert results[1] == 8.0

    def test_bus_broadcast(self):
        cluster = AnalyticCluster(0)
        producer = AUInstruction(
            au_index=0,
            src_a=AUOperand(SourceKind.IMMEDIATE, value=4.0),
            src_b=AUOperand(SourceKind.IMMEDIATE, value=5.0),
            dest_kind=DestKind.BUS,
        )
        cluster.execute_instruction(
            ACInstruction(cluster_id=0, operation=Operator.ADD, au_slots=[producer])
        )
        consumer = AUInstruction(
            au_index=3,
            src_a=AUOperand(SourceKind.BUS),
            src_b=AUOperand(SourceKind.IMMEDIATE, value=1.0),
            dest_kind=DestKind.DATA_MEMORY,
            dest_address=0,
        )
        results = cluster.execute_instruction(
            ACInstruction(cluster_id=0, operation=Operator.MUL, au_slots=[consumer])
        )
        assert results[3] == 9.0

    def test_wrong_cluster_instruction_rejected(self):
        cluster = AnalyticCluster(0)
        with pytest.raises(ExecutionEngineError):
            cluster.execute_instruction(ACInstruction(cluster_id=1, operation=Operator.ADD))


class TestTreeBus:
    def test_merge_add(self):
        bus = TreeBus(alu_count=4)
        merged = bus.merge([np.array([1.0, 2.0]), np.array([3.0, 4.0]), np.array([5.0, 6.0])], Operator.ADD)
        np.testing.assert_allclose(merged, [9.0, 12.0])
        assert bus.stats.merges_performed == 1
        assert bus.stats.levels_traversed == 2

    def test_merge_cycle_model(self):
        bus = TreeBus(alu_count=8)
        assert bus.merge_cycles(thread_count=1, element_count=100) == 0
        assert bus.merge_cycles(thread_count=16, element_count=64) == 4 * 8

    def test_merge_empty_rejected(self):
        with pytest.raises(ExecutionEngineError):
            TreeBus().merge([], Operator.ADD)

    def test_merge_wide_vectors(self):
        bus = TreeBus()
        values = [np.full(1000, float(i)) for i in range(4)]
        merged = bus.merge(values, Operator.ADD)
        np.testing.assert_allclose(merged, np.full(1000, 6.0))


class TestExecutionEngine:
    def _engine(self, n_features=4, merge=8, acs=4):
        hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=merge, epochs=5)
        spec = LinearRegression().build_spec(n_features, hyper)
        graph = translate(spec.algo)
        schedule = Scheduler(graph, acs_per_thread=acs).schedule()
        engine = ExecutionEngine(graph, schedule, threads=merge)
        return engine, spec

    def test_training_matches_reference(self, small_regression_data):
        engine, spec = self._engine()
        result = engine.train(
            small_regression_data,
            initial_models=spec.initial_models,
            bind_tuple=spec.bind_tuple,
            epochs=30,
        )
        reference = LinearRegression().reference_fit(
            small_regression_data, spec.hyperparameters, epochs=30
        )
        np.testing.assert_allclose(result.models["mo"], reference["mo"], rtol=1e-8)
        assert result.epochs_run == 30
        assert result.stats.tuples_processed == 30 * len(small_regression_data)

    def test_threads_fall_back_without_merge(self):
        hyper = Hyperparameters(merge_coefficient=1, epochs=1)
        spec = LinearRegression().build_spec(4, hyper)
        graph = translate(spec.algo)
        schedule = Scheduler(graph, acs_per_thread=1).schedule()
        engine = ExecutionEngine(graph, schedule, threads=16)
        assert engine.threads == 1

    def test_cycle_accounting_scales_with_batches(self, small_regression_data):
        engine, spec = self._engine(merge=8)
        engine.train(small_regression_data, spec.initial_models, spec.bind_tuple, epochs=1)
        batches = int(np.ceil(len(small_regression_data) / engine.threads))
        assert engine.stats.batches_processed == batches
        assert engine.stats.update_rule_cycles == batches * engine.schedule.update_rule_cycles

    def test_microcode_matches_evaluator(self, small_regression_data):
        engine, spec = self._engine(n_features=4, merge=4, acs=2)
        row = small_regression_data[0]
        bindings = dict(spec.bind_tuple(row))
        bindings["mo"] = np.array([0.1, -0.2, 0.3, 0.4])
        micro = engine.execute_microcode(bindings, regions=[Region.UPDATE_RULE])
        env = engine.evaluator.initial_env(bindings)
        env = engine.evaluator.evaluate(env, [Region.UPDATE_RULE])
        checked = 0
        for node_id, value in micro.items():
            if node_id in env:
                np.testing.assert_allclose(value, env[node_id], rtol=1e-6, atol=1e-9)
                checked += 1
        assert checked >= 2

    def test_microcode_post_merge_with_injected_values(self, small_regression_data):
        engine, spec = self._engine(n_features=4, merge=4, acs=2)
        graph = engine.graph
        merge_id = graph.merge_node_ids[0]
        merged_grad = np.array([1.0, 2.0, 3.0, 4.0])
        bindings = {"mo": np.zeros(4), "x": np.zeros(4), "y": 0.0}
        results = engine.execute_microcode(
            bindings,
            regions=[Region.POST_MERGE],
            merged_values={merge_id: merged_grad},
        )
        update_root = graph.node(graph.update_node_id).inputs[0]
        expected = -0.05 * merged_grad / 4.0
        np.testing.assert_allclose(results[update_root], expected, rtol=1e-6)

    def test_logistic_training_reduces_loss(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(300, 6))
        w = rng.normal(size=6)
        y = (X @ w > 0).astype(float)
        data = np.hstack([X, y[:, None]])
        hyper = Hyperparameters(learning_rate=0.3, merge_coefficient=8, epochs=20)
        algorithm = LogisticRegression()
        spec = algorithm.build_spec(6, hyper)
        graph = translate(spec.algo)
        schedule = Scheduler(graph, acs_per_thread=2).schedule()
        engine = ExecutionEngine(graph, schedule, threads=8)
        result = engine.train(data, spec.initial_models, spec.bind_tuple, epochs=20)
        initial_loss = algorithm.loss(data, spec.initial_models)
        final_loss = algorithm.loss(data, result.models)
        assert final_loss < initial_loss * 0.7
