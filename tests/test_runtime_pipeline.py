"""Tests for the pipelined epoch runtime (repro.runtime).

Invariants enforced here:

* **streaming changes nothing but wall-clock** — with
  ``sync="bulk_synchronous"`` the pipelined path (streamed extraction,
  shared ``EpochDriver`` loop) is bit-identical — models *and*
  schedule-derived counters — to the barriered/materialized path for all
  four algorithms at segments ∈ {1, 2, 4}, and on the single-engine path;
* **``async_merge`` is BSP in disguise** — the overlapped merge produces
  bit-identical models (only the schedule pipelines);
* **``stale_synchronous`` trades merges for staleness, boundedly** — the
  merge cadence is ``ceil(epochs / staleness)`` and the final loss stays
  within tolerance of the bulk-synchronous fit;
* **configuration fails fast** — invalid ``DAnA.train`` arguments raise
  ``ConfigurationError`` naming the valid choices;
* **the lock-step epoch plan is cached** — a ``shuffle=False`` epoch block
  is stacked once and reused, never re-trimmed per epoch.
"""

import math

import numpy as np
import pytest

from repro.algorithms import Hyperparameters, get_algorithm
from repro.cluster import ShardedDAnA
from repro.cluster.sharded import _LockstepStep
from repro.core import DAnA
from repro.data.synthetic import generate_for_algorithm
from repro.exceptions import ConfigurationError, HardwareError
from repro.perf.segment_model import ShardedRunCost
from repro.rdbms import Database
from repro.runtime import (
    BatchSource,
    BulkSynchronous,
    StaleSynchronous,
    SYNC_POLICIES,
    make_sync_policy,
)

LRMF_TOPOLOGY = (24, 18, 4)
EPOCHS = 4


def _system(key, n_tuples=640, merge=8, epochs=EPOCHS, seed=11):
    algorithm = get_algorithm(key)
    n_features = 4 if key == "lrmf" else 6
    topology = LRMF_TOPOLOGY if key == "lrmf" else ()
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=merge, epochs=epochs)
    spec = algorithm.build_spec(n_features, hyper, topology)
    data = generate_for_algorithm(key, n_tuples, n_features, LRMF_TOPOLOGY, seed=seed)
    database = Database(page_size=8 * 1024)
    database.load_table("train", spec.schema, data)
    database.warm_cache("train")
    system = DAnA(database)
    system.register_udf(key, spec, epochs=epochs)
    return system, spec, algorithm, data


# ---------------------------------------------------------------------- #
# BatchSource: the bounded double buffer
# ---------------------------------------------------------------------- #
class TestBatchSource:
    def _chunks(self, sizes, n_cols=3, start=0):
        offset = start
        for size in sizes:
            chunk = np.arange(offset, offset + size * n_cols, dtype=np.float64)
            yield chunk.reshape(size, n_cols)
            offset += size * n_cols

    def test_batches_match_materialized_slicing(self):
        chunks = list(self._chunks([5, 1, 7, 0, 4]))
        rows = np.vstack(chunks)
        source = BatchSource(iter(chunks), n_columns=3)
        batches = list(source.batches(4))
        expected = [rows[s : s + 4] for s in range(0, len(rows), 4)]
        assert len(batches) == len(expected)
        for got, want in zip(batches, expected):
            np.testing.assert_array_equal(got, want)

    def test_rows_equals_vstack_and_is_cached(self):
        chunks = list(self._chunks([3, 2]))
        source = BatchSource(iter(chunks), n_columns=3)
        rows = source.rows()
        np.testing.assert_array_equal(rows, np.vstack(chunks))
        assert source.rows() is rows

    def test_batches_are_restartable_after_partial_consumption(self):
        chunks = list(self._chunks([4, 4, 4]))
        source = BatchSource(iter(chunks), n_columns=3)
        first = next(iter(source.batches(5)))
        again = list(source.batches(5))
        np.testing.assert_array_equal(again[0], first)
        np.testing.assert_array_equal(np.vstack(again), np.vstack(chunks))

    def test_has_rows_peeks_past_empty_chunks(self):
        source = BatchSource(self._chunks([0, 0, 2]), n_columns=3)
        assert source.has_rows()
        empty = BatchSource(self._chunks([0, 0]), n_columns=3)
        assert not empty.has_rows()

    def test_empty_stream(self):
        source = BatchSource(iter(()), n_columns=4)
        assert list(source.batches(8)) == []
        assert source.rows().shape == (0, 4)

    def test_from_rows_is_the_degenerate_source(self):
        rows = np.arange(12.0).reshape(4, 3)
        source = BatchSource.from_rows(rows)
        assert source.has_rows()
        np.testing.assert_array_equal(source.rows(), rows)
        np.testing.assert_array_equal(next(iter(source.batches(2))), rows[:2])

    def test_producer_errors_propagate_to_consumer(self):
        def chunks():
            yield np.ones((2, 3))
            raise HardwareError("page walk failed")

        source = BatchSource(chunks(), n_columns=3)
        with pytest.raises(HardwareError, match="page walk failed"):
            source.rows()


# ---------------------------------------------------------------------- #
# SyncPolicy schedule objects
# ---------------------------------------------------------------------- #
class TestSyncPolicies:
    def test_factory_validates_names_and_staleness(self):
        with pytest.raises(ConfigurationError, match="bulk_synchronous"):
            make_sync_policy("gossip")
        with pytest.raises(ConfigurationError):
            make_sync_policy("stale_synchronous", staleness=0)
        assert make_sync_policy("bulk_synchronous").name in SYNC_POLICIES

    def test_bulk_merges_every_epoch(self):
        policy = BulkSynchronous()
        assert [policy.next_boundary(e, 10) for e in range(4)] == [0, 1, 2, 3]
        assert not policy.overlap_merge

    def test_stale_boundaries_every_k_epochs_and_final(self):
        policy = StaleSynchronous(3)
        # boundaries at epochs 2, 5, ... and always the final epoch
        assert policy.next_boundary(0, 10) == 2
        assert policy.next_boundary(3, 10) == 5
        assert policy.next_boundary(9, 10) == 9
        assert policy.next_boundary(7, 8) == 7
        assert StaleSynchronous(1).next_boundary(4, 10) == 4

    def test_async_merge_overlaps(self):
        policy = make_sync_policy("async_merge")
        assert policy.overlap_merge
        assert policy.next_boundary(2, 10) == 2


# ---------------------------------------------------------------------- #
# bulk_synchronous pipelined == barriered, bit for bit
# ---------------------------------------------------------------------- #
class TestStreamingParity:
    @pytest.mark.parametrize("key", ["linear", "logistic", "svm", "lrmf"])
    @pytest.mark.parametrize("segments", [1, 2, 4])
    def test_sharded_stream_parity(self, key, segments):
        system, spec, _algo, _data = _system(key)
        streamed = system.train(key, "train", epochs=EPOCHS, segments=segments)
        barriered = system.train(
            key, "train", epochs=EPOCHS, segments=segments, stream=False
        )
        assert streamed.cluster.stream and not barriered.cluster.stream
        assert streamed.cluster.sync == "bulk_synchronous"
        for name in streamed.models:
            np.testing.assert_array_equal(streamed.models[name], barriered.models[name])
        assert streamed.engine_stats == barriered.engine_stats
        assert streamed.access_stats == barriered.access_stats
        assert streamed.tuples_extracted == barriered.tuples_extracted
        assert streamed.cluster.merges_performed == barriered.cluster.merges_performed
        assert (
            streamed.cluster.cross_merge_cycles == barriered.cluster.cross_merge_cycles
        )

    @pytest.mark.parametrize("key", ["linear", "lrmf"])
    def test_single_engine_stream_parity(self, key):
        system, spec, _algo, _data = _system(key)
        streamed = system.train(key, "train", epochs=EPOCHS)
        barriered = system.train(key, "train", epochs=EPOCHS, stream=False)
        for name in streamed.models:
            np.testing.assert_array_equal(streamed.models[name], barriered.models[name])
        assert streamed.engine_stats == barriered.engine_stats
        assert streamed.access_stats == barriered.access_stats

    def test_shuffled_stream_parity(self):
        """Shuffled epochs materialise first but must stay bit-identical."""
        system, spec, _algo, _data = _system("linear")
        a = system.train("linear", "train", epochs=4, segments=4, shuffle=True, seed=7)
        b = system.train(
            "linear", "train", epochs=4, segments=4, shuffle=True, seed=7, stream=False
        )
        for name in a.models:
            np.testing.assert_array_equal(a.models[name], b.models[name])
        assert a.engine_stats == b.engine_stats

    @pytest.mark.parametrize("execution", ["auto", "threads"])
    def test_async_merge_is_bitwise_bsp(self, execution):
        system, spec, _algo, _data = _system("linear")
        bsp = system.train(
            "linear", "train", epochs=EPOCHS, segments=4, execution=execution
        )
        overlapped = system.train(
            "linear",
            "train",
            epochs=EPOCHS,
            segments=4,
            execution=execution,
            sync="async_merge",
        )
        for name in bsp.models:
            np.testing.assert_array_equal(overlapped.models[name], bsp.models[name])
        assert overlapped.engine_stats == bsp.engine_stats
        assert overlapped.cluster.merges_performed == bsp.cluster.merges_performed

    def test_async_merge_shuffled_is_bitwise_bsp(self):
        """Prefetch must consume the per-segment rng streams in epoch order."""
        system, spec, _algo, _data = _system("linear")
        kwargs = dict(epochs=EPOCHS, segments=4, shuffle=True, seed=3)
        bsp = system.train("linear", "train", **kwargs)
        overlapped = system.train("linear", "train", sync="async_merge", **kwargs)
        for name in bsp.models:
            np.testing.assert_array_equal(overlapped.models[name], bsp.models[name])
        assert overlapped.engine_stats == bsp.engine_stats


# ---------------------------------------------------------------------- #
# stale_synchronous: bounded staleness semantics + quality
# ---------------------------------------------------------------------- #
class TestStaleSynchronous:
    @pytest.mark.parametrize("staleness", [1, 2, 3, 4])
    def test_merge_cadence(self, staleness):
        system, spec, _algo, _data = _system("linear", epochs=6)
        run = system.train(
            "linear",
            "train",
            epochs=6,
            segments=4,
            sync="stale_synchronous",
            staleness=staleness,
        )
        assert run.epochs_run == 6
        assert run.cluster.merges_performed == math.ceil(6 / staleness)
        assert run.cluster.sync == "stale_synchronous"
        assert run.cluster.staleness == staleness
        # every tuple still trained exactly once per epoch
        assert run.engine_stats.tuples_processed == 640 * 6

    def test_staleness_one_is_bitwise_bsp(self):
        system, spec, _algo, _data = _system("linear")
        bsp = system.train("linear", "train", epochs=EPOCHS, segments=4)
        stale = system.train(
            "linear",
            "train",
            epochs=EPOCHS,
            segments=4,
            sync="stale_synchronous",
            staleness=1,
        )
        for name in bsp.models:
            np.testing.assert_array_equal(stale.models[name], bsp.models[name])
        assert stale.engine_stats == bsp.engine_stats

    @pytest.mark.parametrize("key", ["linear", "logistic", "svm", "lrmf"])
    @pytest.mark.parametrize("execution", ["auto", "threads"])
    def test_convergence_quality_within_tolerance_of_bsp(self, key, execution):
        system, spec, algorithm, data = _system(key, epochs=6)
        bsp = system.train(key, "train", epochs=6, segments=4, execution=execution)
        stale = system.train(
            key,
            "train",
            epochs=6,
            segments=4,
            execution=execution,
            sync="stale_synchronous",
            staleness=3,
        )
        initial_loss = algorithm.loss(data, spec.initial_models)
        bsp_loss = algorithm.loss(data, bsp.models)
        stale_loss = algorithm.loss(data, stale.models)
        # Learning happened, and bounded staleness stays near the BSP fit.
        assert stale_loss < 0.6 * initial_loss
        assert stale_loss <= 2.0 * bsp_loss + 1e-9

    @pytest.mark.parametrize("staleness", [2, 4])
    def test_lockstep_matches_threads_under_staleness(self, staleness):
        """The strategies stay parity oracles with merge-free windows."""
        system, spec, _algo, _data = _system("linear", epochs=6)
        lock = system.train(
            "linear", "train", epochs=6, segments=4,
            sync="stale_synchronous", staleness=staleness,
        )
        thr = system.train(
            "linear", "train", epochs=6, segments=4, execution="threads",
            sync="stale_synchronous", staleness=staleness,
        )
        assert lock.cluster.mode == "lockstep" and thr.cluster.mode == "threads"
        for name in lock.models:
            np.testing.assert_allclose(
                lock.models[name], thr.models[name], rtol=1e-9, atol=1e-12
            )
        assert lock.engine_stats == thr.engine_stats
        assert lock.epochs_run == thr.epochs_run
        assert lock.cluster.merges_performed == thr.cluster.merges_performed

    def test_convergence_stops_only_at_window_boundaries(self):
        """Threads + staleness: every window trains count epochs per segment,
        so a converging run stops on a merge boundary with consistent
        tuple/epoch accounting (no mixed-staleness merges)."""
        algorithm = get_algorithm("linear")
        hyper = Hyperparameters(
            learning_rate=0.05,
            merge_coefficient=8,
            epochs=40,
            convergence_tolerance=0.5,
        )
        spec = algorithm.build_spec(6, hyper)
        data = generate_for_algorithm("linear", 650, 6, seed=11)
        database = Database(page_size=8 * 1024)
        database.load_table("train", spec.schema, data)
        database.warm_cache("train")
        system = DAnA(database)
        system.register_udf("linear", spec, epochs=40)
        run = system.train(
            "linear",
            "train",
            epochs=40,
            segments=2,
            execution="threads",
            sync="stale_synchronous",
            staleness=4,
        )
        assert run.converged
        assert run.epochs_run < 40
        assert run.epochs_run % 4 == 0  # stopped on a merge boundary
        assert run.engine_stats.tuples_processed == len(data) * run.epochs_run

    def test_stale_runs_are_reproducible(self):
        system, spec, _algo, _data = _system("linear")
        kwargs = dict(
            epochs=6, segments=4, shuffle=True, seed=42,
            sync="stale_synchronous", staleness=2,
        )
        a = system.train("linear", "train", **kwargs)
        b = system.train("linear", "train", **kwargs)
        for name in a.models:
            np.testing.assert_array_equal(a.models[name], b.models[name])
        assert a.engine_stats == b.engine_stats


# ---------------------------------------------------------------------- #
# DAnA.train configuration validation (fail fast, name the choices)
# ---------------------------------------------------------------------- #
class TestConfigValidation:
    @pytest.fixture()
    def system(self):
        system, _spec, _algo, _data = _system("linear")
        return system

    def test_segments_below_one(self, system):
        with pytest.raises(ConfigurationError, match="segments"):
            system.train("linear", "train", epochs=2, segments=0)
        with pytest.raises(ConfigurationError, match="segments"):
            system.train("linear", "train", epochs=2, segments=-3)

    def test_unknown_partition_strategy(self, system):
        with pytest.raises(ConfigurationError, match="round_robin"):
            system.train(
                "linear", "train", epochs=2, segments=2, partition_strategy="range"
            )

    def test_unknown_execution_strategy(self, system):
        with pytest.raises(ConfigurationError, match="lockstep"):
            system.train("linear", "train", epochs=2, segments=2, execution="warp")

    def test_unknown_aggregation_strategy(self, system):
        with pytest.raises(ConfigurationError, match="average"):
            system.train("linear", "train", epochs=2, segments=2, aggregation="median")

    def test_unknown_sync_policy(self, system):
        with pytest.raises(ConfigurationError, match="stale_synchronous"):
            system.train("linear", "train", epochs=2, segments=2, sync="gossip")

    def test_invalid_staleness(self, system):
        with pytest.raises(ConfigurationError, match="staleness"):
            system.train("linear", "train", epochs=2, segments=2, staleness=0)

    def test_validation_applies_to_single_path_too(self, system):
        with pytest.raises(ConfigurationError, match="sync"):
            system.train("linear", "train", epochs=2, sync="nope")

    def test_invalid_epochs(self, system):
        with pytest.raises(ConfigurationError, match="epochs"):
            system.train("linear", "train", epochs=0)
        with pytest.raises(ConfigurationError, match="epochs"):
            system.train("linear", "train", epochs=-2, segments=2)


# ---------------------------------------------------------------------- #
# lock-step epoch plan caching (shuffle=False blocks stacked once)
# ---------------------------------------------------------------------- #
class TestLockstepPlanCache:
    def _sharded(self):
        system, spec, _algo, _data = _system("linear")
        binary = system.compile_udf("linear", "train")
        sharded = ShardedDAnA(
            system.database, binary, spec, segments=4, stream=False
        )
        # One run materialises workers + aggregator for direct step access.
        sharded.train("train", epochs=1)
        return sharded

    def test_static_epoch_plan_is_reused(self):
        sharded = self._sharded()
        step = _LockstepStep(sharded, shuffle=False, convergence_check=True)
        state = step.begin(
            {k: np.array(v) for k, v in sharded.spec.initial_models.items()}
        )
        assert step._static_plan is None
        state, _ = step.run_epoch(state, 0)
        plan = step._static_plan
        assert plan is not None
        state, _ = step.run_epoch(state, 1)
        assert step._static_plan is plan  # stacked once, reused verbatim

    def test_shuffled_epochs_never_cache_a_plan(self):
        sharded = self._sharded()
        step = _LockstepStep(sharded, shuffle=True, convergence_check=True)
        state = step.begin(
            {k: np.array(v) for k, v in sharded.spec.initial_models.items()}
        )
        state, _ = step.run_epoch(state, 0)
        assert step._static_plan is None


# ---------------------------------------------------------------------- #
# pipelined critical-path book-keeping (perf.segment_model)
# ---------------------------------------------------------------------- #
class TestPipelinedCostModel:
    def test_pipelined_books_max_not_sum(self):
        system, spec, _algo, _data = _system("linear")
        run = system.train("linear", "train", epochs=EPOCHS, segments=4)
        cost = ShardedRunCost.from_run(run)
        slowest_overlap = max(
            max(a, e)
            for a, e in zip(cost.segment_access_cycles, cost.segment_engine_cycles)
        )
        assert (
            cost.pipelined_critical_path_cycles
            == slowest_overlap + cost.cross_merge_cycles
        )
        assert cost.pipelined_critical_path_cycles < cost.critical_path_cycles
        assert cost.pipeline_speedup > 1.0

    def test_async_merge_hides_all_but_the_drain_merge(self):
        system, spec, _algo, _data = _system("linear")
        run = system.train(
            "linear", "train", epochs=EPOCHS, segments=4, sync="async_merge"
        )
        cost = ShardedRunCost.from_run(run)
        assert run.cluster.merges_performed == EPOCHS
        exposed = cost.pipelined_critical_path_cycles - max(
            max(a, e)
            for a, e in zip(cost.segment_access_cycles, cost.segment_engine_cycles)
        )
        assert exposed == math.ceil(
            cost.cross_merge_cycles / cost.merges_performed
        )
        assert cost.pipelined_seconds() < cost.seconds()
