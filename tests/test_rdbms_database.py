"""Unit tests for heap files, the catalog, the database facade and SQL."""

import numpy as np
import pytest

from repro.exceptions import CatalogError, QueryError
from repro.rdbms import (
    AcceleratorEntry,
    Database,
    PageLayout,
    Schema,
    parse,
)
from repro.rdbms.catalog import Catalog, TableEntry
from repro.rdbms.query import CountScan, SeqScan, UDFCall


@pytest.fixture
def db(small_regression_data, linear_spec):
    database = Database(page_size=8 * 1024)
    database.load_table("train", linear_spec.schema, small_regression_data)
    return database


class TestHeapFile:
    def test_bulk_load_counts(self, db):
        table = db.table("train")
        assert table.tuple_count == 200
        assert table.page_count >= 1
        assert db.catalog.table("train").tuple_count == 200

    def test_scan_round_trip(self, db, small_regression_data):
        table = db.table("train")
        data = table.read_all(db.buffer_pool)
        assert data.shape == small_regression_data.shape
        # float4 on-page storage loses precision; compare accordingly
        np.testing.assert_allclose(data, small_regression_data, rtol=1e-6, atol=1e-5)

    def test_tuples_per_page_consistency(self, db):
        table = db.table("train")
        per_page = table.tuples_per_page()
        assert (table.page_count - 1) * per_page < table.tuple_count <= table.page_count * per_page

    def test_scan_goes_through_buffer_pool(self, db):
        db.reset_io_stats()
        list(db.table("train").scan_tuples(db.buffer_pool))
        assert db.buffer_pool.stats.misses == db.table("train").page_count
        list(db.table("train").scan_tuples(db.buffer_pool))
        assert db.buffer_pool.stats.hits >= db.table("train").page_count


class TestCatalog:
    def test_duplicate_table(self):
        catalog = Catalog()
        entry = TableEntry("t", Schema.training_schema(2), "t", PageLayout())
        catalog.register_table(entry)
        with pytest.raises(CatalogError):
            catalog.register_table(entry)

    def test_missing_table(self):
        with pytest.raises(CatalogError):
            Catalog().table("missing")

    def test_accelerator_metadata(self):
        catalog = Catalog()
        entry = AcceleratorEntry(
            udf_name="linearR",
            algorithm="linear",
            design={"threads": 4},
            strider_program=[1, 2, 3],
            execution_schedule=[],
        )
        catalog.register_accelerator(entry)
        assert catalog.has_accelerator("linearR")
        assert catalog.accelerator("linearR").design["threads"] == 4
        with pytest.raises(CatalogError):
            catalog.accelerator("missing")

    def test_udf_registry(self):
        catalog = Catalog()
        catalog.register_udf("f", lambda db, t: None)
        assert catalog.has_udf("f")
        assert catalog.udf_names() == ["f"]
        with pytest.raises(CatalogError):
            catalog.udf("g")


class TestSQLParsing:
    def test_parse_udf_call(self):
        plan = parse("SELECT * FROM dana.linearR('training_data_table');")
        assert isinstance(plan, UDFCall)
        assert plan.udf_name == "linearR"
        assert plan.table_name == "training_data_table"

    def test_parse_udf_call_case_insensitive(self):
        plan = parse("select * from DANA.myUdf('t')")
        assert isinstance(plan, UDFCall)
        assert plan.udf_name == "myUdf"

    def test_parse_seq_scan(self):
        plan = parse("SELECT * FROM train")
        assert isinstance(plan, SeqScan)
        assert plan.columns is None

    def test_parse_projection(self):
        plan = parse("SELECT x0, y FROM train;")
        assert isinstance(plan, SeqScan)
        assert plan.columns == ("x0", "y")

    def test_parse_count(self):
        plan = parse("SELECT count(*) FROM train")
        assert isinstance(plan, CountScan)

    def test_parse_garbage(self):
        with pytest.raises(QueryError):
            parse("DELETE FROM train")


class TestQueryExecution:
    def test_seq_scan(self, db):
        result = db.execute("SELECT * FROM train")
        assert len(result) == 200
        assert result.columns == db.table("train").schema.names

    def test_projection(self, db):
        result = db.execute("SELECT y, x0 FROM train")
        assert result.columns == ("y", "x0")
        assert len(result.rows[0]) == 2

    def test_count(self, db):
        result = db.execute("SELECT count(*) FROM train")
        assert result.rows == [(200,)]

    def test_missing_table(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT * FROM nope")

    def test_udf_black_box_invocation(self, db):
        calls = []

        def handler(database, table_name):
            calls.append(table_name)
            from repro.rdbms.query import QueryResult

            return QueryResult(rows=[("ok",)], columns=("status",))

        db.register_udf("myudf", handler)
        result = db.execute("SELECT * FROM dana.myudf('train')")
        assert calls == ["train"]
        assert result.rows == [("ok",)]

    def test_udf_unknown(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT * FROM dana.unknown('train')")

    def test_udf_missing_table(self, db):
        db.register_udf("f", lambda database, t: None)
        with pytest.raises(QueryError):
            db.execute("SELECT * FROM dana.f('missing')")

    def test_warm_and_cold_cache_controls(self, db):
        resident = db.warm_cache("train")
        assert resident == db.table("train").page_count
        db.cold_cache()
        db.reset_io_stats()
        db.execute("SELECT count(*) FROM train")
        assert db.buffer_pool.stats.misses > 0

    def test_duplicate_table_rejected(self, db, linear_spec):
        with pytest.raises(CatalogError):
            db.create_table("train", linear_spec.schema)

    def test_drop_table(self, db):
        db.drop_table("train")
        assert "train" not in db.table_names()
