"""Crash-recovery torture tests for the write-ahead log.

The writer is killed (via the ``rdbms.wal.append`` fault site, which
fires once *before* a record becomes durable and once *after* durability
but before the heap apply) at **every** WAL-record boundary of a fixed
insert workload.  After each simulated crash the surviving log is
replayed into a fresh database and the recovered heap must be
**bit-identical** — page images, tuple counts, WAL position — to a
never-crashed oracle that executed exactly the durable prefix.  The
recovered database then finishes the workload and must land bit-identical
to the full-workload oracle, proving recovery is not a dead end.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.exceptions import RDBMSError, TransientError
from repro.rdbms import Database, Schema, WAL_APPEND_FAULT_SITE
from repro.reliability import FaultPlan, FaultSpec, inject_faults

N_FEATURES = 3
SCHEMA = Schema.training_schema(N_FEATURES)
TABLE = "live"
PAGE_SIZE = 1024
BASE_ROWS = 60
#: per-record insert sizes; chosen to exercise tail-page fills, multi-page
#: spills and single-row records.
BATCH_SIZES = (5, 1, 40, 13, 2, 60, 7)


def _workload() -> list[np.ndarray]:
    """The deterministic insert batches every test replays."""
    rng = np.random.default_rng(7)
    return [
        rng.normal(size=(size, N_FEATURES + 1)).astype(np.float64)
        for size in BATCH_SIZES
    ]


def _fresh_db() -> Database:
    """A new database holding only the bulk-loaded (LSN 0) base table."""
    rng = np.random.default_rng(3)
    db = Database(page_size=PAGE_SIZE)
    db.load_table(TABLE, SCHEMA, rng.normal(size=(BASE_ROWS, N_FEATURES + 1)))
    return db


def _digest(db: Database) -> str:
    """SHA-256 over every live page image + tuple count + WAL position."""
    heapfile = db.table(TABLE)
    h = hashlib.sha256()
    for page_no, image in heapfile.scan_pages(db.buffer_pool):
        h.update(page_no.to_bytes(8, "little"))
        h.update(bytes(image))
    h.update(heapfile.tuple_count.to_bytes(8, "little"))
    h.update(db.catalog.table(TABLE).tuple_count.to_bytes(8, "little"))
    h.update(db.wal.current_lsn.to_bytes(8, "little"))
    return h.hexdigest()


@pytest.fixture(scope="module")
def oracle_digests() -> list[str]:
    """Digest of the never-crashed database after each durable prefix.

    ``oracle_digests[m]`` is the state after the first ``m`` workload
    records — the exact state recovery must reproduce when ``m`` records
    survived the crash.
    """
    db = _fresh_db()
    digests = [_digest(db)]
    for batch in _workload():
        db.insert_rows(TABLE, batch)
        digests.append(_digest(db))
    return digests


@pytest.mark.chaos
@pytest.mark.parametrize("crash_call", range(1, 2 * len(BATCH_SIZES) + 1))
def test_crash_at_every_wal_boundary(crash_call, oracle_digests):
    """Kill at boundary ``crash_call``; replay must be bit-identical.

    Odd calls crash *before* the record is durable (the record is lost);
    even calls crash *after* durability but before the heap apply (replay
    recovers it).  Either way the durable prefix is ``crash_call // 2``
    records, and recovery must reproduce the oracle at that prefix.
    """
    batches = _workload()
    db = _fresh_db()
    plan = FaultPlan([FaultSpec(site=WAL_APPEND_FAULT_SITE, call=crash_call)])
    crashed_at = None
    with inject_faults(plan) as injector:
        for i, batch in enumerate(batches):
            try:
                db.insert_rows(TABLE, batch)
            except TransientError:
                crashed_at = i
                break
    assert crashed_at is not None, "every boundary lies inside the workload"
    assert [f.site for f in injector.fired] == [WAL_APPEND_FAULT_SITE]

    durable = crash_call // 2
    assert db.wal.current_lsn == durable

    # Recovery: fresh database + the same bulk-load base (the implicit
    # LSN-0 checkpoint) + replay of the surviving log.
    recovered = _fresh_db()
    replayed = db.wal.replay(recovered)
    assert replayed == durable
    assert _digest(recovered) == oracle_digests[durable]

    # The recovered database is live, not a read-only artifact: re-submit
    # the lost tail of the workload and land on the full-workload oracle.
    for batch in batches[durable:]:
        recovered.insert_rows(TABLE, batch)
    assert _digest(recovered) == oracle_digests[-1]


@pytest.mark.chaos
def test_post_durability_crash_loses_no_rows(oracle_digests):
    """A crash after durability keeps the record: replay applies it."""
    batches = _workload()
    db = _fresh_db()
    # Call 2 = after record 1 became durable, before its heap apply.
    with inject_faults(FaultPlan([FaultSpec(site=WAL_APPEND_FAULT_SITE, call=2)])):
        with pytest.raises(TransientError):
            db.insert_rows(TABLE, batches[0])
    assert db.wal.current_lsn == 1  # durable
    recovered = _fresh_db()
    db.wal.replay(recovered)
    assert _digest(recovered) == oracle_digests[1]
    assert recovered.table(TABLE).tuple_count == BASE_ROWS + BATCH_SIZES[0]


def test_replay_routes_through_the_live_apply_path(oracle_digests):
    """Replaying a healthy database's full log is bit-identical to it."""
    db = _fresh_db()
    for batch in _workload():
        db.insert_rows(TABLE, batch)
    recovered = _fresh_db()
    assert db.wal.replay(recovered) == len(BATCH_SIZES)
    assert _digest(recovered) == _digest(db) == oracle_digests[-1]
    rows_live = db.table(TABLE).read_all(db.buffer_pool)
    rows_recovered = recovered.table(TABLE).read_all(recovered.buffer_pool)
    np.testing.assert_array_equal(rows_live, rows_recovered)


def test_partial_replay_reproduces_each_prefix(oracle_digests):
    """``replay(up_to_lsn=m)`` reproduces the oracle at prefix ``m``."""
    db = _fresh_db()
    for batch in _workload():
        db.insert_rows(TABLE, batch)
    for m in range(len(BATCH_SIZES) + 1):
        recovered = _fresh_db()
        assert db.wal.replay(recovered, up_to_lsn=m) == m
        assert _digest(recovered) == oracle_digests[m]


def test_wal_lsns_are_contiguous_from_one():
    db = _fresh_db()
    records = [db.insert_rows(TABLE, batch) for batch in _workload()]
    assert [r.lsn for r in records] == list(range(1, len(BATCH_SIZES) + 1))
    assert db.wal.current_lsn == len(BATCH_SIZES)
    assert [r.row_count for r in db.wal.records()] == list(BATCH_SIZES)


def test_bulk_load_is_forbidden_after_wal_mutation():
    """The implicit checkpoint contract: bulk loads precede all WAL writes."""
    db = _fresh_db()
    db.insert_rows(TABLE, [[1.0] * (N_FEATURES + 1)])
    with pytest.raises(RDBMSError):
        db.table(TABLE).bulk_load([[2.0] * (N_FEATURES + 1)])
