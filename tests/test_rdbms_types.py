"""Unit tests for column types and schemas."""

import numpy as np
import pytest

from repro.exceptions import RDBMSError
from repro.rdbms.types import Column, ColumnType, Schema


class TestColumnType:
    def test_widths(self):
        assert ColumnType.FLOAT4.width == 4
        assert ColumnType.FLOAT8.width == 8
        assert ColumnType.INT2.width == 2
        assert ColumnType.INT4.width == 4
        assert ColumnType.INT8.width == 8

    def test_float_round_trip(self):
        raw = ColumnType.FLOAT8.encode(3.14159)
        assert ColumnType.FLOAT8.decode(raw) == pytest.approx(3.14159)

    def test_float4_round_trip_loses_precision_gracefully(self):
        raw = ColumnType.FLOAT4.encode(1.0 / 3.0)
        assert ColumnType.FLOAT4.decode(raw) == pytest.approx(1.0 / 3.0, rel=1e-6)

    def test_int_round_trip(self):
        raw = ColumnType.INT4.encode(-12345)
        assert ColumnType.INT4.decode(raw) == -12345

    def test_decode_wrong_length_raises(self):
        with pytest.raises(RDBMSError):
            ColumnType.INT4.decode(b"\x00\x01")

    def test_is_integer(self):
        assert ColumnType.INT8.is_integer
        assert not ColumnType.FLOAT4.is_integer


class TestSchema:
    def test_training_schema_shape(self):
        schema = Schema.training_schema(5)
        assert len(schema) == 6
        assert schema.names == ("x0", "x1", "x2", "x3", "x4", "y")
        assert schema.row_width == 6 * 4

    def test_lrmf_schema(self):
        schema = Schema.lrmf_schema()
        assert schema.names == ("row", "col", "value")
        assert schema.row_width == 12

    def test_duplicate_names_rejected(self):
        with pytest.raises(RDBMSError):
            Schema((Column("a", ColumnType.INT4), Column("a", ColumnType.INT4)))

    def test_row_round_trip(self):
        schema = Schema.training_schema(3, ColumnType.FLOAT8)
        row = (1.5, -2.25, 0.125, 7.0)
        assert schema.decode_row(schema.encode_row(row)) == row

    def test_encode_row_wrong_arity(self):
        schema = Schema.training_schema(3)
        with pytest.raises(RDBMSError):
            schema.encode_row((1.0, 2.0))

    def test_column_offset(self):
        schema = Schema.build([("a", ColumnType.INT2), ("b", ColumnType.FLOAT8), ("c", ColumnType.INT4)])
        assert schema.column_offset(0) == 0
        assert schema.column_offset(1) == 2
        assert schema.column_offset(2) == 10
        with pytest.raises(RDBMSError):
            schema.column_offset(3)

    def test_index_of(self):
        schema = Schema.training_schema(2)
        assert schema.index_of("y") == 2
        with pytest.raises(RDBMSError):
            schema.index_of("nope")

    def test_decode_row_rejects_bad_payload(self):
        schema = Schema.training_schema(2)
        with pytest.raises(RDBMSError):
            schema.decode_row(b"\x00" * (schema.row_width + 1))

    def test_mixed_type_round_trip(self):
        schema = Schema.lrmf_schema()
        values = (7, 13, 4.5)
        decoded = schema.decode_row(schema.encode_row(values))
        assert decoded[0] == 7 and decoded[1] == 13
        assert decoded[2] == pytest.approx(4.5)
