"""Unit tests for the Strider ISA and the execution-engine ISA."""

import pytest

from repro.dsl import Operator
from repro.exceptions import ISAError
from repro.isa import (
    AUS_PER_CLUSTER,
    ACInstruction,
    AUInstruction,
    AUOperand,
    DestKind,
    EngineProgram,
    EngineStep,
    INSTRUCTION_BITS,
    Operand,
    OperandKind,
    SourceKind,
    StriderInstruction,
    StriderOpcode,
    StriderProgram,
    cr,
    imm,
    tr,
)


class TestStriderOperands:
    def test_immediate_encoding(self):
        op = imm(17)
        assert Operand.decode(op.encode()) == op

    def test_register_encodings(self):
        assert Operand.decode(cr(3).encode()) == cr(3)
        assert Operand.decode(tr(15).encode()) == tr(15)

    def test_immediate_too_large(self):
        with pytest.raises(ISAError):
            imm(32)

    def test_register_out_of_range(self):
        with pytest.raises(ISAError):
            cr(16)

    def test_parse_text_forms(self):
        assert Operand.parse("%cr4") == cr(4)
        assert Operand.parse("%t9") == tr(9)
        assert Operand.parse("12") == imm(12)
        with pytest.raises(ISAError):
            Operand.parse("%xyz")


class TestStriderInstruction:
    def test_encode_fits_22_bits(self):
        inst = StriderInstruction(StriderOpcode.READB, imm(0), imm(8), cr(0))
        word = inst.encode()
        assert 0 <= word < (1 << INSTRUCTION_BITS)

    def test_round_trip_all_opcodes(self):
        for opcode in StriderOpcode:
            inst = StriderInstruction(opcode, imm(1), cr(2), tr(3))
            assert StriderInstruction.decode(inst.encode()) == inst

    def test_decode_bad_word(self):
        with pytest.raises(ISAError):
            StriderInstruction.decode(1 << 22)

    def test_decode_unknown_opcode(self):
        word = (15 << 18) | 0
        with pytest.raises(ISAError):
            StriderInstruction.decode(word)

    def test_assembly_round_trip(self):
        inst = StriderInstruction(StriderOpcode.AD, tr(0), tr(0), imm(4))
        assert StriderInstruction.parse(inst.to_assembly()) == inst

    def test_parse_paper_style_assembly(self):
        inst = StriderInstruction.parse("readB 0, 8, %cr0")
        assert inst.opcode is StriderOpcode.READB
        assert inst.op0 == imm(0) and inst.op1 == imm(8) and inst.op2 == cr(0)

    def test_parse_bentr_without_operands(self):
        inst = StriderInstruction.parse("bentr")
        assert inst.opcode is StriderOpcode.BENTR

    def test_parse_unknown_mnemonic(self):
        with pytest.raises(ISAError):
            StriderInstruction.parse("jump 1, 2, 3")


class TestStriderProgram:
    def test_program_encode_decode(self):
        program = StriderProgram(
            instructions=[
                StriderInstruction(StriderOpcode.READB, imm(0), imm(8), cr(0)),
                StriderInstruction(StriderOpcode.BENTR),
                StriderInstruction(StriderOpcode.BEXIT, imm(1), tr(0), cr(1)),
            ],
            constants={4: 24},
        )
        decoded = StriderProgram.decode(program.encode(), program.constants)
        assert decoded.instructions == program.instructions
        assert decoded.constants == {4: 24}

    def test_assembly_listing_round_trip(self):
        program = StriderProgram(
            instructions=[
                StriderInstruction(StriderOpcode.READB, imm(0), imm(8), cr(0)),
                StriderInstruction(StriderOpcode.CLN, imm(8), imm(0), imm(2)),
            ],
            constants={4: 24, 7: 216},
            description="test program",
        )
        parsed = StriderProgram.parse(program.to_assembly())
        assert parsed.instructions == program.instructions
        assert parsed.constants == program.constants


class TestEngineISA:
    def test_au_slot_validation(self):
        with pytest.raises(ISAError):
            AUInstruction(
                au_index=AUS_PER_CLUSTER,
                src_a=AUOperand(SourceKind.NONE),
                src_b=AUOperand(SourceKind.NONE),
                dest_kind=DestKind.DATA_MEMORY,
            )

    def test_ac_instruction_mask(self):
        instruction = ACInstruction(cluster_id=0, operation=Operator.MUL)
        for index in (0, 3, 7):
            instruction.add_slot(
                AUInstruction(
                    au_index=index,
                    src_a=AUOperand(SourceKind.DATA_MEMORY, address=index),
                    src_b=AUOperand(SourceKind.IMMEDIATE, value=2.0),
                    dest_kind=DestKind.DATA_MEMORY,
                    dest_address=100 + index,
                )
            )
        assert instruction.enable_mask == 0b10001001
        assert instruction.enabled_au_count == 3

    def test_duplicate_au_slot_rejected(self):
        instruction = ACInstruction(cluster_id=0, operation=Operator.ADD)
        slot = AUInstruction(
            au_index=0,
            src_a=AUOperand(SourceKind.NONE),
            src_b=AUOperand(SourceKind.NONE),
            dest_kind=DestKind.DATA_MEMORY,
        )
        instruction.add_slot(slot)
        with pytest.raises(ISAError):
            instruction.add_slot(slot)

    def test_latency_of_nonlinear_op(self):
        sigmoid_inst = ACInstruction(cluster_id=0, operation=Operator.SIGMOID)
        add_inst = ACInstruction(cluster_id=0, operation=Operator.ADD)
        assert sigmoid_inst.latency > add_inst.latency

    def test_engine_program_cycle_accounting(self):
        def step(step_no, op, n_slots):
            instruction = ACInstruction(cluster_id=0, operation=op)
            for i in range(n_slots):
                instruction.add_slot(
                    AUInstruction(
                        au_index=i,
                        src_a=AUOperand(SourceKind.IMMEDIATE, value=1.0),
                        src_b=AUOperand(SourceKind.IMMEDIATE, value=2.0),
                        dest_kind=DestKind.DATA_MEMORY,
                        dest_address=i,
                    )
                )
            return EngineStep(step=step_no, cluster_instructions=[instruction])

        program = EngineProgram(
            update_rule_steps=[step(0, Operator.MUL, 4), step(1, Operator.SIGMOID, 1)],
            post_merge_steps=[step(0, Operator.SUB, 2)],
        )
        assert program.update_rule_cycles == 1 + 4   # MUL is 1 cycle, SIGMOID 4
        assert program.post_merge_cycles == 1
        assert program.total_operations == 7
        assert program.instruction_footprint() == 3
