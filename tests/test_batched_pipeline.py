"""Parity tests for the vectorized batch execution pipeline.

The batched fast path (CompiledTape + bulk Strider walk + vectorized
payload decoding) must compute exactly what the per-tuple oracles compute:

* ``CompiledTape`` batch results == per-tuple ``HDFGEvaluator`` results ==
  the analytical ``reference_fit`` for all four algorithms;
* the bulk Strider page walk == the instruction interpreter, payloads and
  ``StriderStats`` both, on real ``Database`` pages;
* cycle accounting (engine counters and tree-bus counters) is identical
  between the tape path and the per-tuple path.
"""

import dataclasses

import numpy as np
import pytest

from repro.algorithms import (
    Hyperparameters,
    LinearRegression,
    LogisticRegression,
    LowRankMatrixFactorization,
    SupportVectorMachine,
    get_algorithm,
)
from repro.compiler import Scheduler, compile_strider
from repro.core import DAnA
from repro.data.synthetic import generate_for_algorithm
from repro.exceptions import HardwareError
from repro.hw import ExecutionEngine
from repro.hw.access_engine import PayloadDecoder
from repro.hw.strider import Strider
from repro.rdbms import Database
from repro.rdbms.page import PageLayout
from repro.rdbms.types import Schema
from repro.translator import CompiledTape, Region, translate

LRMF_TOPOLOGY = (24, 18, 4)


def _build(algorithm, n_features=6, topology=(), merge=8, lr=0.05, tol=None):
    hyper = Hyperparameters(
        learning_rate=lr,
        merge_coefficient=merge,
        epochs=5,
        convergence_tolerance=tol,
    )
    spec = algorithm.build_spec(n_features, hyper, topology)
    graph = translate(spec.algo)
    schedule = Scheduler(graph, acs_per_thread=2).schedule()
    return spec, graph, schedule


def _data_for(algorithm, n_tuples=160, n_features=6, seed=11):
    return generate_for_algorithm(
        algorithm.key, n_tuples, n_features, LRMF_TOPOLOGY, seed=seed
    )


class TestTapeMatchesEvaluator:
    """CompiledTape batch results == per-tuple HDFGEvaluator results."""

    @pytest.mark.parametrize("key", ["linear", "logistic", "svm", "lrmf"])
    def test_single_batch_node_values(self, key):
        algorithm = get_algorithm(key)
        n_features = 4 if key == "lrmf" else 6
        spec, graph, _schedule = _build(algorithm, n_features, LRMF_TOPOLOGY)
        data = _data_for(algorithm, n_tuples=8, n_features=n_features)
        tape = CompiledTape(graph)
        models = {k: np.asarray(v, np.float64) for k, v in spec.initial_models.items()}
        env = tape.run(spec.bind_batch(data), models)

        evaluator_engine = ExecutionEngine(graph, _schedule, threads=1)
        evaluator = evaluator_engine.evaluator
        for i, row in enumerate(data):
            bindings = dict(spec.bind_tuple(row))
            for name, value in models.items():
                bindings.setdefault(name, value)
            tuple_env = evaluator.initial_env(bindings)
            tuple_env = evaluator.evaluate(tuple_env, [Region.UPDATE_RULE])
            checked = 0
            for node in graph.nodes():
                if node.region is not Region.UPDATE_RULE or node.is_leaf:
                    continue
                if node.node_id not in tuple_env or env[node.node_id] is None:
                    continue
                batched = env[node.node_id]
                expected = tuple_env[node.node_id]
                value = batched[i] if tape._batched[node.node_id] else batched
                np.testing.assert_allclose(value, expected, rtol=1e-12, atol=1e-15)
                checked += 1
            assert checked >= 2

    @pytest.mark.parametrize(
        "algorithm",
        [LinearRegression(), LogisticRegression(), SupportVectorMachine()],
        ids=["linear", "logistic", "svm"],
    )
    def test_training_parity_merge_algorithms(self, algorithm):
        spec, graph, schedule = _build(algorithm)
        data = _data_for(algorithm)
        legacy = ExecutionEngine(graph, schedule, threads=8)
        fast = ExecutionEngine(graph, schedule, threads=8)
        assert fast.tape is not None
        legacy_result = legacy.train(
            data, spec.initial_models, spec.bind_tuple, epochs=5
        )
        fast_result = fast.train(
            data, spec.initial_models, None, epochs=5, bind_batch=spec.bind_batch
        )
        for name in legacy_result.models:
            np.testing.assert_allclose(
                fast_result.models[name], legacy_result.models[name], rtol=1e-9
            )
        reference = algorithm.reference_fit(data, spec.hyperparameters, epochs=5)
        for name in reference:
            np.testing.assert_allclose(
                fast_result.models[name], reference[name], rtol=1e-6
            )

    def test_training_parity_lrmf_hogwild_batches(self):
        algorithm = LowRankMatrixFactorization()
        spec, graph, schedule = _build(algorithm, 4, LRMF_TOPOLOGY)
        data = _data_for(algorithm, n_features=4)
        legacy = ExecutionEngine(graph, schedule, threads=4)
        fast = ExecutionEngine(graph, schedule, threads=4)
        legacy_result = legacy.train(
            data, spec.initial_models, spec.bind_tuple, epochs=5
        )
        fast_result = fast.train(
            data, spec.initial_models, None, epochs=5, bind_batch=spec.bind_batch
        )
        for name in ("L", "R"):
            np.testing.assert_allclose(
                fast_result.models[name], legacy_result.models[name], rtol=1e-9
            )

    def test_training_parity_lrmf_sequential_matches_reference(self):
        algorithm = LowRankMatrixFactorization()
        spec, graph, schedule = _build(algorithm, 4, LRMF_TOPOLOGY)
        data = _data_for(algorithm, n_features=4)
        # One thread => one tuple per batch => the engine is exactly the
        # sequential SGD the analytical reference implements.
        fast = ExecutionEngine(graph, schedule, threads=1)
        fast_result = fast.train(
            data, spec.initial_models, None, epochs=3, bind_batch=spec.bind_batch
        )
        hyper = spec.hyperparameters.scaled(rank=LRMF_TOPOLOGY[2])
        reference = algorithm.reference_fit(data, hyper, epochs=3)
        for name in ("L", "R"):
            np.testing.assert_allclose(
                fast_result.models[name], reference[name], rtol=1e-9
            )

    @pytest.mark.parametrize("key", ["linear", "logistic", "svm", "lrmf"])
    def test_cycle_counters_identical(self, key):
        algorithm = get_algorithm(key)
        n_features = 4 if key == "lrmf" else 6
        spec, graph, schedule = _build(algorithm, n_features, LRMF_TOPOLOGY)
        data = _data_for(algorithm, n_tuples=100, n_features=n_features)
        legacy = ExecutionEngine(graph, schedule, threads=8)
        fast = ExecutionEngine(graph, schedule, threads=8)
        legacy.train(data, spec.initial_models, spec.bind_tuple, epochs=2)
        fast.train(data, spec.initial_models, None, epochs=2, bind_batch=spec.bind_batch)
        assert fast.stats == legacy.stats
        assert fast.tree_bus.stats == legacy.tree_bus.stats

    def test_convergence_parity(self):
        algorithm = LinearRegression()
        spec, graph, schedule = _build(algorithm, tol=0.5)
        data = _data_for(algorithm)
        legacy = ExecutionEngine(graph, schedule, threads=8)
        fast = ExecutionEngine(graph, schedule, threads=8)
        legacy_result = legacy.train(
            data, spec.initial_models, spec.bind_tuple, epochs=40
        )
        fast_result = fast.train(
            data, spec.initial_models, None, epochs=40, bind_batch=spec.bind_batch
        )
        assert legacy_result.converged and fast_result.converged
        assert fast_result.epochs_run == legacy_result.epochs_run

    def test_shuffle_paths_agree(self):
        algorithm = LogisticRegression()
        spec, graph, schedule = _build(algorithm)
        data = _data_for(algorithm)
        legacy = ExecutionEngine(graph, schedule, threads=8)
        fast = ExecutionEngine(graph, schedule, threads=8)
        legacy_result = legacy.train(
            data, spec.initial_models, spec.bind_tuple, epochs=3,
            shuffle=True, rng=np.random.default_rng(3),
        )
        fast_result = fast.train(
            data, spec.initial_models, None, epochs=3,
            shuffle=True, rng=np.random.default_rng(3), bind_batch=spec.bind_batch,
        )
        np.testing.assert_allclose(
            fast_result.models["mo"], legacy_result.models["mo"], rtol=1e-9
        )

    def test_per_tuple_convergence_with_merge_matches_lead_env(self):
        # Convergence on a *per-tuple* value while a merge drives the model
        # update: the oracle checks the lead (first) tuple's env, and the
        # tape must pick the same representative tuple.
        from repro import dana
        from repro.algorithms.base import AlgorithmSpec

        n = 4
        mo = dana.model([n], name="mo")
        x = dana.input([n], name="x")
        y = dana.output(name="y")
        lr = dana.meta(0.05, name="lr")
        coeff = dana.meta(8.0, name="merge_coef")
        tol = dana.meta(0.05, name="tol")
        algo = dana.algo(mo, x, y, name="tupleConv")
        er = dana.sigma(mo * x, 1) - y
        merged = algo.merge(er * x, 8, "+")
        algo.setModel(mo - lr * (merged / coeff))
        algo.setConvergence(er * er < tol)
        algo.setEpochs(60)

        def bind(row):
            return {"x": row[:n], "y": float(row[n])}

        def bind_batch(rows):
            return {"x": rows[:, :n], "y": rows[:, n]}

        spec = AlgorithmSpec(
            name="tupleConv", algo=algo, schema=Schema.training_schema(n),
            bind_tuple=bind, initial_models={"mo": np.zeros(n)},
            hyperparameters=Hyperparameters(), bind_batch=bind_batch,
        )
        graph = translate(spec.algo)
        schedule = Scheduler(graph, acs_per_thread=2).schedule()
        data = generate_for_algorithm("linear", 96, n, seed=21)
        legacy = ExecutionEngine(graph, schedule, threads=8)
        fast = ExecutionEngine(graph, schedule, threads=8)
        assert fast.tape is not None
        legacy_result = legacy.train(data, spec.initial_models, bind, epochs=60)
        fast_result = fast.train(
            data, spec.initial_models, None, epochs=60, bind_batch=bind_batch
        )
        assert fast_result.epochs_run == legacy_result.epochs_run
        assert fast_result.converged == legacy_result.converged
        np.testing.assert_allclose(
            fast_result.models["mo"], legacy_result.models["mo"], rtol=1e-9
        )

    def test_per_tuple_model_update_with_merge_matches_lead_env(self):
        # A second model is updated *per tuple* while a merge drives the
        # first: the oracle applies the lead (first) tuple's update to the
        # per-tuple model, and the tape must pick the same tuple.
        from repro import dana
        from repro.algorithms.base import AlgorithmSpec

        n = 4
        mo = dana.model([n], name="mo")
        aux = dana.model([n], name="aux")
        x = dana.input([n], name="x")
        y = dana.output(name="y")
        lr = dana.meta(0.05, name="lr")
        coeff = dana.meta(8.0, name="merge_coef")
        algo = dana.algo(mo, x, y, name="tupleUpdate", extra_models=(aux,))
        er = dana.sigma(mo * x, 1) - y
        merged = algo.merge(er * x, 8, "+")
        algo.setModel(mo - lr * (merged / coeff))
        algo.setModel(y * x, var=aux)  # per-tuple update, bypasses the merge
        algo.setEpochs(4)

        def bind(row):
            return {"x": row[:n], "y": float(row[n])}

        def bind_batch(rows):
            return {"x": rows[:, :n], "y": rows[:, n]}

        initial = {"mo": np.zeros(n), "aux": np.zeros(n)}
        spec = AlgorithmSpec(
            name="tupleUpdate", algo=algo, schema=Schema.training_schema(n),
            bind_tuple=bind, initial_models=initial,
            hyperparameters=Hyperparameters(), bind_batch=bind_batch,
        )
        graph = translate(spec.algo)
        schedule = Scheduler(graph, acs_per_thread=2).schedule()
        data = generate_for_algorithm("linear", 64, n, seed=22)
        legacy = ExecutionEngine(graph, schedule, threads=8)
        fast = ExecutionEngine(graph, schedule, threads=8)
        assert fast.tape is not None
        legacy_result = legacy.train(data, spec.initial_models, bind, epochs=4)
        fast_result = fast.train(
            data, spec.initial_models, None, epochs=4, bind_batch=bind_batch
        )
        for name in ("mo", "aux"):
            np.testing.assert_allclose(
                fast_result.models[name], legacy_result.models[name], rtol=1e-9
            )

    def test_engine_requires_some_binder(self):
        spec, graph, schedule = _build(LinearRegression())
        engine = ExecutionEngine(graph, schedule, threads=8)
        from repro.exceptions import ExecutionEngineError

        with pytest.raises(ExecutionEngineError):
            engine.train(np.zeros((4, 7)), spec.initial_models, None, epochs=1)


class TestEndToEndTapePath:
    """The DAnA facade trains through the tape + bulk-walk pipeline."""

    def test_dana_fast_and_slow_paths_match(self):
        algorithm = LinearRegression()
        hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=16, epochs=4)
        spec = algorithm.build_spec(8, hyper)
        data = generate_for_algorithm("linear", 300, 8, seed=5)

        results = {}
        for label, fast in (("fast", True), ("slow", False)):
            db = Database(page_size=8 * 1024)
            db.load_table("t", spec.schema, data)
            system = DAnA(db)
            run_spec = spec if fast else dataclasses.replace(spec, bind_batch=None)
            system.register_udf("linearR", run_spec, epochs=4)
            accelerator = system.accelerator_for("linearR", "t")
            accelerator.access_engine.use_bulk_walk = fast
            results[label] = system.train("linearR", "t", epochs=4)

        fast_run, slow_run = results["fast"], results["slow"]
        np.testing.assert_allclose(
            fast_run.models["mo"], slow_run.models["mo"], rtol=1e-9
        )
        assert fast_run.engine_stats == slow_run.engine_stats
        assert fast_run.access_stats == slow_run.access_stats


class TestBulkStriderWalk:
    """Bulk page walk == instruction interpreter on real Database pages."""

    @pytest.mark.parametrize(
        "schema,key,n_features",
        [
            (Schema.training_schema(6), "linear", 6),
            (Schema.lrmf_schema(), "lrmf", 3),
        ],
        ids=["dense-float", "mixed-int-float"],
    )
    @pytest.mark.parametrize("page_size", [8 * 1024, 32 * 1024])
    def test_payloads_and_stats_identical(self, schema, key, n_features, page_size):
        layout = PageLayout(page_size=page_size)
        data = generate_for_algorithm(key, 400, n_features, LRMF_TOPOLOGY, seed=9)
        db = Database(page_size=page_size)
        db.load_table("t", schema, data)
        strider = Strider(compile_strider(layout, schema).program)
        assert strider._page_walk is not None
        pages = 0
        for _no, image in db.table("t").scan_pages(db.buffer_pool):
            oracle = strider.process_page(image)
            bulk = strider.process_page_bulk(image)
            assert bulk.payloads == oracle.payloads
            assert bulk.stats == oracle.stats
            pages += 1
        assert pages >= 1

    def test_non_canonical_program_falls_back_to_interpreter(self):
        from repro.isa.strider_isa import (
            StriderInstruction,
            StriderOpcode,
            StriderProgram,
            imm,
            tr,
        )

        program = StriderProgram(
            instructions=[
                StriderInstruction(StriderOpcode.READB, imm(0), imm(8), tr(0)),
                StriderInstruction(StriderOpcode.CLN, imm(0), imm(0), imm(2)),
            ],
            constants={},
        )
        strider = Strider(program)
        assert strider._page_walk is None
        page = bytes(64)
        oracle = strider.process_page(page)
        bulk = strider.process_page_bulk(page)
        assert bulk.payloads == oracle.payloads
        assert bulk.stats == oracle.stats

    def test_aliased_config_register_rejected(self):
        # A program that is shaped like the page walk but resolves a static
        # operand from a config register that a header READB overwrites at
        # runtime must not match: the constant-pool value would be stale.
        from repro.isa.strider_isa import cr

        layout = PageLayout(page_size=8 * 1024)
        schema = Schema.training_schema(4)
        result = compile_strider(layout, schema)
        program = result.program
        # Rewrite the cursor-init base to alias header read #1's destination
        # (CR_FREE_START) while planting a bogus constant for it.
        aliased_reg = program.instructions[1].op2.value
        cursor_init = program.instructions[4]
        patched = type(cursor_init)(
            cursor_init.opcode, cursor_init.op0, cr(aliased_reg), cursor_init.op2
        )
        program.instructions[4] = patched
        program.constants[aliased_reg] = layout.line_pointer_start + 4  # stale lie
        strider = Strider(program)
        assert strider._page_walk is None
        data = generate_for_algorithm("linear", 50, 4, seed=6)
        db = Database(page_size=8 * 1024)
        db.load_table("t", schema, data)
        for _no, image in db.table("t").scan_pages(db.buffer_pool):
            oracle = strider.process_page(image)
            bulk = strider.process_page_bulk(image)
            assert bulk.payloads == oracle.payloads
            assert bulk.stats == oracle.stats

    def test_narrow_read_width_cycles_match(self):
        layout = PageLayout(page_size=8 * 1024)
        schema = Schema.training_schema(4)
        data = generate_for_algorithm("linear", 120, 4, seed=2)
        db = Database(page_size=8 * 1024)
        db.load_table("t", schema, data)
        strider = Strider(compile_strider(layout, schema).program, read_width_bytes=4)
        for _no, image in db.table("t").scan_pages(db.buffer_pool):
            assert strider.process_page_bulk(image).stats == strider.process_page(image).stats


class TestVectorizedDecoder:
    def test_matches_per_payload_decode(self):
        for schema, key, nf in (
            (Schema.training_schema(5), "linear", 5),
            (Schema.lrmf_schema(), "lrmf", 3),
        ):
            data = generate_for_algorithm(key, 64, nf, LRMF_TOPOLOGY, seed=4)
            decoder = PayloadDecoder(schema)
            payloads = [schema.encode_row(tuple(row)) for row in data]
            expected = np.vstack([decoder.decode(p) for p in payloads])
            np.testing.assert_array_equal(decoder.decode_many(payloads), expected)

    def test_empty_and_generator_inputs(self):
        decoder = PayloadDecoder(Schema.training_schema(3))
        assert decoder.decode_many([]).shape == (0, 4)
        schema = Schema.training_schema(3)
        rows = [(1.0, 2.0, 3.0, 1.0), (4.0, 5.0, 6.0, 0.0)]
        payloads = (schema.encode_row(r) for r in rows)
        np.testing.assert_allclose(decoder.decode_many(payloads), rows, rtol=1e-6)

    def test_wrong_payload_size_rejected(self):
        decoder = PayloadDecoder(Schema.training_schema(3))
        with pytest.raises(HardwareError):
            decoder.decode_many([b"\x00" * 3])
