"""Tests for process-parallel segment execution (process pool + shared pages).

Invariants enforced here:

* **processes == threads == lockstep, bit for bit** — models, predictions
  and every schedule-derived counter are identical across
  ``execution ∈ {lockstep, threads, processes}``; the in-process modes are
  the parity oracles the process pool must reproduce exactly;
* **shuffled runs stay deterministic** — the per-segment
  ``SeedSequence.spawn`` streams are rebuilt identically inside worker
  processes;
* **the shared-page lifecycle is leak-free** — no shared-memory block
  survives ``close(); unlink()``, attaching after unlink raises cleanly,
  and a full processes-mode run leaves no block mapped;
* **configuration errors fail fast in the parent** — invalid execution
  strategies and specs without a rebuild recipe never spawn a child.
"""

import dataclasses

import numpy as np
import pytest

from repro.algorithms import Hyperparameters, get_algorithm
from repro.core import DAnA
from repro.data.synthetic import generate_for_algorithm
from repro.exceptions import ConfigurationError, SharedPageStoreError
from repro.rdbms import Database
from repro.runtime import SharedPageStore, SharedPageStoreHandle, live_store_names

LRMF_TOPOLOGY = (24, 18, 4)
EPOCHS = 3


def _system(key, n_tuples=320, merge=8, epochs=EPOCHS, seed=11):
    algorithm = get_algorithm(key)
    n_features = 4 if key == "lrmf" else 6
    topology = LRMF_TOPOLOGY if key == "lrmf" else ()
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=merge, epochs=epochs)
    spec = algorithm.build_spec(n_features, hyper, topology)
    data = generate_for_algorithm(key, n_tuples, n_features, LRMF_TOPOLOGY, seed=seed)
    database = Database(page_size=8 * 1024)
    database.load_table("train", spec.schema, data)
    database.warm_cache("train")
    system = DAnA(database)
    system.register_udf(key, spec, epochs=epochs)
    return system, spec, algorithm, data


def _assert_run_parity(reference, candidate):
    """Bit-identity of models and every schedule-derived counter."""
    for name in reference.models:
        np.testing.assert_array_equal(candidate.models[name], reference.models[name])
    assert candidate.engine_stats == reference.engine_stats
    assert candidate.access_stats == reference.access_stats
    assert candidate.tuples_extracted == reference.tuples_extracted
    assert candidate.epochs_run == reference.epochs_run


# ---------------------------------------------------------------------- #
# training parity: processes == threads == lockstep
# ---------------------------------------------------------------------- #
class TestProcessTrainingParity:
    @pytest.mark.slow
    @pytest.mark.parametrize("key", ["linear", "logistic", "svm", "lrmf"])
    @pytest.mark.parametrize("segments", [1, 2, 4])
    def test_processes_match_threads(self, key, segments):
        system, spec, _algo, _data = _system(key)
        threads = system.train(
            key, "train", epochs=EPOCHS, segments=segments, execution="threads"
        )
        processes = system.train(
            key, "train", epochs=EPOCHS, segments=segments, execution="processes"
        )
        assert processes.cluster.mode == "processes"
        _assert_run_parity(threads, processes)

    def test_processes_match_lockstep(self):
        system, spec, _algo, _data = _system("linear")
        lockstep = system.train(
            "linear", "train", epochs=EPOCHS, segments=2, execution="lockstep"
        )
        processes = system.train(
            "linear", "train", epochs=EPOCHS, segments=2, execution="processes"
        )
        assert lockstep.cluster.mode == "lockstep"
        for name in lockstep.models:
            np.testing.assert_allclose(
                lockstep.models[name], processes.models[name], rtol=1e-9, atol=1e-12
            )
        assert lockstep.engine_stats == processes.engine_stats
        assert (
            lockstep.cluster.cross_merge_cycles
            == processes.cluster.cross_merge_cycles
        )

    def test_shuffled_processes_bit_identical_to_threads(self):
        """Per-segment SeedSequence streams are rebuilt exactly in children."""
        system, spec, _algo, _data = _system("linear")
        kwargs = dict(epochs=EPOCHS, segments=2, shuffle=True, seed=123)
        threads = system.train("linear", "train", execution="threads", **kwargs)
        processes = system.train("linear", "train", execution="processes", **kwargs)
        _assert_run_parity(threads, processes)

    def test_convergence_check_agrees_with_threads(self):
        """Early stopping decisions cross the process boundary unchanged."""
        system, spec, algorithm, data = _system("linear")
        hyper = Hyperparameters(
            learning_rate=0.05,
            merge_coefficient=8,
            epochs=40,
            convergence_tolerance=0.5,
        )
        spec = algorithm.build_spec(6, hyper)
        system.register_udf("linear_tol", spec, epochs=40)
        threads = system.train(
            "linear_tol", "train", epochs=40, segments=2, execution="threads"
        )
        processes = system.train(
            "linear_tol", "train", epochs=40, segments=2, execution="processes"
        )
        assert threads.converged and processes.converged
        assert processes.epochs_run == threads.epochs_run < 40
        _assert_run_parity(threads, processes)

    def test_ipc_accounting(self):
        """Process runs book their pipe traffic; in-process runs book none."""
        system, spec, _algo, _data = _system("linear")
        threads = system.train(
            "linear", "train", epochs=EPOCHS, segments=2, execution="threads"
        )
        processes = system.train(
            "linear", "train", epochs=EPOCHS, segments=2, execution="processes"
        )
        assert threads.cluster.ipc.bytes_shipped == 0
        assert threads.cluster.ipc.round_trips == 0
        assert processes.cluster.ipc.bytes_shipped > 0
        assert processes.cluster.ipc.round_trips >= 2  # handshake + window

    def test_storage_stats_merged_from_children(self):
        """Child page reads surface in the parent's storage counters."""
        system, spec, _algo, _data = _system("linear")
        before = dataclasses.replace(system.database.storage.stats)
        run = system.train(
            "linear", "train", epochs=EPOCHS, segments=2, execution="processes"
        )
        stats = system.database.storage.stats
        assert run.cluster.mode == "processes"
        # The shared-page export reads every page once in the parent, and
        # each child's extraction pass reads its partition again.
        assert stats.page_reads > before.page_reads
        assert stats.bytes_read > before.bytes_read

    def test_no_shared_memory_leak_after_run(self):
        system, spec, _algo, _data = _system("linear")
        system.train(
            "linear", "train", epochs=EPOCHS, segments=2, execution="processes"
        )
        assert live_store_names() == []


# ---------------------------------------------------------------------- #
# scoring parity: ScanScorer execution="processes"
# ---------------------------------------------------------------------- #
class TestProcessScoringParity:
    def test_predictions_bit_identical_to_threads(self):
        system, spec, _algo, _data = _system("linear")
        models = system.train("linear", "train", epochs=EPOCHS).models
        threads = system.score_table(
            "linear", "train", models=models, segments=2, execution="threads"
        )
        processes = system.score_table(
            "linear", "train", models=models, segments=2, execution="processes"
        )
        np.testing.assert_array_equal(processes.predictions, threads.predictions)
        assert processes.inference_stats == threads.inference_stats
        for t_seg, p_seg in zip(threads.segments, processes.segments):
            assert p_seg.access_stats == t_seg.access_stats
            assert p_seg.tuples_scored == t_seg.tuples_scored
        assert threads.execution == "threads"
        assert processes.execution == "processes"
        assert threads.ipc.bytes_shipped == 0
        assert processes.ipc.bytes_shipped > 0
        assert live_store_names() == []

    def test_invalid_scoring_execution_rejected(self):
        system, spec, _algo, _data = _system("linear")
        models = system.train("linear", "train", epochs=EPOCHS).models
        with pytest.raises(ConfigurationError):
            system.score_table(
                "linear", "train", models=models, execution="lockstep"
            )


# ---------------------------------------------------------------------- #
# shared-page store lifecycle
# ---------------------------------------------------------------------- #
class TestSharedPageStore:
    PAGE_SIZE = 64

    def _pages(self, count=3):
        return [(no, bytes([no]) * self.PAGE_SIZE) for no in range(count)]

    def test_create_page_roundtrip_and_stats(self):
        store = SharedPageStore.create(self._pages(), self.PAGE_SIZE)
        try:
            assert bytes(store.page(2)) == bytes([2]) * self.PAGE_SIZE
            assert [no for no, _ in store.scan_pages()] == [0, 1, 2]
            # 1 direct read + 3 scan reads, every one booked.
            assert store.stats.page_reads == 4
            assert store.stats.bytes_read == 4 * self.PAGE_SIZE
        finally:
            store.close()
            store.unlink()
        assert live_store_names() == []

    def test_handle_is_pickle_safe_metadata(self):
        store = SharedPageStore.create(self._pages(), self.PAGE_SIZE)
        try:
            handle = store.handle()
            assert isinstance(handle, SharedPageStoreHandle)
            assert handle.page_nos == (0, 1, 2)
            assert handle.page_count == 3
            assert handle.size_bytes == 3 * self.PAGE_SIZE
        finally:
            store.close()
            store.unlink()

    def test_same_process_attach_shares_the_mapping(self):
        store = SharedPageStore.create(self._pages(), self.PAGE_SIZE)
        attached = SharedPageStore.attach(store.handle())
        assert bytes(attached.page(1)) == bytes([1]) * self.PAGE_SIZE
        attached.close()
        # The owner's mapping survives the attachment's close.
        assert bytes(store.page(1)) == bytes([1]) * self.PAGE_SIZE
        store.close()
        store.unlink()
        assert live_store_names() == []

    def test_attach_after_unlink_raises_cleanly(self):
        store = SharedPageStore.create(self._pages(), self.PAGE_SIZE)
        handle = store.handle()
        store.close()
        store.unlink()
        with pytest.raises(SharedPageStoreError, match="gone"):
            SharedPageStore.attach(handle)

    def test_page_after_close_raises(self):
        store = SharedPageStore.create(self._pages(), self.PAGE_SIZE)
        store.close()
        with pytest.raises(SharedPageStoreError, match="closed"):
            store.page(0)
        store.unlink()

    def test_unknown_page_and_bad_image_size_raise(self):
        with pytest.raises(SharedPageStoreError, match="expected"):
            SharedPageStore.create([(0, b"short")], self.PAGE_SIZE)
        store = SharedPageStore.create(self._pages(), self.PAGE_SIZE)
        try:
            with pytest.raises(SharedPageStoreError, match="not stored"):
                store.page(99)
        finally:
            store.close()
            store.unlink()

    def test_only_owner_may_unlink(self):
        store = SharedPageStore.create(self._pages(), self.PAGE_SIZE)
        attached = SharedPageStore.attach(store.handle())
        with pytest.raises(SharedPageStoreError, match="creating process"):
            attached.unlink()
        attached.close()
        store.close()
        store.unlink()

    def test_context_manager_closes_and_unlinks(self):
        with SharedPageStore.create(self._pages(), self.PAGE_SIZE) as store:
            handle = store.handle()
            assert handle.name in live_store_names()
        assert live_store_names() == []
        with pytest.raises(SharedPageStoreError):
            SharedPageStore.attach(handle)


# ---------------------------------------------------------------------- #
# perf model: IPC overhead terms
# ---------------------------------------------------------------------- #
class TestShardedRunCostIPC:
    def test_from_run_lifts_ipc_counters(self):
        from repro.perf import ShardedRunCost

        system, spec, _algo, _data = _system("linear")
        run = system.train(
            "linear", "train", epochs=EPOCHS, segments=2, execution="processes"
        )
        cost = ShardedRunCost.from_run(run)
        assert cost.ipc_bytes == run.cluster.ipc.bytes_shipped > 0
        assert cost.ipc_round_trips == run.cluster.ipc.round_trips > 0
        # IPC is host-side overhead on top of the device critical path.
        assert cost.total_seconds() > cost.seconds()
        assert cost.total_seconds() == pytest.approx(
            cost.seconds() + cost.ipc_overhead_seconds()
        )

    def test_in_process_runs_have_zero_ipc_overhead(self):
        from repro.perf import ShardedRunCost

        system, spec, _algo, _data = _system("linear")
        run = system.train("linear", "train", epochs=EPOCHS, segments=2)
        cost = ShardedRunCost.from_run(run)
        assert cost.ipc_bytes == 0 and cost.ipc_round_trips == 0
        assert cost.ipc_overhead_seconds() == 0.0
        assert cost.total_seconds() == cost.seconds()

    def test_overhead_math_and_validation(self):
        from repro.perf import ShardedRunCost

        cost = ShardedRunCost(
            segments=2,
            epochs_run=1,
            critical_segment_cycles=100,
            cross_merge_cycles=10,
            model_elements=4,
            ipc_bytes=2_000_000,
            ipc_round_trips=10,
        )
        seconds = cost.ipc_overhead_seconds(
            bandwidth_bytes_per_s=1e6, round_trip_s=0.001
        )
        assert seconds == pytest.approx(2.0 + 0.01)
        with pytest.raises(ValueError):
            cost.ipc_overhead_seconds(bandwidth_bytes_per_s=0)


# ---------------------------------------------------------------------- #
# configuration errors fail fast in the parent
# ---------------------------------------------------------------------- #
class TestProcessConfiguration:
    def test_invalid_execution_rejected(self):
        system, spec, _algo, _data = _system("linear")
        with pytest.raises(ConfigurationError):
            system.train(
                "linear", "train", epochs=2, segments=2, execution="fibers"
            )

    def test_spec_without_builder_recipe_rejected_before_spawn(self):
        """Hand-written specs can't cross the process boundary: binders are
        closures, so without the ``builder`` rebuild recipe the parent must
        refuse instead of shipping an unpicklable spec."""
        system, spec, _algo, _data = _system("linear")
        bare = dataclasses.replace(spec, metadata={})
        system.register_udf("bare", bare, epochs=2)
        with pytest.raises(ConfigurationError, match="builder"):
            system.train("bare", "train", epochs=2, segments=2, execution="processes")
        # The same spec still trains in-process.
        run = system.train("bare", "train", epochs=2, segments=2, execution="threads")
        assert run.epochs_run == 2
