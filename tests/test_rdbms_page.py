"""Unit tests for heap pages, tuple headers and page layouts."""

import pytest

from repro.exceptions import PageError, PageFullError
from repro.rdbms.heaptuple import TUPLE_HEADER_SIZE, TupleHeader, decode_tuple, encode_tuple, tuple_size
from repro.rdbms.page import (
    LINE_POINTER_SIZE,
    PAGE_HEADER_SIZE,
    HeapPage,
    PageLayout,
)
from repro.rdbms.types import ColumnType, Schema


@pytest.fixture
def schema():
    return Schema.training_schema(3)


class TestTupleHeader:
    def test_round_trip(self):
        header = TupleHeader(t_len=20, attr_count=3, flags=0, null_bitmap=0)
        assert TupleHeader.decode(header.encode()) == header

    def test_decode_short_buffer(self):
        with pytest.raises(PageError):
            TupleHeader.decode(b"\x00\x01")

    def test_encode_tuple_length(self, schema):
        raw = encode_tuple(schema, (1.0, 2.0, 3.0, 4.0))
        assert len(raw) == TUPLE_HEADER_SIZE + schema.row_width
        assert tuple_size(schema) == len(raw)

    def test_decode_tuple_round_trip(self, schema):
        values = (1.0, -2.0, 3.5, 0.0)
        assert decode_tuple(schema, encode_tuple(schema, values)) == values

    def test_decode_tuple_wrong_schema(self, schema):
        raw = encode_tuple(schema, (1.0, 2.0, 3.0, 4.0))
        other = Schema.training_schema(5)
        with pytest.raises(PageError):
            decode_tuple(other, raw)


class TestPageLayout:
    def test_defaults(self):
        layout = PageLayout()
        assert layout.page_size == 32 * 1024
        assert layout.header_size == PAGE_HEADER_SIZE
        assert layout.line_pointer_size == LINE_POINTER_SIZE

    def test_tuples_per_page(self, schema):
        layout = PageLayout(page_size=8 * 1024)
        per_page = layout.tuples_per_page(schema)
        # each tuple: 4 (line pointer) + 8 (header) + 16 (payload) = 28 bytes
        assert per_page == (8 * 1024 - PAGE_HEADER_SIZE) // 28

    def test_pages_for(self, schema):
        layout = PageLayout(page_size=8 * 1024)
        per_page = layout.tuples_per_page(schema)
        assert layout.pages_for(per_page, schema) == 1
        assert layout.pages_for(per_page + 1, schema) == 2
        assert layout.pages_for(0, schema) == 0

    def test_too_small_page_rejected(self):
        with pytest.raises(PageError):
            PageLayout(page_size=16)

    def test_pages_for_oversized_tuple(self):
        wide = Schema.training_schema(5000, ColumnType.FLOAT8)
        layout = PageLayout(page_size=8 * 1024)
        with pytest.raises(PageError):
            layout.pages_for(10, wide)


class TestHeapPage:
    def test_empty_page(self):
        page = HeapPage(PageLayout(page_size=8192))
        assert page.tuple_count == 0
        assert page.free_space == 8192 - PAGE_HEADER_SIZE

    def test_insert_and_read(self, schema):
        page = HeapPage(PageLayout(page_size=8192))
        slot = page.insert(schema, (1.0, 2.0, 3.0, 4.0))
        assert slot == 0
        assert page.read(schema, 0) == (1.0, 2.0, 3.0, 4.0)

    def test_insert_many_and_iterate(self, schema):
        page = HeapPage(PageLayout(page_size=8192))
        rows = [(float(i), float(i + 1), float(i + 2), float(i * 10)) for i in range(50)]
        for row in rows:
            page.insert(schema, row)
        assert list(page.tuples(schema)) == rows

    def test_free_space_shrinks(self, schema):
        page = HeapPage(PageLayout(page_size=8192))
        before = page.free_space
        page.insert(schema, (0.0, 0.0, 0.0, 0.0))
        assert page.free_space == before - LINE_POINTER_SIZE - tuple_size(schema)

    def test_page_full(self, schema):
        layout = PageLayout(page_size=8192)
        page = HeapPage(layout)
        for i in range(layout.tuples_per_page(schema)):
            page.insert(schema, (float(i), 0.0, 0.0, 0.0))
        assert not page.has_room(schema)
        with pytest.raises(PageFullError):
            page.insert(schema, (9.0, 9.0, 9.0, 9.0))

    def test_binary_round_trip(self, schema):
        layout = PageLayout(page_size=8192)
        page = HeapPage(layout)
        rows = [(float(i), -float(i), 2.0 * i, 1.0) for i in range(10)]
        for row in rows:
            page.insert(schema, row)
        image = page.to_bytes()
        assert len(image) == 8192
        restored = HeapPage.from_bytes(image, layout)
        assert restored.tuple_count == 10
        assert list(restored.tuples(schema)) == rows

    def test_from_bytes_wrong_size(self):
        with pytest.raises(PageError):
            HeapPage.from_bytes(b"\x00" * 100, PageLayout(page_size=8192))

    def test_line_pointer_out_of_range(self, schema):
        page = HeapPage(PageLayout(page_size=8192))
        page.insert(schema, (1.0, 2.0, 3.0, 4.0))
        with pytest.raises(PageError):
            page.line_pointer(5)

    def test_tuple_data_grows_downward(self, schema):
        page = HeapPage(PageLayout(page_size=8192))
        page.insert(schema, (1.0, 0.0, 0.0, 0.0))
        offset0, _ = page.line_pointer(0)
        page.insert(schema, (2.0, 0.0, 0.0, 0.0))
        offset1, _ = page.line_pointer(1)
        assert offset1 < offset0, "later tuples are placed at lower addresses"

    def test_header_fields_written_to_image(self, schema):
        page = HeapPage(PageLayout(page_size=8192))
        page.insert(schema, (1.0, 2.0, 3.0, 4.0))
        image = page.to_bytes()
        assert int.from_bytes(image[0:8], "little") == 8192
        assert int.from_bytes(image[14:16], "little") == 1
