"""Tests for the analytical performance models (CPU, IO, FPGA, reports)."""

import pytest

from repro.data import WORKLOADS, get_workload, real_workloads
from repro.perf import (
    DAnAModel,
    ExternalLibraryModel,
    GreenplumModel,
    IOModel,
    MADlibPostgresModel,
    PAPER_EPOCHS,
    RuntimeBreakdown,
    TABLAModel,
    epochs_for,
    format_seconds,
    geomean,
)


class TestReportHelpers:
    def test_breakdown_total_and_speedup(self):
        a = RuntimeBreakdown(system="A", workload="w", io=1.0, compute=3.0)
        b = RuntimeBreakdown(system="B", workload="w", io=0.5, compute=0.5)
        assert a.total == 4.0
        assert b.speedup_over(a) == pytest.approx(4.0)
        assert a.as_dict()["total_s"] == 4.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_format_seconds(self):
        assert format_seconds(0.61) == "0s 610ms"
        assert format_seconds(131.0) == "2m 11s"
        assert format_seconds(3666) == "1h 1m 6s"

    def test_epochs_for_covers_every_workload(self):
        for workload in WORKLOADS:
            assert workload.name in PAPER_EPOCHS
            assert epochs_for(workload) >= 1


class TestIOModel:
    def test_cold_cache_costs_more_than_warm(self):
        io = IOModel()
        workload = get_workload("Remote Sensing LR")
        cold = io.total_io_seconds(workload, warm_cache=False, epochs=5)
        warm = io.total_io_seconds(workload, warm_cache=True, epochs=5)
        assert cold > warm
        assert warm == pytest.approx(0.0)

    def test_oversized_table_pays_per_epoch_io(self):
        io = IOModel()
        workload = get_workload("S/E SVM")  # 38 GB, larger than the 30 GB cache
        estimate = io.estimate(workload, warm_cache=True, epochs=10)
        assert 0.0 < estimate.resident_fraction < 1.0
        assert estimate.per_epoch_seconds > 0.0

    def test_small_table_fits(self):
        io = IOModel()
        workload = get_workload("WLAN")
        estimate = io.estimate(workload, warm_cache=True, epochs=10)
        assert estimate.resident_fraction == 1.0
        assert estimate.per_epoch_seconds == 0.0

    def test_scan_seconds_scale_with_pages(self):
        io = IOModel()
        assert io.scan_seconds(2000) > io.scan_seconds(1000) > 0


class TestCPUModels:
    def test_madlib_scales_with_model_width(self):
        madlib = MADlibPostgresModel()
        narrow = madlib.epoch_compute_seconds(get_workload("Remote Sensing LR"))
        wide = madlib.epoch_compute_seconds(get_workload("S/N Logistic"))
        assert wide > narrow

    def test_linear_regression_is_single_pass(self):
        madlib = MADlibPostgresModel()
        workload = get_workload("Patient")
        assert madlib.total_compute_seconds(workload, epochs=10) == pytest.approx(
            madlib.total_compute_seconds(workload, epochs=100)
        )

    def test_greenplum_sweet_spot_at_8_segments(self):
        workload = get_workload("Remote Sensing LR")
        epochs = epochs_for(workload)
        totals = {
            segments: GreenplumModel(segments=segments).estimate(workload, epochs).total
            for segments in (1, 4, 8, 16)
        }
        assert totals[8] < totals[4] < totals[1]
        assert totals[8] < totals[16]

    def test_greenplum_beats_single_node_on_compute_bound(self):
        workload = get_workload("S/N Logistic")
        epochs = epochs_for(workload)
        madlib = MADlibPostgresModel().estimate(workload, epochs)
        greenplum = GreenplumModel(8).estimate(workload, epochs)
        assert greenplum.total < madlib.total

    def test_external_library_breakdown_sums_to_one(self):
        model = ExternalLibraryModel(library="Liblinear")
        workload = get_workload("Remote Sensing LR")
        fractions = model.breakdown_fractions(workload, epochs_for(workload))
        assert sum(fractions.values()) == pytest.approx(1.0, abs=0.01)
        assert fractions["data_export"] > 0.4  # export dominates (Figure 15a)

    def test_external_svm_compute_is_slow(self):
        model = ExternalLibraryModel(library="DimmWitted")
        workload = get_workload("Remote Sensing SVM")
        epochs = epochs_for(workload)
        external = model.compute_seconds(workload, epochs)
        madlib = MADlibPostgresModel().total_compute_seconds(workload, epochs)
        assert external > madlib  # paper §7.3: external SVM solvers lose to MADlib


class TestDAnAModel:
    def test_dana_beats_madlib_on_real_workloads(self):
        madlib = MADlibPostgresModel()
        dana = DAnAModel()
        speedups = []
        for workload in real_workloads():
            epochs = epochs_for(workload)
            speedups.append(
                madlib.estimate(workload, epochs).total / dana.estimate(workload, epochs).total
            )
        assert all(s >= 1.0 for s in speedups)
        assert 5.0 < geomean(speedups) < 14.0       # paper: 8.3x
        assert max(speedups) > 20.0                 # paper: 28.2x

    def test_blog_feedback_smallest_real_speedup(self):
        madlib = MADlibPostgresModel()
        dana = DAnAModel()
        speedups = {}
        for workload in real_workloads():
            epochs = epochs_for(workload)
            speedups[workload.name] = (
                madlib.estimate(workload, epochs).total / dana.estimate(workload, epochs).total
            )
        assert min(speedups, key=speedups.get) == "Blog Feedback"

    def test_cold_cache_reduces_speedup(self):
        madlib = MADlibPostgresModel()
        dana = DAnAModel()
        workload = get_workload("Remote Sensing LR")
        epochs = epochs_for(workload)
        warm = madlib.estimate(workload, epochs, True).total / dana.estimate(workload, epochs, True).total
        cold = madlib.estimate(workload, epochs, False).total / dana.estimate(workload, epochs, False).total
        assert cold < warm

    def test_striders_amplify_speedup(self):
        dana = DAnAModel()
        no_strider = dana.without_striders()
        workload = get_workload("Remote Sensing LR")
        epochs = epochs_for(workload)
        assert no_strider.estimate(workload, epochs).total > dana.estimate(workload, epochs).total

    def test_bandwidth_sensitivity_direction(self):
        dana = DAnAModel()
        workload = get_workload("S/N Logistic")        # bandwidth-bound
        epochs = epochs_for(workload)
        slower = dana.with_bandwidth_scale(0.25).estimate(workload, epochs).total
        faster = dana.with_bandwidth_scale(4.0).estimate(workload, epochs).total
        baseline = dana.estimate(workload, epochs).total
        assert slower > baseline > faster

    def test_lrmf_insensitive_to_bandwidth(self):
        dana = DAnAModel()
        workload = get_workload("S/N LRMF")            # compute-bound
        epochs = epochs_for(workload)
        slow = dana.with_bandwidth_scale(0.25).estimate(workload, epochs).total
        base = dana.estimate(workload, epochs).total
        assert slow / base < 1.3

    def test_more_threads_help_narrow_models(self):
        workload = get_workload("Remote Sensing LR")
        single = DAnAModel(merge_coefficient=1, max_threads=1).epoch_cost(workload)
        many = DAnAModel(merge_coefficient=64).epoch_cost(workload)
        assert many.compute_seconds < single.compute_seconds

    def test_tabla_slower_than_dana(self):
        tabla = TABLAModel()
        dana = DAnAModel()
        speedups = []
        for name in ("Remote Sensing LR", "WLAN", "Remote Sensing SVM", "Patient"):
            workload = get_workload(name)
            epochs = epochs_for(workload)
            speedups.append(
                tabla.estimate(workload, epochs).total / dana.estimate(workload, epochs).total
            )
        assert geomean(speedups) > 1.5

    def test_greenplum_competitive_on_lrmf(self):
        madlib = MADlibPostgresModel()
        workload = get_workload("S/N LRMF")
        epochs = epochs_for(workload)
        base = madlib.estimate(workload, epochs).total
        dana_speedup = base / DAnAModel().estimate(workload, epochs).total
        gp_speedup = base / GreenplumModel(8).estimate(workload, epochs).total
        assert gp_speedup >= dana_speedup * 0.8    # paper: Greenplum wins LRMF

    def test_design_cache_reused(self):
        dana = DAnAModel()
        workload = get_workload("WLAN")
        first_design, first_graph = dana.design_for(workload)
        second_design, second_graph = dana.design_for(workload)
        assert first_design is second_design
        assert first_graph is second_graph
