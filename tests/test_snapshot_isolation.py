"""Snapshot-isolation differential tests for scans and runs over live tables.

Every execution path pins its page walk to the WAL LSN captured when the
run starts, so concurrent ``INSERT`` traffic must be invisible to it.
These tests prove that property differentially, against **frozen-copy
oracles**: a fresh database built from the same bulk-load base with the
live database's WAL replayed up to the run's snapshot LSN.  Because live
inserts and replay route the same records through the same apply path,
the oracle's heap is bit-identical to the snapshot the live run saw — so
models, predictions and every schedule-derived counter must match
**exactly**, across all four algorithms, segment counts {1, 2, 4} and
the lockstep / threads / processes execution strategies.

The compile-before-insert protocol matters: accelerator designs are
sized for the table's tuple count at compile time and cached per
(UDF, table), so both the live system and the oracle compile at the
bulk-load base count before any WAL records exist.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.algorithms import Hyperparameters, get_algorithm
from repro.core import DAnA
from repro.data.synthetic import generate_for_algorithm
from repro.rdbms import Database
from repro.rdbms.heapfile import decode_page_rows
from repro.reliability import FaultPlan, FaultSpec, RetryPolicy, inject_faults

ALGOS = ("linear", "logistic", "svm", "lrmf")
LRMF_TOPOLOGY = (24, 18, 4)
PAGE_SIZE = 2048
BASE_TUPLES = 640
EPOCHS = 3
TABLE = "train"


def _n_features(key: str) -> int:
    return 4 if key == "lrmf" else 6


def _spec(key: str):
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=8, epochs=EPOCHS)
    topology = LRMF_TOPOLOGY if key == "lrmf" else ()
    return get_algorithm(key).build_spec(_n_features(key), hyper, topology)


def _data(key: str, n_tuples: int, seed: int) -> np.ndarray:
    return generate_for_algorithm(
        key, n_tuples, _n_features(key), LRMF_TOPOLOGY, seed=seed
    )


def _insert_batches(key: str, seed: int, sizes=(35, 7, 90, 18)) -> list[np.ndarray]:
    extra = _data(key, sum(sizes), seed)
    batches, start = [], 0
    for size in sizes:
        batches.append(extra[start : start + size])
        start += size
    return batches


def _system(key: str, seed: int = 11):
    """A DAnA system whose design is frozen at the bulk-load base count."""
    spec = _spec(key)
    db = Database(page_size=PAGE_SIZE)
    db.load_table(TABLE, spec.schema, _data(key, BASE_TUPLES, seed))
    system = DAnA(db)
    system.register_udf(key, spec, epochs=EPOCHS)
    system.compile_udf(key, TABLE)
    return system, spec


def _oracle_at(key: str, wal, snapshot_lsn: int, seed: int = 11):
    """Frozen-copy oracle: same base, same design, WAL replayed to the LSN."""
    system, spec = _system(key, seed)
    wal.replay(system.database, up_to_lsn=snapshot_lsn)
    return system, spec


def _models(spec, seed: int = 5):
    rng = np.random.default_rng(seed)
    return {
        name: rng.normal(size=np.shape(value))
        for name, value in spec.initial_models.items()
    }


def _assert_score_identical(live, oracle):
    np.testing.assert_array_equal(live.predictions, oracle.predictions)
    assert live.tuples_scored == oracle.tuples_scored
    assert live.inference_stats == oracle.inference_stats
    assert live.critical_path_cycles == oracle.critical_path_cycles
    assert [(s.segment_id, s.pages, s.tuples_scored) for s in live.segments] == [
        (s.segment_id, s.pages, s.tuples_scored) for s in oracle.segments
    ]


def _assert_train_identical(live, oracle):
    assert set(live.models) == set(oracle.models)
    for name in live.models:
        np.testing.assert_array_equal(live.models[name], oracle.models[name])
    assert live.tuples_extracted == oracle.tuples_extracted
    assert live.engine_stats == oracle.engine_stats
    assert live.access_stats == oracle.access_stats


# ---------------------------------------------------------------------- #
# storage-level snapshot property
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_scan_sees_exactly_the_pre_lsn_rows(seed):
    """Random insert/snapshot interleavings: every snapshot stays frozen.

    A snapshot captured at LSN ``s`` is the table's *live* contents at
    capture time; after any number of later inserts, an as-of-``s`` scan
    must still return exactly those rows — no more, no fewer, bit-equal.
    """
    rng = np.random.default_rng(seed)
    spec = _spec("linear")
    db = Database(page_size=1024)
    db.load_table(TABLE, spec.schema, _data("linear", 80, seed))
    heap = db.table(TABLE)
    frozen = {db.wal.current_lsn: heap.read_all(db.buffer_pool)}
    for _step in range(30):
        if rng.random() < 0.6:
            batch = _data("linear", int(rng.integers(1, 25)), int(rng.integers(1e6)))
            db.insert_rows(TABLE, batch)
        else:
            frozen[db.wal.current_lsn] = heap.read_all(db.buffer_pool)
        # Every snapshot captured so far must still read back unchanged.
        s = list(frozen)[int(rng.integers(len(frozen)))]
        np.testing.assert_array_equal(
            heap.read_all(db.buffer_pool, as_of_lsn=s), frozen[s]
        )
    for s, rows in frozen.items():
        got = heap.read_all(db.buffer_pool, as_of_lsn=s)
        np.testing.assert_array_equal(got, rows)
        assert len(got) == heap.tuple_count_as_of(s)


def test_midscan_inserts_do_not_perturb_a_snapshot_scan():
    """Inserts landing *between page pulls* of an as-of scan are invisible.

    The tail page the scan has not reached yet is overwritten by the
    insert; the scan must be served its pre-image from the copy-on-write
    version store and decode exactly the pre-insert rows.
    """
    spec = _spec("linear")
    db = Database(page_size=1024)
    db.load_table(TABLE, spec.schema, _data("linear", 80, 3))
    heap = db.table(TABLE)
    snapshot = db.wal.current_lsn
    expected = heap.read_all(db.buffer_pool)
    scan = heap.scan_pages(db.buffer_pool, as_of_lsn=snapshot)
    first = next(scan)
    for batch in _insert_batches("linear", 9):
        db.insert_rows(TABLE, batch)
    images = [first] + list(scan)
    assert len(images) == heap.page_count_as_of(snapshot) < heap.page_count
    rows = np.vstack(
        [decode_page_rows(image, heap.layout, heap.schema) for _no, image in images]
    )
    np.testing.assert_array_equal(rows, expected)


# ---------------------------------------------------------------------- #
# score_table vs the frozen-copy oracle
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("key", ALGOS)
@pytest.mark.parametrize("segments", [1, 2, 4])
def test_score_after_growth_matches_frozen_copy_oracle(key, segments):
    """Threaded scan-and-score over a grown table == oracle at its LSN."""
    system, spec = _system(key)
    db = system.database
    models = _models(spec)
    snapshots = []
    for batch in _insert_batches(key, 21):
        result = system.score_table(
            key, TABLE, models=models, segments=segments, execution="threads"
        )
        snapshots.append(result)
        db.insert_rows(TABLE, batch)
    final = system.score_table(
        key, TABLE, models=models, segments=segments, execution="threads"
    )
    snapshots.append(final)
    lsns = [r.snapshot_lsn for r in snapshots]
    assert lsns == sorted(set(lsns)), "each round pinned a fresh, later LSN"
    for result in snapshots:
        oracle_sys, _ = _oracle_at(key, db.wal, result.snapshot_lsn)
        oracle = oracle_sys.score_table(
            key, TABLE, models=models, segments=segments, execution="threads"
        )
        _assert_score_identical(result, oracle)
        assert result.tuples_scored == db.table(TABLE).tuple_count_as_of(
            result.snapshot_lsn
        )


@pytest.mark.parametrize("segments", [1, 2, 4])
def test_score_processes_after_growth_matches_frozen_copy_oracle(segments):
    """Process-parallel scoring over shared memory is pinned the same way."""
    key = "linear"
    system, spec = _system(key)
    db = system.database
    models = _models(spec)
    for batch in _insert_batches(key, 33):
        db.insert_rows(TABLE, batch)
    live = system.score_table(
        key, TABLE, models=models, segments=segments, execution="processes"
    )
    oracle_sys, _ = _oracle_at(key, db.wal, live.snapshot_lsn)
    oracle = oracle_sys.score_table(
        key, TABLE, models=models, segments=segments, execution="threads"
    )
    _assert_score_identical(live, oracle)


def test_concurrent_inserts_during_threaded_score():
    """A writer thread hammers inserts while score runs; each run is
    bit-identical to the oracle at the LSN it actually pinned."""
    key = "linear"
    system, spec = _system(key)
    db = system.database
    models = _models(spec)

    def writer():
        rng = np.random.default_rng(77)
        for i in range(40):
            db.insert_rows(TABLE, _data(key, int(rng.integers(1, 9)), 1000 + i))

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        results = [
            system.score_table(key, TABLE, models=models, segments=2)
            for _ in range(4)
        ]
    finally:
        thread.join()
    for result in results:
        oracle_sys, _ = _oracle_at(key, db.wal, result.snapshot_lsn)
        oracle = oracle_sys.score_table(key, TABLE, models=models, segments=2)
        _assert_score_identical(result, oracle)


@pytest.mark.chaos
def test_stream_score_producer_restart_rewalks_the_pinned_snapshot():
    """A BatchSource producer restart re-walks the *pinned* image list.

    The chunk cache a restart rebuilds must come from the scan's snapshot,
    not the live (grown) heap — the restarted run stays bit-identical to
    both a fault-free run and the frozen-copy oracle.
    """
    key = "linear"
    system, spec = _system(key)
    db = system.database
    models = _models(spec)
    for batch in _insert_batches(key, 13):
        db.insert_rows(TABLE, batch)
    plain = system.score_table(key, TABLE, models=models, segments=1, stream=True)
    plan = FaultPlan([FaultSpec(site="runtime.batch_source.producer", call=1)])
    with inject_faults(plan) as injector:
        retried = system.score_table(
            key,
            TABLE,
            models=models,
            segments=1,
            stream=True,
            retry=RetryPolicy(max_attempts=3),
        )
    assert [f.site for f in injector.fired] == ["runtime.batch_source.producer"]
    assert retried.retry.retries >= 1
    _assert_score_identical(retried, plain)
    oracle_sys, _ = _oracle_at(key, db.wal, retried.snapshot_lsn)
    oracle = oracle_sys.score_table(key, TABLE, models=models, segments=1)
    np.testing.assert_array_equal(retried.predictions, oracle.predictions)


# ---------------------------------------------------------------------- #
# training vs the frozen-copy oracle
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("key", ALGOS)
@pytest.mark.parametrize("segments", [1, 2, 4])
@pytest.mark.parametrize("execution", ["lockstep", "threads"])
def test_train_after_growth_matches_frozen_copy_oracle(key, segments, execution):
    """Sharded training over a grown table == training the oracle copy."""
    if key == "lrmf" and execution == "lockstep":
        pytest.skip("lrmf rejects the lockstep executor (ragged updates)")
    if segments == 1 and execution == "lockstep":
        pytest.skip("lockstep requires at least two segments")
    system, _spec_ = _system(key)
    db = system.database
    for batch in _insert_batches(key, 29):
        db.insert_rows(TABLE, batch)
    live = system.train(key, TABLE, segments=segments, execution=execution, seed=7)
    assert live.snapshot_lsn == db.wal.current_lsn
    oracle_sys, _ = _oracle_at(key, db.wal, live.snapshot_lsn)
    oracle = oracle_sys.train(
        key, TABLE, segments=segments, execution=execution, seed=7
    )
    _assert_train_identical(live, oracle)


def test_train_single_engine_after_growth_matches_oracle():
    """The unsharded (segments=None) path pins its scan identically."""
    key = "logistic"
    system, _ = _system(key)
    db = system.database
    for batch in _insert_batches(key, 41):
        db.insert_rows(TABLE, batch)
    live = system.train(key, TABLE)
    oracle_sys, _ = _oracle_at(key, db.wal, live.snapshot_lsn)
    oracle = oracle_sys.train(key, TABLE)
    _assert_train_identical(live, oracle)


def test_train_processes_after_growth_matches_oracle():
    """Process-parallel training rebuilds the compile-time design in the
    children (from the binary's recorded tuple count), so a grown catalog
    cannot drift the design — models and counters match the oracle."""
    key = "linear"
    system, _ = _system(key)
    db = system.database
    for batch in _insert_batches(key, 55):
        db.insert_rows(TABLE, batch)
    live = system.train(key, TABLE, segments=2, execution="processes", seed=3)
    oracle_sys, _ = _oracle_at(key, db.wal, live.snapshot_lsn)
    oracle = oracle_sys.train(key, TABLE, segments=2, execution="threads", seed=3)
    _assert_train_identical(live, oracle)
