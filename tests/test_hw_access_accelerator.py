"""Tests for the access engine, payload decoder, FPGA spec and accelerator."""

import numpy as np
import pytest

from repro.algorithms import Hyperparameters, LinearRegression
from repro.compiler import ExecutionBinary, HardwareGenerator, Scheduler
from repro.exceptions import ConfigurationError, HardwareError
from repro.hw import (
    ARRIA_10,
    AccessEngine,
    AccessEngineConfig,
    DAnAAccelerator,
    DEFAULT_FPGA,
    PayloadDecoder,
    ULTRASCALE_PLUS_VU9P,
)
from repro.compiler.strider_compiler import compile_strider
from repro.rdbms import Database
from repro.translator import translate


class TestFPGASpec:
    def test_vu9p_matches_table4(self):
        assert ULTRASCALE_PLUS_VU9P.luts == 1_182_000
        assert ULTRASCALE_PLUS_VU9P.flip_flops == 2_364_000
        assert ULTRASCALE_PLUS_VU9P.frequency_mhz == 150.0
        assert ULTRASCALE_PLUS_VU9P.bram_bytes == 44 * 1024 * 1024
        assert ULTRASCALE_PLUS_VU9P.dsp_slices == 6_840

    def test_compute_unit_cap(self):
        assert ULTRASCALE_PLUS_VU9P.max_analytic_units() == 1024

    def test_bandwidth_scaling(self):
        scaled = DEFAULT_FPGA.with_bandwidth_scale(2.0)
        assert scaled.axi_bytes_per_second == pytest.approx(2 * DEFAULT_FPGA.axi_bytes_per_second)
        with pytest.raises(ConfigurationError):
            DEFAULT_FPGA.with_bandwidth_scale(0)

    def test_arria10_is_smaller(self):
        assert ARRIA_10.bram_bytes < ULTRASCALE_PLUS_VU9P.bram_bytes
        assert ARRIA_10.max_analytic_units() < ULTRASCALE_PLUS_VU9P.max_analytic_units()

    def test_invalid_spec(self):
        from repro.hw.fpga import FPGASpec

        with pytest.raises(ConfigurationError):
            FPGASpec(name="x", luts=1, flip_flops=1, frequency_mhz=0, bram_bytes=1, dsp_slices=1)


class TestPayloadDecoder:
    def test_decode(self, linear_spec):
        decoder = PayloadDecoder(linear_spec.schema)
        payload = linear_spec.schema.encode_row((1.0, 2.0, 3.0, 4.0, 5.0))
        np.testing.assert_allclose(decoder.decode(payload), [1, 2, 3, 4, 5])

    def test_decode_wrong_length(self, linear_spec):
        decoder = PayloadDecoder(linear_spec.schema)
        with pytest.raises(HardwareError):
            decoder.decode(b"\x00" * 3)

    def test_decode_many_empty(self, linear_spec):
        decoder = PayloadDecoder(linear_spec.schema)
        assert decoder.decode_many([]).shape == (0, 5)


class TestAccessEngine:
    def _engine(self, db, spec, num_striders=4):
        layout = db.layout
        strider = compile_strider(layout, spec.schema)
        config = AccessEngineConfig(num_striders=num_striders, page_size=layout.page_size)
        return AccessEngine(config, strider.program, spec.schema, DEFAULT_FPGA)

    def test_extract_table_matches_loaded_data(self, small_database, linear_spec, small_regression_data):
        engine = self._engine(small_database, linear_spec)
        pages = [img for _no, img in small_database.table("train").scan_pages(small_database.buffer_pool)]
        extracted = engine.extract_table(pages)
        assert extracted.shape == small_regression_data.shape
        np.testing.assert_allclose(extracted, small_regression_data, rtol=1e-5, atol=1e-5)

    def test_stats_accumulate(self, small_database, linear_spec):
        engine = self._engine(small_database, linear_spec, num_striders=2)
        pages = [img for _no, img in small_database.table("train").scan_pages(small_database.buffer_pool)]
        engine.extract_table(pages)
        assert engine.stats.pages_processed == len(pages)
        assert engine.stats.tuples_extracted == 200
        assert engine.stats.axi_cycles > 0
        assert engine.stats.strider_cycles_total >= engine.stats.strider_cycles_critical

    def test_parallel_striders_reduce_critical_cycles(self, linear_spec, rng):
        # Build a multi-page table so that page-level parallelism is visible.
        data = rng.normal(size=(2000, 5))
        db = Database(page_size=8 * 1024)
        db.load_table("big", linear_spec.schema, data)
        pages = [img for _no, img in db.table("big").scan_pages(db.buffer_pool)]
        assert len(pages) > 4
        serial = self._engine(db, linear_spec, num_striders=1)
        parallel = self._engine(db, linear_spec, num_striders=len(pages))
        serial.extract_table(pages)
        parallel.extract_table(pages)
        assert parallel.stats.strider_cycles_critical < serial.stats.strider_cycles_critical

    def test_wrong_page_size_rejected(self, small_database, linear_spec):
        engine = self._engine(small_database, linear_spec)
        with pytest.raises(HardwareError):
            engine.extract_table([b"\x00" * 128])

    def test_estimate_cycles_per_page(self, small_database, linear_spec):
        engine = self._engine(small_database, linear_spec)
        estimate = engine.estimate_cycles_per_page(tuples_per_page=100)
        assert estimate["strider_cycles"] > 100
        assert estimate["axi_cycles"] > 0

    def test_invalid_config(self):
        with pytest.raises(HardwareError):
            AccessEngineConfig(num_striders=0, page_size=8192)


class TestDAnAAccelerator:
    @pytest.fixture
    def accelerator(self, small_database, linear_spec):
        graph = translate(linear_spec.algo)
        generator = HardwareGenerator(
            graph,
            small_database.layout,
            linear_spec.schema,
            DEFAULT_FPGA,
            merge_coefficient=linear_spec.algo.merge_coefficient,
            n_tuples=200,
        )
        design = generator.generate()
        schedule = Scheduler(graph, design.acs_per_thread).schedule()
        binary = ExecutionBinary.build(
            "linearR", "linear", design, generator.strider_compilation, schedule, graph
        )
        return DAnAAccelerator(binary, linear_spec.schema, DEFAULT_FPGA)

    def test_binary_describe(self, accelerator):
        description = accelerator.binary.describe()
        assert description["udf"] == "linearR"
        assert description["strider_instructions"] > 0
        assert description["engine_instructions"] > 0
        assert description["operation_map_entries"] > 0

    def test_train_from_pages_learns(self, accelerator, small_database, linear_spec, small_regression_data):
        pages = [img for _no, img in small_database.table("train").scan_pages(small_database.buffer_pool)]
        run = accelerator.train_from_pages(
            pages, linear_spec.initial_models, linear_spec.bind_tuple, epochs=40
        )
        loss = LinearRegression().loss(small_regression_data, run.models)
        assert loss < 0.05
        assert run.tuples_extracted == 200
        assert run.access_stats.pages_processed == len(pages)
        assert run.engine_stats.total_cycles > 0

    def test_with_and_without_striders_same_result(self, accelerator, small_database, linear_spec):
        pages = [img for _no, img in small_database.table("train").scan_pages(small_database.buffer_pool)]
        rows = small_database.table("train").read_all(small_database.buffer_pool)
        with_striders = accelerator.train_from_pages(
            pages, linear_spec.initial_models, linear_spec.bind_tuple, epochs=10
        )
        from_rows = accelerator.train_from_rows(
            rows, linear_spec.initial_models, linear_spec.bind_tuple, epochs=10
        )
        np.testing.assert_allclose(
            with_striders.models["mo"], from_rows.models["mo"], rtol=1e-5, atol=1e-6
        )
