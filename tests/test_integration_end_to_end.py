"""End-to-end integration tests across the whole stack.

These tests exercise the complete pipeline the paper describes: DSL UDF →
translator → hardware generator → compiler → catalog → SQL query → Striders
walking binary buffer-pool pages → multi-threaded execution engine →
trained model, and compare every system's output on the same data.
"""

import numpy as np
import pytest

from repro.algorithms import (
    Hyperparameters,
    LogisticRegression,
    LowRankMatrixFactorization,
    SupportVectorMachine,
    get_algorithm,
)
from repro.baselines import GreenplumRunner, MADlibRunner
from repro.core import DAnA
from repro.data.synthetic import generate_classification, generate_ratings
from repro.rdbms import Database


class TestLogisticEndToEnd:
    @pytest.fixture(scope="class")
    def setup(self):
        data = generate_classification(600, 10, labels=(0.0, 1.0), separation=2.0, seed=21)
        hyper = Hyperparameters(learning_rate=0.4, merge_coefficient=16, epochs=25)
        spec = LogisticRegression().build_spec(10, hyper)
        db = Database(page_size=8 * 1024)
        db.load_table("training_data_table", spec.schema, data)
        db.warm_cache("training_data_table")
        system = DAnA(db)
        system.register_udf("logisticR", spec, epochs=25)
        return db, system, spec, data

    def test_sql_query_trains_accurate_model(self, setup):
        db, _system, _spec, data = setup
        result = db.execute("SELECT * FROM dana.logisticR('training_data_table')")
        models = {name: np.asarray(coeffs) for name, coeffs in result.rows}
        accuracy = LogisticRegression().accuracy(data, models)
        assert accuracy > 0.9

    def test_dana_matches_madlib_bit_for_bit(self, setup):
        db, system, spec, _data = setup
        dana_run = system.train("logisticR", "training_data_table", epochs=10)
        madlib = MADlibRunner(db, spec, epochs=10).run("training_data_table")
        np.testing.assert_allclose(dana_run.models["mo"], madlib.models["mo"], rtol=1e-6)

    def test_greenplum_close_but_not_identical(self, setup):
        db, system, spec, data = setup
        dana_run = system.train("logisticR", "training_data_table", epochs=10)
        greenplum = GreenplumRunner(db, spec, segments=4, epochs=10).run("training_data_table")
        algorithm = LogisticRegression()
        assert algorithm.accuracy(data, greenplum.models) > 0.85
        assert not np.allclose(dana_run.models["mo"], greenplum.models["mo"])

    def test_hardware_activity_reported(self, setup):
        db, system, _spec, data = setup
        run = system.train("logisticR", "training_data_table", epochs=2)
        assert run.tuples_extracted == len(data)
        # the accelerator instance is cached per UDF/table pair, so its access
        # stats accumulate across the runs of this test class
        page_count = db.table("training_data_table").page_count
        assert run.access_stats.pages_processed % page_count == 0
        assert run.access_stats.pages_processed >= page_count
        assert run.engine_stats.update_rule_cycles > 0
        assert run.engine_stats.merge_cycles > 0

    def test_catalog_reflects_generated_design(self, setup):
        db, system, _spec, _data = setup
        system.compile_udf("logisticR", "training_data_table")
        entry = db.catalog.accelerator("logisticR")
        assert entry.metadata["num_striders"] >= 1
        assert entry.metadata["engine_instructions"] > 0


class TestSVMEndToEnd:
    def test_svm_via_sql(self):
        data = generate_classification(500, 8, labels=(-1.0, 1.0), separation=2.5, seed=33)
        hyper = Hyperparameters(learning_rate=0.1, merge_coefficient=8, epochs=30, regularization=1e-3)
        spec = SupportVectorMachine().build_spec(8, hyper)
        db = Database(page_size=8 * 1024)
        db.load_table("svm_data", spec.schema, data)
        system = DAnA(db)
        system.register_udf("svmR", spec, epochs=30)
        result = db.execute("SELECT * FROM dana.svmR('svm_data')")
        models = {name: np.asarray(coeffs) for name, coeffs in result.rows}
        assert SupportVectorMachine().accuracy(data, models) > 0.88


class TestLRMFEndToEnd:
    def test_lrmf_via_accelerator(self):
        data = generate_ratings(24, 18, rank=4, density=0.5, noise=0.01, seed=44)
        hyper = Hyperparameters(learning_rate=0.08, rank=4, epochs=25, regularization=1e-4)
        algorithm = LowRankMatrixFactorization()
        spec = algorithm.build_spec(4, hyper, model_topology=(24, 18, 4))
        db = Database(page_size=8 * 1024)
        db.load_table("ratings", spec.schema, data)
        system = DAnA(db)
        system.register_udf("lrmf", spec, epochs=25)
        run = system.train("lrmf", "ratings", epochs=25)
        final_loss = algorithm.loss(data, run.models)
        initial_loss = algorithm.loss(data, spec.initial_models)
        assert final_loss < initial_loss * 0.5
        # both factor matrices were updated
        assert not np.allclose(run.models["L"], spec.initial_models["L"])
        assert not np.allclose(run.models["R"], spec.initial_models["R"])


class TestPageSizeSensitivity:
    @pytest.mark.parametrize("page_size", [8 * 1024, 16 * 1024, 32 * 1024])
    def test_all_page_sizes_produce_identical_models(self, page_size):
        data = generate_classification(300, 6, seed=55)
        hyper = Hyperparameters(learning_rate=0.3, merge_coefficient=8, epochs=10)
        spec = LogisticRegression().build_spec(6, hyper)
        db = Database(page_size=page_size)
        db.load_table("t", spec.schema, data)
        system = DAnA(db)
        system.register_udf("lr", spec, epochs=10)
        run = system.train("lr", "t", epochs=10)
        reference = get_algorithm("logistic").reference_fit(
            db.table("t").read_all(db.buffer_pool), hyper, epochs=10
        )
        np.testing.assert_allclose(run.models["mo"], reference["mo"], rtol=1e-6)
