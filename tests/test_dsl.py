"""Unit tests for the Python-embedded DSL (variables, expressions, algo)."""

import pytest

from repro import dana
from repro.dsl import (
    BinaryExpression,
    ConstantExpression,
    GroupExpression,
    MergeExpression,
    NonlinearExpression,
    Operator,
    VariableKind,
)
from repro.exceptions import AlgoError, DeclarationError, OperationError


class TestDeclarations:
    def test_model_declaration(self):
        mo = dana.model([5, 2], name="mo")
        assert mo.kind is VariableKind.MODEL
        assert mo.dims == (5, 2)
        assert mo.element_count == 10

    def test_scalar_output(self):
        out = dana.output()
        assert out.is_scalar
        assert out.dims == ()

    def test_meta_requires_value(self):
        lr = dana.meta(0.3)
        assert lr.kind is VariableKind.META
        assert lr.value == pytest.approx(0.3)
        with pytest.raises(DeclarationError):
            dana.meta("not a number")

    def test_non_meta_cannot_carry_value(self):
        from repro.dsl.variables import DanaVariable

        with pytest.raises(DeclarationError):
            DanaVariable(VariableKind.INPUT, [3], value=1.0)

    def test_bad_dims(self):
        with pytest.raises(DeclarationError):
            dana.model([0])
        with pytest.raises(DeclarationError):
            dana.model([-2, 3])

    def test_int_dims_allowed(self):
        assert dana.input(7).dims == (7,)

    def test_inter_declaration(self):
        tmp = dana.inter([4])
        assert tmp.kind is VariableKind.INTER


class TestExpressions:
    def test_operator_overloads_build_tree(self):
        a, b = dana.input([3], name="a"), dana.input([3], name="b")
        expr = a * b + 2.0
        assert isinstance(expr, BinaryExpression)
        assert expr.op is Operator.ADD
        assert isinstance(expr.left, BinaryExpression)
        assert expr.left.op is Operator.MUL
        assert isinstance(expr.right, ConstantExpression)

    def test_reflected_operators(self):
        a = dana.input(name="a")
        expr = 1.0 - a
        assert isinstance(expr, BinaryExpression)
        assert expr.op is Operator.SUB
        assert isinstance(expr.left, ConstantExpression)

    def test_division_and_comparisons(self):
        a, b = dana.input(name="a"), dana.input(name="b")
        assert (a / b).op is Operator.DIV
        assert (a > b).op is Operator.GT
        assert (a < b).op is Operator.LT

    def test_nonlinear_constructors(self):
        a = dana.input([4])
        assert isinstance(dana.sigmoid(a), NonlinearExpression)
        assert dana.gaussian(a).op is Operator.GAUSSIAN
        assert dana.sqrt(a).op is Operator.SQRT

    def test_group_constructors(self):
        a, b = dana.model([4]), dana.input([4])
        s = dana.sigma(a * b, 1)
        assert isinstance(s, GroupExpression)
        assert s.axis == 1
        assert dana.pi(a, 1).op is Operator.PI
        assert dana.norm(a, 1).op is Operator.NORM

    def test_group_axis_must_be_positive(self):
        a = dana.model([4])
        with pytest.raises(OperationError):
            dana.sigma(a, 0)

    def test_invalid_operand_type(self):
        a = dana.input([4])
        with pytest.raises(OperationError):
            a + "nope"

    def test_walk_deduplicates_shared_subexpressions(self):
        a = dana.input([4], name="a")
        shared = a * 2.0
        expr = shared + shared
        nodes = list(expr.walk())
        assert nodes.count(shared) == 1

    def test_gather(self):
        left = dana.model([8, 3])
        idx = dana.input(name="row")
        g = dana.gather(left, idx)
        assert g.children == (left, idx)


class TestAlgoComponent:
    def test_merge_records_spec(self):
        mo, x, y = dana.model([4]), dana.input([4]), dana.output()
        algo = dana.algo(mo, x, y)
        merged = algo.merge(mo * x, 8, "+")
        assert isinstance(merged, MergeExpression)
        assert merged.spec.coefficient == 8
        assert merged.spec.operator is Operator.ADD
        assert algo.merge_coefficient == 8

    def test_merge_with_meta_coefficient(self):
        mo, x, y = dana.model([4]), dana.input([4]), dana.output()
        algo = dana.algo(mo, x, y)
        coeff = dana.meta(16)
        merged = algo.merge(mo, coeff, "+")
        assert merged.spec.coefficient == 16

    def test_merge_bad_operator(self):
        mo, x, y = dana.model([4]), dana.input([4]), dana.output()
        algo = dana.algo(mo, x, y)
        with pytest.raises(OperationError):
            algo.merge(mo, 8, "sigmoid")

    def test_set_epochs_and_convergence(self):
        mo, x, y = dana.model([4]), dana.input([4]), dana.output()
        algo = dana.algo(mo, x, y)
        algo.setEpochs(25)
        assert algo.convergence.max_epochs == 25
        algo.setConvergence(dana.norm(mo, 1) < dana.meta(0.01))
        assert algo.convergence.condition is not None
        with pytest.raises(AlgoError):
            algo.setEpochs(0)

    def test_set_model_binds_expression(self):
        mo, x, y = dana.model([4]), dana.input([4]), dana.output()
        algo = dana.algo(mo, x, y)
        updated = mo - 0.1 * (mo * x)
        algo.setModel(updated)
        assert algo.updated_model is updated

    def test_set_model_multiple_targets(self):
        left = dana.model([4, 2], name="L")
        right = dana.model([3, 2], name="R")
        x, y = dana.input(name="i"), dana.output(name="v")
        algo = dana.algo(left, x, y, extra_models=(right,))
        algo.setModel(dana.gather(left, x), var=left)
        algo.setModel(dana.gather(right, x), var=right)
        assert len(algo.model_updates) == 2

    def test_validation_requires_model_and_terminator(self):
        mo, x, y = dana.model([4]), dana.input([4]), dana.output()
        algo = dana.algo(mo, x, y)
        with pytest.raises(AlgoError):
            algo.validate()
        algo.setModel(mo)
        with pytest.raises(AlgoError):
            algo.validate()
        algo.setEpochs(1)
        algo.validate()

    def test_algo_kind_checks(self):
        x, y = dana.input([4]), dana.output()
        with pytest.raises(AlgoError):
            dana.algo(x, x, y)  # first argument must be a model
