"""Tests for synthetic data generators and the Table 3 workload registry."""

import numpy as np
import pytest

from repro.data import (
    WORKLOADS,
    get_workload,
    real_workloads,
    synthetic_extensive_workloads,
    synthetic_nominal_workloads,
    workload_names,
)
from repro.data.synthetic import (
    generate_classification,
    generate_for_algorithm,
    generate_ratings,
    generate_regression,
)
from repro.exceptions import ConfigurationError


class TestGenerators:
    def test_regression_shape_and_signal(self):
        data = generate_regression(300, 8, noise=0.0, seed=1)
        assert data.shape == (300, 9)
        X, y = data[:, :8], data[:, 8]
        w, *_ = np.linalg.lstsq(X, y, rcond=None)
        np.testing.assert_allclose(X @ w, y, atol=1e-8)

    def test_classification_label_encodings(self):
        logistic = generate_classification(100, 4, labels=(0.0, 1.0), seed=2)
        svm = generate_classification(100, 4, labels=(-1.0, 1.0), seed=2)
        assert set(np.unique(logistic[:, 4])) <= {0.0, 1.0}
        assert set(np.unique(svm[:, 4])) <= {-1.0, 1.0}

    def test_classification_is_learnable(self):
        data = generate_classification(500, 6, separation=3.0, seed=3)
        X, y = data[:, :6], data[:, 6]
        # a least-squares separator should already classify most points
        w, *_ = np.linalg.lstsq(X, 2 * y - 1, rcond=None)
        accuracy = np.mean((X @ w > 0) == (y > 0.5))
        assert accuracy > 0.9

    def test_ratings_ranges(self):
        data = generate_ratings(20, 30, rank=4, density=0.5, seed=4)
        assert data[:, 0].max() < 20
        assert data[:, 1].max() < 30
        assert len(data) == int(20 * 30 * 0.5)

    def test_generate_for_algorithm_dispatch(self):
        assert generate_for_algorithm("linear", 50, 3).shape == (50, 4)
        assert generate_for_algorithm("logistic", 50, 3).shape == (50, 4)
        assert generate_for_algorithm("svm", 50, 3).shape == (50, 4)
        lrmf = generate_for_algorithm("lrmf", 100, 4, model_topology=(10, 12, 4))
        assert lrmf.shape[1] == 3
        with pytest.raises(ValueError):
            generate_for_algorithm("kmeans", 10, 2)

    def test_determinism(self):
        a = generate_regression(50, 4, seed=9)
        b = generate_regression(50, 4, seed=9)
        np.testing.assert_array_equal(a, b)


class TestWorkloadRegistry:
    def test_fourteen_workloads(self):
        assert len(WORKLOADS) == 14
        assert len(real_workloads()) == 6
        assert len(synthetic_nominal_workloads()) == 4
        assert len(synthetic_extensive_workloads()) == 4

    def test_lookup(self):
        workload = get_workload("remote sensing lr")
        assert workload.algorithm_key == "logistic"
        assert workload.model_topology == (54,)
        with pytest.raises(ConfigurationError):
            get_workload("unknown dataset")

    def test_table3_values(self):
        netflix = get_workload("Netflix")
        assert netflix.paper_tuples == 6_040
        assert netflix.paper_pages == 3_068
        assert netflix.model_topology == (6_040, 3_952, 10)
        se_linear = get_workload("S/E Linear")
        assert se_linear.paper_tuples == 1_000_000
        assert se_linear.paper_size_mb == 32_124

    def test_lrmf_ratings_per_tuple_consistent_with_size(self):
        netflix = get_workload("Netflix")
        # one stored tuple is one matrix row: roughly n_cols ratings
        assert netflix.ratings_per_tuple == pytest.approx(netflix.model_topology[1], rel=0.15)

    def test_tuple_bytes_positive(self):
        for workload in WORKLOADS:
            assert workload.tuple_bytes > 0
            assert workload.tuples_per_page >= 1.0 or workload.algorithm_key == "lrmf"

    def test_model_elements(self):
        assert get_workload("WLAN").model_elements == 520
        assert get_workload("Netflix").model_elements == (6_040 + 3_952) * 10

    def test_functional_generation_matches_schema(self):
        for workload in WORKLOADS:
            data = workload.generate(seed=1)
            assert len(data) > 0
            if workload.algorithm_key == "lrmf":
                assert data.shape[1] == 3
            else:
                assert data.shape[1] == workload.func_features + 1

    def test_workload_names_by_category(self):
        assert "Netflix" in workload_names("real")
        assert "S/E SVM" in workload_names("se")
        assert len(workload_names()) == 14
