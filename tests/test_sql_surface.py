"""SQL prediction surface: parser, planner, executor, serving routing.

Covers the PR-5 contract:

* the recursive-descent parser produces the right plan nodes for every
  supported statement shape, and every parse error echoes the statement
  with a caret at the offending position;
* ``SELECT dana.predict(...)`` predictions are **bit-identical** to
  ``DAnA.score_table`` for all four algorithms (the SQL surface routes
  through the same batched inference tape and bulk Strider scan — no
  Python detour);
* ``CREATE MODEL`` / ``DROP MODEL`` / ``SHOW MODELS`` round through the
  registry and catalog;
* streaming scan-and-score (``stream=True``) is bit-identical — models,
  counters, storage order — to the materialized oracle;
* edge cases: unknown model version, empty tables, ``LIMIT 0``, malformed
  ``segments =>`` kwargs, WHERE on unknown columns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import Hyperparameters, get_algorithm
from repro.core import DAnA
from repro.data.synthetic import generate_for_algorithm
from repro.exceptions import QueryError
from repro.rdbms import (
    Comparison,
    CountScan,
    CreateModel,
    Database,
    DropModel,
    PredictScan,
    ScoreCall,
    SeqScan,
    ShowModels,
    UDFCall,
    parse,
)

N_FEATURES = 8
N_TUPLES = 600
LRMF_TOPOLOGY = (24, 18, 4)

ALL_ALGORITHMS = ("linear", "logistic", "svm", "lrmf")


def build_system(algorithm_key: str = "linear", n_tuples: int = N_TUPLES):
    """A DAnA instance with one registered UDF and a loaded table ``t``."""
    algorithm = get_algorithm(algorithm_key)
    if algorithm_key == "lrmf":
        hyper = Hyperparameters(learning_rate=0.05, epochs=2, rank=LRMF_TOPOLOGY[2])
        spec = algorithm.build_spec(0, hyper, model_topology=LRMF_TOPOLOGY)
        data = generate_for_algorithm(
            algorithm_key, n_tuples, LRMF_TOPOLOGY[2], seed=0,
            model_topology=LRMF_TOPOLOGY[:2],
        )
    else:
        hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=16, epochs=2)
        spec = algorithm.build_spec(N_FEATURES, hyper)
        data = generate_for_algorithm(algorithm_key, n_tuples, N_FEATURES, seed=0)
    database = Database()
    database.load_table("t", spec.schema, data)
    system = DAnA(database)
    system.register_udf(algorithm_key, spec, epochs=2)
    return system, spec, data


# ---------------------------------------------------------------------- #
# parser: plan nodes
# ---------------------------------------------------------------------- #
class TestParser:
    def test_predict_scan_full_form(self):
        plan = parse(
            "SELECT dana.predict('prices', version => 2) AS yhat "
            "FROM houses WHERE x0 > 0.5 AND x1 <= 3 LIMIT 10;"
        )
        assert plan == PredictScan(
            model_name="prices",
            table_name="houses",
            version=2,
            where=(
                Comparison("x0", ">", 0.5),
                Comparison("x1", "<=", 3.0),
            ),
            limit=10,
            alias="yhat",
        )

    def test_predict_scan_minimal(self):
        plan = parse("select dana.predict('m') from t")
        assert plan == PredictScan(model_name="m", table_name="t")

    def test_score_call_with_kwargs(self):
        plan = parse(
            "SELECT * FROM dana.score('m', 't', segments => 4, "
            "version => 1, batch_size => 128, stream => false) LIMIT 3"
        )
        assert plan == ScoreCall(
            model_name="m",
            table_name="t",
            version=1,
            segments=4,
            batch_size=128,
            stream=False,
            limit=3,
        )

    def test_create_model_with_options(self):
        plan = parse(
            "CREATE MODEL prices AS TRAIN linearR ON houses "
            "WITH (epochs => 4, segments => 2, sync => 'async_merge', "
            "shuffle => true)"
        )
        assert plan == CreateModel(
            model_name="prices",
            udf_name="linearR",
            table_name="houses",
            options=(
                ("epochs", 4),
                ("segments", 2),
                ("sync", "async_merge"),
                ("shuffle", True),
            ),
        )

    def test_drop_and_show(self):
        assert parse("DROP MODEL m") == DropModel(model_name="m")
        assert parse("DROP MODEL m VERSION 3;") == DropModel(
            model_name="m", version=3
        )
        assert parse("SHOW MODELS") == ShowModels()

    def test_legacy_shapes_still_parse(self):
        assert parse("SELECT * FROM train") == SeqScan(table_name="train")
        assert parse("SELECT x0, y FROM train;") == SeqScan(
            table_name="train", columns=("x0", "y")
        )
        assert parse("SELECT count(*) FROM train") == CountScan(table_name="train")
        plan = parse("SELECT * FROM dana.linearR('training_data_table');")
        assert plan == UDFCall(udf_name="linearR", table_name="training_data_table")

    def test_scan_gains_where_and_limit(self):
        plan = parse("SELECT * FROM t WHERE y = 1 LIMIT 5")
        assert plan == SeqScan(
            table_name="t", where=(Comparison("y", "=", 1.0),), limit=5
        )

    def test_model_and_train_are_valid_names(self):
        # Only structurally ambiguous words are reserved.
        plan = parse("SELECT * FROM model")
        assert plan == SeqScan(table_name="model")
        assert parse("CREATE MODEL train AS TRAIN version ON models") == CreateModel(
            model_name="train", udf_name="version", table_name="models"
        )


# ---------------------------------------------------------------------- #
# parser: caret diagnostics
# ---------------------------------------------------------------------- #
class TestParserErrors:
    @pytest.mark.parametrize(
        "sql, fragment",
        [
            ("DELETE FROM t", "unsupported statement"),
            ("SELECT dana.predict('m') FROM t LIMIT x", "integer after LIMIT"),
            ("SELECT * FROM dana.score('m', 't', segments = 2)", "'=>'"),
            ("SELECT * FROM dana.score('m', 't', segmnts => 2)", "unknown argument"),
            ("SELECT * FROM dana.score('m', 't', stream => 2)", "true or false"),
            ("SELECT * FROM dana.score('m')", "'<model>', '<table>'"),
            ("SELECT dana.predict(m) FROM t", "quoted model"),
            ("SELECT dana.predict('m') FROM t WHERE x0 * 1", "comparison operator"),
            ("SELECT * FROM t WHERE x0 = ", "number, quoted string"),
            ("CREATE MODEL m AS TRAIN", "UDF name after TRAIN"),
            ("CREATE MODEL m AS TRAIN u ON t WITH (epochs 2)", "'=>'"),
            ("SELECT * FROM t LIMIT 3 garbage", "trailing input"),
            ("SELECT dana.sigmoid('m') FROM t", "dana.predict"),
            ("SELECT * FROM dana.predict('m')", "select list"),
            ("SELECT x0 FROM dana.linearR('t')", "SELECT *"),
            ("SELECT ^ FROM t", "unexpected character"),
        ],
    )
    def test_errors_echo_statement_with_caret(self, sql, fragment):
        with pytest.raises(QueryError) as excinfo:
            parse(sql)
        message = str(excinfo.value)
        assert fragment in message
        # The statement is echoed and a caret marks the position.
        assert sql.splitlines()[0].strip()[:10] in message
        assert "^" in message
        assert excinfo.value.statement == sql
        assert isinstance(excinfo.value.position, int)

    def test_caret_points_at_offending_token(self):
        sql = "SELECT * FROM dana.score('m', 't', segments => 'four')"
        with pytest.raises(QueryError) as excinfo:
            parse(sql)
        assert excinfo.value.position == sql.index("'four'")

    def test_executor_errors_echo_statement(self):
        system, _spec, _data = build_system()
        with pytest.raises(QueryError, match="in statement"):
            system.database.execute("SELECT * FROM missing_table")


# ---------------------------------------------------------------------- #
# executor: predictions through SQL
# ---------------------------------------------------------------------- #
class TestSQLPredict:
    @pytest.mark.parametrize("key", ALL_ALGORITHMS)
    def test_sql_predict_bit_identical_to_score_table(self, key):
        system, _spec, _data = build_system(key)
        models = system.train(key, "t", epochs=2).models
        system.save_model("m", key, models)
        direct = system.score_table(key, "t", model_name="m")
        result = system.database.execute("SELECT dana.predict('m') FROM t")
        assert result.columns == ("prediction",)
        assert len(result) == direct.tuples_scored
        sql_predictions = np.array([row[0] for row in result.rows])
        np.testing.assert_array_equal(sql_predictions, direct.predictions)
        # The payload is the underlying ScoreResult: same tape counters.
        assert result.payload.inference_stats == direct.inference_stats
        assert result.stats["forward_cycles"] > 0

    def test_sql_score_call_matches_predict(self):
        system, _spec, _data = build_system()
        models = system.train("linear", "t", epochs=2).models
        system.save_model("m", "linear", models)
        via_predict = system.database.execute("SELECT dana.predict('m') FROM t")
        via_score = system.database.execute(
            "SELECT * FROM dana.score('m', 't', segments => 2)"
        )
        np.testing.assert_array_equal(
            [r[0] for r in via_predict.rows], [r[0] for r in via_score.rows]
        )
        assert via_score.stats["segments"] == 2

    def test_where_and_limit_select_storage_order_rows(self):
        system, _spec, data = build_system()
        models = system.train("linear", "t", epochs=2).models
        system.save_model("m", "linear", models)
        direct = system.score_table("linear", "t", model_name="m")
        scanned = np.array(
            list(system.database.table("t").scan_tuples(system.database.buffer_pool))
        )
        mask = scanned[:, 0] > 0
        result = system.database.execute(
            "SELECT dana.predict('m') FROM t WHERE x0 > 0 LIMIT 7"
        )
        np.testing.assert_array_equal(
            np.array([row[0] for row in result.rows]),
            direct.predictions[mask][:7],
        )

    def test_alias_names_the_output_column(self):
        system, _spec, _data = build_system()
        system.save_model("m", "linear", {"mo": np.zeros(N_FEATURES)})
        result = system.database.execute(
            "SELECT dana.predict('m') AS yhat FROM t LIMIT 1"
        )
        assert result.columns == ("yhat",)

    def test_predict_specific_version(self):
        system, _spec, data = build_system()
        system.save_model("m", "linear", {"mo": np.zeros(N_FEATURES)})
        system.save_model("m", "linear", {"mo": np.ones(N_FEATURES)})
        v1 = system.database.execute(
            "SELECT dana.predict('m', version => 1) FROM t LIMIT 3"
        )
        latest = system.database.execute("SELECT dana.predict('m') FROM t LIMIT 3")
        assert all(row[0] == 0.0 for row in v1.rows)
        # float4 on-page storage: compare against the original rows loosely.
        expected = np.sum(data[:3, :N_FEATURES], axis=1)
        np.testing.assert_allclose(
            [row[0] for row in latest.rows], expected, rtol=1e-6, atol=1e-5
        )
        assert v1.stats["version"] == 1 and latest.stats["version"] == 2


# ---------------------------------------------------------------------- #
# executor: model management statements
# ---------------------------------------------------------------------- #
class TestModelManagement:
    def test_create_model_trains_and_persists(self):
        system, _spec, _data = build_system()
        result = system.database.execute(
            "CREATE MODEL prices AS TRAIN linear ON t "
            "WITH (epochs => 2, segments => 2)"
        )
        assert result.columns == ("model", "version", "algorithm", "epochs_run")
        ((name, version, algorithm, epochs_run),) = result.rows
        assert (name, version, algorithm, epochs_run) == ("prices", 1, "linear", 2)
        # The persisted model is the same the Python API would have trained.
        expected = system.train("linear", "t", epochs=2, segments=2).models
        loaded = system.load_model("prices")
        for key, value in expected.items():
            np.testing.assert_array_equal(loaded[key], np.asarray(value, np.float64))
        assert result.payload.metadata["sql_options"] == {
            "epochs": 2, "segments": 2,
        }

    def test_create_model_versions_increment(self):
        system, _spec, _data = build_system()
        sql = "CREATE MODEL m AS TRAIN linear ON t WITH (epochs => 1)"
        assert system.database.execute(sql).rows[0][1] == 1
        assert system.database.execute(sql).rows[0][1] == 2
        assert system.registry.versions("m") == [1, 2]

    def test_show_models_lists_catalog_entries(self):
        system, _spec, _data = build_system()
        assert system.database.execute("SHOW MODELS").rows == []
        system.save_model("m", "linear", {"mo": np.zeros(N_FEATURES)})
        ((name, version, algorithm, table_name, params),) = (
            system.database.execute("SHOW MODELS").rows
        )
        assert (name, version, algorithm) == ("m", 1, "linear")
        assert table_name == "dana_model__m__v1"
        assert params == f"mo({N_FEATURES})"

    def test_drop_model_removes_tables_and_catalog_entries(self):
        system, _spec, _data = build_system()
        system.save_model("m", "linear", {"mo": np.zeros(N_FEATURES)})
        system.save_model("m", "linear", {"mo": np.ones(N_FEATURES)})
        result = system.database.execute("DROP MODEL m VERSION 1")
        assert result.rows == [("m", 1)]
        assert not system.database.catalog.has_table("dana_model__m__v1")
        assert system.database.catalog.has_table("dana_model__m__v2")
        assert system.registry.versions("m") == [2]
        result = system.database.execute("DROP MODEL m")
        assert result.rows == [("m", 2)]
        assert system.registry.names() == []

    def test_create_model_rejects_unknown_options_and_udfs(self):
        system, _spec, _data = build_system()
        with pytest.raises(QueryError, match="unknown CREATE MODEL option"):
            system.database.execute(
                "CREATE MODEL m AS TRAIN linear ON t WITH (epoks => 2)"
            )
        with pytest.raises(QueryError, match="not registered"):
            system.database.execute("CREATE MODEL m AS TRAIN ghost ON t")
        with pytest.raises(QueryError, match="does not exist"):
            system.database.execute("CREATE MODEL m AS TRAIN linear ON ghost")
        with pytest.raises(QueryError, match="options are invalid"):
            system.database.execute(
                "CREATE MODEL m AS TRAIN linear ON t WITH (sync => 'psycho')"
            )
        with pytest.raises(QueryError, match="integer"):
            system.database.execute(
                "CREATE MODEL m AS TRAIN linear ON t WITH (epochs => 2.5)"
            )


# ---------------------------------------------------------------------- #
# edge cases
# ---------------------------------------------------------------------- #
class TestEdgeCases:
    def test_unknown_model_and_version_fail_cleanly(self):
        system, _spec, _data = build_system()
        with pytest.raises(QueryError, match="no saved model"):
            system.database.execute("SELECT dana.predict('ghost') FROM t")
        system.save_model("m", "linear", {"mo": np.zeros(N_FEATURES)})
        with pytest.raises(QueryError, match="no version 9"):
            system.database.execute(
                "SELECT dana.predict('m', version => 9) FROM t"
            )
        with pytest.raises(QueryError, match="no version 9"):
            system.database.execute(
                "SELECT * FROM dana.score('m', 't', version => 9)"
            )

    def test_predict_against_empty_table(self):
        system, spec, _data = build_system()
        system.database.load_table(
            "empty", spec.schema, np.empty((0, N_FEATURES + 1))
        )
        system.save_model("m", "linear", {"mo": np.zeros(N_FEATURES)})
        result = system.database.execute("SELECT dana.predict('m') FROM empty")
        assert result.rows == []
        assert result.stats["tuples_scored"] == 0
        streamed = system.score_table(
            "linear", "empty", model_name="m", stream=True
        )
        assert streamed.predictions.shape[0] == 0

    def test_limit_zero_returns_no_rows(self):
        system, _spec, _data = build_system()
        system.save_model("m", "linear", {"mo": np.zeros(N_FEATURES)})
        result = system.database.execute(
            "SELECT dana.predict('m') FROM t LIMIT 0"
        )
        assert result.rows == []
        assert len(system.database.execute("SELECT * FROM t LIMIT 0")) == 0

    def test_malformed_segments_kwarg(self):
        system, _spec, _data = build_system()
        system.save_model("m", "linear", {"mo": np.zeros(N_FEATURES)})
        with pytest.raises(QueryError, match="integer value for 'segments'"):
            system.database.execute(
                "SELECT * FROM dana.score('m', 't', segments => 'two')"
            )
        with pytest.raises(QueryError, match="'=>'"):
            system.database.execute(
                "SELECT * FROM dana.score('m', 't', segments 2)"
            )
        # Structurally valid but semantically rejected by serving validation.
        with pytest.raises(Exception, match="segments"):
            system.database.execute(
                "SELECT * FROM dana.score('m', 't', segments => 0)"
            )

    def test_where_unknown_column(self):
        system, _spec, _data = build_system()
        system.save_model("m", "linear", {"mo": np.zeros(N_FEATURES)})
        with pytest.raises(QueryError, match="unknown column"):
            system.database.execute(
                "SELECT dana.predict('m') FROM t WHERE nope = 1"
            )

    def test_drop_missing_model_raises_query_error(self):
        system, _spec, _data = build_system()
        with pytest.raises(QueryError, match="no saved model"):
            system.database.execute("DROP MODEL ghost")
        system.save_model("m", "linear", {"mo": np.zeros(N_FEATURES)})
        with pytest.raises(QueryError, match="no version 9"):
            system.database.execute("DROP MODEL m VERSION 9")

    def test_where_type_mismatch_raises_query_error(self):
        system, _spec, _data = build_system()
        with pytest.raises(QueryError, match="not valid for a column"):
            system.database.execute("SELECT * FROM t WHERE x0 < 'abc'")

    def test_count_star_with_where(self):
        system, _spec, _data = build_system()
        total = system.database.execute("SELECT count(*) FROM t").rows[0][0]
        above = system.database.execute(
            "SELECT count(*) FROM t WHERE x0 > 0"
        ).rows[0][0]
        below = system.database.execute(
            "SELECT count(*) FROM t WHERE x0 <= 0"
        ).rows[0][0]
        assert total == N_TUPLES and above + below == total and 0 < above < total

    def test_predict_without_attached_system(self):
        database = Database()
        from repro.rdbms.types import Schema

        database.load_table("t", Schema.training_schema(2), np.zeros((4, 3)))
        with pytest.raises(QueryError, match="no DAnA system is attached"):
            database.execute("SELECT dana.predict('m') FROM t")

    def test_model_udf_must_be_registered(self):
        # A fresh DAnA system cannot serve a model whose UDF it never saw.
        system, _spec, _data = build_system()
        system.save_model("m", "linear", {"mo": np.zeros(N_FEATURES)})
        fresh = DAnA(system.database)  # re-attaches as serving runtime
        with pytest.raises(QueryError, match="not registered"):
            system.database.execute("SELECT dana.predict('m') FROM t")


# ---------------------------------------------------------------------- #
# streaming scan-and-score parity
# ---------------------------------------------------------------------- #
class TestStreamingScan:
    @pytest.mark.parametrize("key", ALL_ALGORITHMS)
    @pytest.mark.parametrize("segments", [1, 2])
    def test_streaming_bit_identical_to_materialized(self, key, segments):
        system, _spec, _data = build_system(key)
        models = system.train(key, "t", epochs=2).models
        streamed = system.score_table(
            key, "t", models=models, segments=segments, stream=True
        )
        materialized = system.score_table(
            key, "t", models=models, segments=segments, stream=False
        )
        np.testing.assert_array_equal(
            streamed.predictions, materialized.predictions
        )
        assert streamed.inference_stats == materialized.inference_stats
        for seg_s, seg_m in zip(streamed.segments, materialized.segments):
            assert seg_s.access_stats == seg_m.access_stats
            assert seg_s.inference_stats == seg_m.inference_stats
        assert streamed.stream and not materialized.stream

    def test_streaming_respects_batch_size_boundaries(self):
        system, _spec, _data = build_system()
        models = system.train("linear", "t", epochs=2).models
        for batch_size in (7, 64, 1024):
            streamed = system.score_table(
                "linear", "t", models=models, batch_size=batch_size, stream=True
            )
            materialized = system.score_table(
                "linear", "t", models=models, batch_size=batch_size, stream=False
            )
            np.testing.assert_array_equal(
                streamed.predictions, materialized.predictions
            )
            assert streamed.inference_stats == materialized.inference_stats

    def test_streaming_cost_model_charges_pipelined_path(self):
        from repro.perf import ScoreRunCost, measured_serving_sweep

        system, _spec, _data = build_system()
        models = system.train("linear", "t", epochs=2).models
        streamed = system.score_table("linear", "t", models=models, stream=True)
        materialized = system.score_table(
            "linear", "t", models=models, stream=False
        )
        cost_s = ScoreRunCost.from_result(streamed)
        cost_m = ScoreRunCost.from_result(materialized)
        assert cost_s.stream and not cost_m.stream
        assert cost_s.wall_cycles == cost_s.pipelined_critical_path_cycles
        assert cost_m.wall_cycles == cost_m.critical_path_cycles
        assert cost_s.seconds() <= cost_m.seconds()
        rows = measured_serving_sweep([streamed, materialized])
        assert rows[0]["stream"] is True and rows[1]["stream"] is False
