"""Tests for the MADlib, Greenplum and external-library functional baselines."""

import numpy as np
import pytest

from repro.algorithms import Hyperparameters, LinearRegression, LogisticRegression
from repro.baselines import (
    ExternalLibraryRunner,
    GreenplumRunner,
    MADlibRunner,
    register_greenplum_udf,
    register_madlib_udf,
)
from repro.data.synthetic import generate_classification
from repro.exceptions import ConfigurationError
from repro.rdbms import Database


@pytest.fixture
def logistic_setup():
    data = generate_classification(400, 6, seed=11)
    hyper = Hyperparameters(learning_rate=0.3, merge_coefficient=8, epochs=15)
    spec = LogisticRegression().build_spec(6, hyper)
    db = Database(page_size=8 * 1024)
    db.load_table("train", spec.schema, data)
    return db, spec, data, hyper


class TestMADlibRunner:
    def test_matches_reference_exactly(self, small_database, linear_spec, small_regression_data):
        runner = MADlibRunner(small_database, linear_spec, epochs=25)
        result = runner.run("train")
        # The on-page data is float32, so fit the reference on the same values.
        stored = small_database.table("train").read_all(small_database.buffer_pool)
        reference = LinearRegression().reference_fit(
            stored, linear_spec.hyperparameters, epochs=25
        )
        np.testing.assert_allclose(result.models["mo"], reference["mo"], rtol=1e-7)
        assert result.stats.epochs_run == 25
        assert result.stats.tuples_processed == 25 * 200

    def test_learns_logistic(self, logistic_setup):
        db, spec, data, hyper = logistic_setup
        result = MADlibRunner(db, spec, epochs=15).run("train")
        algorithm = LogisticRegression()
        assert algorithm.accuracy(data, result.models) > 0.8

    def test_buffer_pool_is_exercised(self, small_database, linear_spec):
        small_database.reset_io_stats()
        MADlibRunner(small_database, linear_spec, epochs=2).run("train")
        stats = small_database.buffer_pool.stats
        assert stats.misses == small_database.table("train").page_count
        assert stats.hits > 0

    def test_udf_registration_and_sql(self, small_database):
        register_madlib_udf(
            small_database,
            "madlib_linregr",
            "linear",
            n_features=4,
            hyper=Hyperparameters(learning_rate=0.05, merge_coefficient=8),
            epochs=10,
        )
        result = small_database.execute("SELECT * FROM dana.madlib_linregr('train')")
        assert result.stats["system"] == "MADlib+PostgreSQL"
        assert result.rows[0][0] == "mo"
        assert len(result.rows[0][1]) == 4


class TestGreenplumRunner:
    def test_segment_parallel_model_close_to_single_node(self, logistic_setup):
        db, spec, data, hyper = logistic_setup
        single = MADlibRunner(db, spec, epochs=10).run("train")
        parallel = GreenplumRunner(db, spec, segments=8, epochs=10).run("train")
        algorithm = LogisticRegression()
        acc_single = algorithm.accuracy(data, single.models)
        acc_parallel = algorithm.accuracy(data, parallel.models)
        assert acc_parallel > 0.75
        assert abs(acc_single - acc_parallel) < 0.15

    def test_partitioning_covers_all_tuples(self, logistic_setup):
        db, spec, _data, _hyper = logistic_setup
        runner = GreenplumRunner(db, spec, segments=4, epochs=1)
        result = runner.run("train")
        assert result.stats.tuples_processed == 400
        assert result.stats.segments == 4
        assert result.stats.merges_performed == 1

    def test_single_segment_equals_madlib(self, small_database, linear_spec):
        madlib = MADlibRunner(small_database, linear_spec, epochs=5).run("train")
        greenplum = GreenplumRunner(small_database, linear_spec, segments=1, epochs=5).run("train")
        np.testing.assert_allclose(greenplum.models["mo"], madlib.models["mo"], rtol=1e-7)

    def test_invalid_segments(self, small_database, linear_spec):
        with pytest.raises(ValueError):
            GreenplumRunner(small_database, linear_spec, segments=0)

    def test_udf_registration(self, small_database):
        register_greenplum_udf(
            small_database,
            "gp_linregr",
            "linear",
            n_features=4,
            hyper=Hyperparameters(merge_coefficient=8),
            segments=4,
            epochs=5,
        )
        result = small_database.execute("SELECT * FROM dana.gp_linregr('train')")
        assert "Greenplum" in result.stats["system"]


class TestExternalLibraries:
    def test_phases_and_result(self, logistic_setup):
        db, _spec, data, hyper = logistic_setup
        runner = ExternalLibraryRunner(db, "dimmwitted", "logistic", hyper, epochs=15)
        result = runner.run("train")
        assert result.stats.exported_tuples == 400
        assert result.stats.exported_bytes > 0
        assert result.stats.transformed_tuples == 400
        assert LogisticRegression().accuracy(data, result.models) > 0.8

    def test_export_is_text(self, logistic_setup):
        db, _spec, _data, hyper = logistic_setup
        runner = ExternalLibraryRunner(db, "liblinear", "logistic", hyper)
        lines, stats = runner.export("train")
        assert len(lines) == 400
        assert all("," in line for line in lines)
        parsed = runner.transform(lines[:5])
        assert parsed.shape == (5, 7)

    def test_liblinear_does_not_support_linear_regression(self, logistic_setup):
        db, _spec, _data, hyper = logistic_setup
        with pytest.raises(ConfigurationError):
            ExternalLibraryRunner(db, "liblinear", "linear", hyper)

    def test_unknown_library(self, logistic_setup):
        db, _spec, _data, hyper = logistic_setup
        with pytest.raises(ConfigurationError):
            ExternalLibraryRunner(db, "sparkml", "logistic", hyper)
