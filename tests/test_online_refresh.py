"""Tests for incremental model refresh over live tables.

``DAnA.refresh_model`` warm-starts a saved model and trains only the heap
pages stamped past its LSN watermark.  The contracts proven here:

* a refresh with **zero** new rows is a no-op — same version, nothing
  trained, nothing recorded;
* train-then-refresh converges to (essentially) the same fit as a full
  retrain over the grown table, on seeded exact-target data;
* refresh **cost scales with the new rows**, not with the table size —
  the warm-start run consumes only the pages past the watermark;
* watermarks persist through the registry round trip and advance on
  every refresh;
* a running :class:`~repro.serving.PredictionServer` hot-swaps to the
  refreshed version via ``server.reload()``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import Hyperparameters, LinearRegression
from repro.core import DAnA
from repro.exceptions import ConfigurationError
from repro.obs import Telemetry, enable_telemetry
from repro.rdbms import Database

N_FEATURES = 4
TRUE_W = np.array([2.0, -1.0, 0.5, 3.0])
TABLE = "train"
UDF = "linreg"
MODEL = "fit"


def _rows(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, N_FEATURES))
    return np.hstack([X, (X @ TRUE_W)[:, None]])


def _system(base_rows: int = 400, epochs: int = 12, record_runs: bool = False):
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=8, epochs=epochs)
    spec = LinearRegression().build_spec(N_FEATURES, hyper)
    db = Database(page_size=2048)
    db.load_table(TABLE, spec.schema, _rows(base_rows, 1))
    system = DAnA(db, record_runs=record_runs)
    system.register_udf(UDF, spec, epochs=epochs)
    return system, spec


def _trained_entry(system):
    run = system.train(UDF, TABLE)
    return system.save_model(
        MODEL,
        UDF,
        run.models,
        metadata={"trained_on": TABLE},
        watermark=run.snapshot_lsn,
    )


class TestNoOp:
    def test_zero_new_rows_is_a_noop(self):
        system, _ = _system()
        entry = _trained_entry(system)
        result = system.refresh_model(MODEL)
        assert not result.refreshed
        assert result.entry.version == entry.version
        assert result.pages_trained == 0 and result.tuples_trained == 0
        assert result.run is None
        assert system.registry.entry(MODEL).version == entry.version

    def test_noop_repeats_after_a_refresh(self):
        system, _ = _system()
        _trained_entry(system)
        system.database.insert_rows(TABLE, _rows(30, 2))
        refreshed = system.refresh_model(MODEL)
        assert refreshed.refreshed
        again = system.refresh_model(MODEL)
        assert not again.refreshed
        assert again.entry.version == refreshed.entry.version

    def test_noop_records_no_run(self):
        system, _ = _system(record_runs=True)
        _trained_entry(system)
        before = len(system.run_recorder.runs())
        system.refresh_model(MODEL)
        assert len(system.run_recorder.runs()) == before


class TestConvergenceParity:
    def test_refresh_tracks_the_full_retrain_fit(self):
        """Warm-start over the delta lands near the full-retrain optimum.

        Exact linear target: both the incrementally-refreshed model and a
        from-scratch retrain over the grown table must recover ``TRUE_W``;
        the two fits agree within a small tolerance of each other.
        """
        system, _ = _system(epochs=20)
        db = system.database
        _trained_entry(system)
        db.insert_rows(TABLE, _rows(120, 5))
        refreshed = system.refresh_model(MODEL)
        assert refreshed.refreshed
        incremental = system.load_model(MODEL)["mo"]
        full = system.train(UDF, TABLE).models["mo"]
        np.testing.assert_allclose(incremental, TRUE_W, atol=0.05)
        np.testing.assert_allclose(full, TRUE_W, atol=0.05)
        np.testing.assert_allclose(incremental, full, atol=0.1)

    def test_refresh_is_seeded_deterministic(self):
        """Two identical insert+refresh histories produce identical bits."""
        models = []
        for _ in range(2):
            system, _ = _system()
            system.database.insert_rows(TABLE, _rows(40, 9))
            _entry = _trained_entry(system)
            system.database.insert_rows(TABLE, _rows(25, 10))
            result = system.refresh_model(MODEL)
            models.append(result.run.models)
        for name in models[0]:
            np.testing.assert_array_equal(models[0][name], models[1][name])


class TestCostScaling:
    def test_refresh_cost_scales_with_new_rows_not_table_size(self):
        """The warm-start run never touches pages at or before the watermark."""
        system, _ = _system(base_rows=2000, epochs=4)
        db = system.database
        _trained_entry(system)
        delta = 64
        db.insert_rows(TABLE, _rows(delta, 6))
        result = system.refresh_model(MODEL)
        heap = db.table(TABLE)
        slack = heap.tuples_per_page()  # a restamped tail page re-trains
        assert result.tuples_trained <= delta + slack
        assert result.tuples_trained < heap.tuple_count / 4
        # The schedule-derived engine work is per-tuple-per-epoch: the
        # refresh processed only the delta's tuples, not the table's.
        assert (
            result.run.engine_stats.tuples_processed
            == result.tuples_trained * result.run.training.epochs_run
        )

    def test_refresh_scan_is_pinned_and_advances_the_watermark(self):
        system, _ = _system()
        db = system.database
        entry = _trained_entry(system)
        assert entry.metadata["lsn_watermark"] == 0  # trained on bulk base
        db.insert_rows(TABLE, _rows(20, 7))
        db.insert_rows(TABLE, _rows(20, 8))
        result = system.refresh_model(MODEL)
        assert result.watermark == 0
        assert result.snapshot_lsn == db.wal.current_lsn == 2
        assert result.entry.metadata["lsn_watermark"] == 2
        assert result.entry.metadata["refreshed_from"] == entry.version
        # Registry round trip preserves the watermark.
        assert system.registry.entry(MODEL).metadata["lsn_watermark"] == 2


class TestServingAndObservability:
    def test_server_hot_swaps_to_the_refreshed_version(self):
        system, _ = _system()
        db = system.database
        entry = _trained_entry(system)
        server = system.serve(UDF, model_name=MODEL)
        server.start()
        try:
            assert server.model_version == entry.version
            probe = _rows(1, 11)[0, :N_FEATURES]
            before = server.predict(probe)
            db.insert_rows(TABLE, _rows(50, 12))
            result = system.refresh_model(MODEL, server=server)
            assert server.model_version == result.entry.version
            after = server.predict(probe)
            # Same forward pass, refreshed parameters.
            expected = system.predict(
                UDF, probe, model_name=MODEL, version=result.entry.version
            )
            np.testing.assert_allclose(after, expected)
            assert not np.array_equal(before, after)
        finally:
            server.stop()

    def test_refresh_records_a_refresh_kind_run(self):
        system, _ = _system(record_runs=True)
        db = system.database
        _trained_entry(system)
        db.insert_rows(TABLE, _rows(30, 13))
        result = system.refresh_model(MODEL)
        runs = [r for r in system.run_recorder.runs() if r["kind"] == "refresh"]
        assert len(runs) == 1
        assert runs[0]["label"] == MODEL
        assert runs[0]["tuples"] == result.tuples_trained

    def test_refresh_emits_its_span(self):
        system, _ = _system()
        db = system.database
        _trained_entry(system)
        db.insert_rows(TABLE, _rows(10, 14))
        session = Telemetry()
        with enable_telemetry(session):
            system.refresh_model(MODEL)
        rollup = session.tracer.rollup()
        assert rollup["core.refresh_model"]["count"] == 1
        # Inserts run the WAL span too; none happened inside this block.
        assert "rdbms.wal.append" not in rollup


class TestValidation:
    def test_unknown_model_is_rejected(self):
        system, _ = _system()
        with pytest.raises(ConfigurationError):
            system.refresh_model("nope")

    def test_missing_trained_on_requires_table_name(self):
        system, _ = _system()
        run = system.train(UDF, TABLE)
        system.save_model(MODEL, UDF, run.models, watermark=run.snapshot_lsn)
        with pytest.raises(ConfigurationError, match="table_name"):
            system.refresh_model(MODEL)
        system.database.insert_rows(TABLE, _rows(15, 15))
        result = system.refresh_model(MODEL, table_name=TABLE)
        assert result.refreshed
        # Refresh records trained_on, so the next refresh resolves alone.
        assert not system.refresh_model(MODEL).refreshed

    def test_model_without_watermark_refreshes_from_lsn_zero(self):
        """No watermark = LSN 0: every WAL-logged page is new, the bulk
        base is not (it is the implicit checkpoint)."""
        system, _ = _system()
        db = system.database
        db.insert_rows(TABLE, _rows(35, 16))
        run = system.train(UDF, TABLE)
        system.save_model(MODEL, UDF, run.models, metadata={"trained_on": TABLE})
        result = system.refresh_model(MODEL)
        assert result.refreshed
        assert result.watermark == 0
        assert result.tuples_trained >= 35
