"""Tests for the four ML algorithms: DSL programs and NumPy references."""

import numpy as np
import pytest

from repro.algorithms import (
    Hyperparameters,
    LinearRegression,
    LogisticRegression,
    LowRankMatrixFactorization,
    SupportVectorMachine,
    algorithm_keys,
    get_algorithm,
    register_algorithm,
)
from repro.data.synthetic import (
    generate_classification,
    generate_ratings,
    generate_regression,
)
from repro.exceptions import ConfigurationError
from repro.translator import translate


@pytest.fixture
def hyper():
    return Hyperparameters(learning_rate=0.1, merge_coefficient=8, epochs=30)


class TestRegistry:
    def test_keys(self):
        assert set(algorithm_keys()) == {"linear", "logistic", "svm", "lrmf"}

    def test_lookup_by_alias(self):
        assert isinstance(get_algorithm("Logistic Regression"), LogisticRegression)
        assert isinstance(get_algorithm("Low Rank Matrix Factorization"), LowRankMatrixFactorization)

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            get_algorithm("kmeans")

    def test_register_custom(self):
        class Custom(LinearRegression):
            key = "custom_linear"

        register_algorithm(Custom)
        assert isinstance(get_algorithm("custom_linear"), Custom)
        with pytest.raises(ConfigurationError):
            register_algorithm(object)  # type: ignore[arg-type]


class TestSpecs:
    @pytest.mark.parametrize("key,n_features", [("linear", 12), ("logistic", 7), ("svm", 9)])
    def test_dense_specs_translate(self, key, n_features, hyper):
        spec = get_algorithm(key).build_spec(n_features, hyper)
        graph = translate(spec.algo)
        assert graph.summary()["merge_nodes"] == 1
        assert spec.schema.row_width == (n_features + 1) * 4
        assert spec.initial_models["mo"].shape == (n_features,)
        bound = spec.bind_tuple(np.arange(n_features + 1, dtype=float))
        assert bound["x"].shape == (n_features,)
        assert bound["y"] == float(n_features)

    def test_lrmf_spec(self, hyper):
        spec = LowRankMatrixFactorization().build_spec(8, hyper, model_topology=(20, 15, 6))
        graph = translate(spec.algo)
        assert spec.initial_models["L"].shape == (20, 6)
        assert spec.initial_models["R"].shape == (15, 6)
        assert len(graph.update_targets) == 2
        assert spec.schema.names == ("row", "col", "value")

    def test_lrmf_requires_topology(self, hyper):
        with pytest.raises(ValueError):
            LowRankMatrixFactorization().build_spec(8, hyper)

    def test_convergence_condition_optional(self):
        hyper = Hyperparameters(convergence_tolerance=0.001, epochs=5)
        spec = LinearRegression().build_spec(4, hyper)
        graph = translate(spec.algo)
        assert graph.convergence_node_id is not None

    def test_flops_per_tuple_scaling(self):
        linear = LinearRegression()
        assert linear.flops_per_tuple(100) > linear.flops_per_tuple(10)
        assert SupportVectorMachine().flops_per_tuple(50) > LogisticRegression().flops_per_tuple(50) > 0


class TestReferenceImplementations:
    def test_linear_reference_converges(self, hyper):
        data = generate_regression(500, 6, noise=0.0, seed=1)
        models = LinearRegression().reference_fit(data, hyper, epochs=200)
        loss = LinearRegression().loss(data, models)
        assert loss < 1e-3

    def test_logistic_reference_learns(self):
        data = generate_classification(500, 6, labels=(0.0, 1.0), seed=2)
        hyper = Hyperparameters(learning_rate=0.5, merge_coefficient=16)
        algorithm = LogisticRegression()
        models = algorithm.reference_fit(data, hyper, epochs=100)
        assert algorithm.accuracy(data, models) > 0.85
        assert algorithm.loss(data, models) < algorithm.loss(data, {"mo": np.zeros(6)})

    def test_svm_reference_learns(self):
        data = generate_classification(500, 6, labels=(-1.0, 1.0), separation=2.0, seed=3)
        hyper = Hyperparameters(learning_rate=0.1, merge_coefficient=16, regularization=1e-3)
        algorithm = SupportVectorMachine()
        models = algorithm.reference_fit(data, hyper, epochs=100)
        assert algorithm.accuracy(data, models) > 0.85

    def test_lrmf_reference_reduces_error(self):
        data = generate_ratings(30, 25, rank=5, density=0.4, noise=0.0, seed=4)
        hyper = Hyperparameters(learning_rate=0.05, rank=5, regularization=1e-4)
        algorithm = LowRankMatrixFactorization()
        models = algorithm.reference_fit(data, hyper, epochs=60)
        initial = algorithm.loss(
            data,
            {
                "L": np.zeros((30, 5)),
                "R": np.zeros((25, 5)),
            },
        )
        assert algorithm.loss(data, models) < initial * 0.2

    def test_regularization_changes_logistic_model(self):
        data = generate_classification(200, 5, seed=6)
        plain = LogisticRegression().reference_fit(data, Hyperparameters(), epochs=20)
        regularized = LogisticRegression().reference_fit(
            data, Hyperparameters(regularization=0.1), epochs=20
        )
        assert np.linalg.norm(regularized["mo"]) < np.linalg.norm(plain["mo"])

    def test_hyperparameters_scaled(self):
        hyper = Hyperparameters(learning_rate=0.1)
        scaled = hyper.scaled(learning_rate=0.5, epochs=3)
        assert scaled.learning_rate == 0.5
        assert scaled.epochs == 3
        assert hyper.learning_rate == 0.1
