"""Tests for the sharded multi-segment execution subsystem (repro.cluster).

Invariants enforced here:

* **segments=1 is the single-engine path, exactly** — same model bits, same
  schedule-derived engine counters, same access-engine counters;
* **lockstep == threads** — the segment-axis vectorized executor computes
  what the per-segment thread-pool oracle computes;
* **segments∈{2,4,8} still learn** — every algorithm converges to the
  reference fit within tolerance despite per-epoch model merging;
* **cycle counters are consistent across segment counts** — total tuples,
  pages and extraction counts are invariant, and the critical path shrinks
  as segments are added;
* **runs are reproducible** — a fixed seed makes sharded shuffled runs
  bit-identical;
* **the model merge is shared** — GreenplumRunner and ModelAggregator can
  not drift apart.
"""

import numpy as np
import pytest

from repro.algorithms import Hyperparameters, get_algorithm
from repro.baselines import GreenplumRunner
from repro.cluster import (
    ModelAggregator,
    PagePartition,
    Partitioner,
    ShardedDAnA,
)
from repro.core import DAnA
from repro.data.synthetic import generate_for_algorithm
from repro.exceptions import ConfigurationError
from repro.hw.tree_bus import TreeBus
from repro.rdbms import Database

LRMF_TOPOLOGY = (24, 18, 4)
EPOCHS = 6


def _system(key, n_tuples=640, merge=8, epochs=EPOCHS, seed=11):
    algorithm = get_algorithm(key)
    n_features = 4 if key == "lrmf" else 6
    topology = LRMF_TOPOLOGY if key == "lrmf" else ()
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=merge, epochs=epochs)
    spec = algorithm.build_spec(n_features, hyper, topology)
    data = generate_for_algorithm(key, n_tuples, n_features, LRMF_TOPOLOGY, seed=seed)
    database = Database(page_size=8 * 1024)
    database.load_table("train", spec.schema, data)
    database.warm_cache("train")
    system = DAnA(database)
    system.register_udf(key, spec, epochs=epochs)
    return system, spec, algorithm, data


# ---------------------------------------------------------------------- #
# Partitioner
# ---------------------------------------------------------------------- #
class TestPartitioner:
    @pytest.mark.parametrize("strategy", ["round_robin", "hash"])
    def test_partitions_cover_all_pages_disjointly(self, strategy):
        parts = Partitioner(strategy, seed=3).partition(37, 5)
        assert [p.segment_id for p in parts] == list(range(5))
        seen = [page for p in parts for page in p.page_nos]
        assert sorted(seen) == list(range(37))

    def test_round_robin_is_balanced(self):
        parts = Partitioner("round_robin").partition(38, 4)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic_for_fixed_seed(self):
        a = Partitioner("hash", seed=7).partition(64, 4)
        b = Partitioner("hash", seed=7).partition(64, 4)
        assert a == b
        c = Partitioner("hash", seed=8).partition(64, 4)
        assert a != c  # 64 pages over 4 segments: collision is ~impossible

    def test_partition_table_uses_catalog(self):
        system, spec, _algo, _data = _system("linear")
        parts = Partitioner().partition_table(system.database, "train", 3)
        total_pages = system.database.table("train").page_count
        assert sum(len(p) for p in parts) == total_pages
        assert isinstance(parts[0], PagePartition)

    def test_rejects_unknown_strategy_and_bad_counts(self):
        with pytest.raises(ConfigurationError):
            Partitioner("range")
        with pytest.raises(ConfigurationError):
            Partitioner().partition(10, 0)


# ---------------------------------------------------------------------- #
# ModelAggregator (shared with the Greenplum baseline)
# ---------------------------------------------------------------------- #
class TestModelAggregator:
    def test_average_matches_manual_mean(self):
        rng = np.random.default_rng(0)
        models = [{"mo": rng.normal(size=5)} for _ in range(4)]
        merged = ModelAggregator("average").merge(models)
        np.testing.assert_array_equal(
            merged["mo"], np.mean([m["mo"] for m in models], axis=0)
        )

    def test_greenplum_runner_merge_parity(self):
        """The baseline's merge IS the aggregator (no drift possible)."""
        system, spec, _algo, _data = _system("linear")
        runner = GreenplumRunner(system.database, spec, segments=4, epochs=2)
        assert isinstance(runner.aggregator, ModelAggregator)
        rng = np.random.default_rng(1)
        models = [{"mo": rng.normal(size=6)} for _ in range(4)]
        np.testing.assert_array_equal(
            runner._merge_models(models)["mo"],
            ModelAggregator("average").merge(models)["mo"],
        )

    def test_gradient_sum_combines_disjoint_deltas_exactly(self):
        base = {"L": np.zeros(6)}
        a = {"L": np.array([1.0, 2.0, 0, 0, 0, 0])}
        b = {"L": np.array([0, 0, 0, 0, 3.0, 4.0])}
        merged = ModelAggregator("gradient_sum").merge([a, b], base=base)
        np.testing.assert_array_equal(merged["L"], [1, 2, 0, 0, 3, 4])

    def test_gradient_sum_requires_base(self):
        with pytest.raises(ConfigurationError):
            ModelAggregator("gradient_sum").merge(
                [{"mo": np.ones(2)}, {"mo": np.zeros(2)}]
            )

    def test_single_segment_merge_is_identity(self):
        value = np.array([1.0, 2.0, 3.0])
        for strategy in ("average", "gradient_sum"):
            merged = ModelAggregator(strategy).merge([{"mo": value}])
            np.testing.assert_array_equal(merged["mo"], value)

    def test_stacked_equals_list_merge(self):
        rng = np.random.default_rng(2)
        stacked = rng.normal(size=(3, 4))
        as_list = [{"mo": stacked[i]} for i in range(3)]
        for strategy, base in (("average", None), ("gradient_sum", {"mo": np.zeros(4)})):
            agg = ModelAggregator(strategy)
            np.testing.assert_allclose(
                agg.merge_stacked({"mo": stacked}, base=base)["mo"],
                agg.merge(as_list, base=base)["mo"],
            )

    def test_tree_bus_accounting(self):
        bus = TreeBus(alu_count=4)
        ModelAggregator("average", tree_bus=bus).merge(
            [{"mo": np.ones(8)} for _ in range(4)]
        )
        assert bus.stats.merges_performed == 1
        assert bus.stats.levels_traversed == 2      # ceil(log2(4)) levels
        assert bus.stats.operations_executed == 3 * 8
        assert bus.stats.cycles == 2 * 2            # 2 levels * ceil(8/4)


# ---------------------------------------------------------------------- #
# segments=1 == single-engine path, exactly
# ---------------------------------------------------------------------- #
class TestSingleSegmentExact:
    @pytest.mark.parametrize("key", ["linear", "logistic", "svm", "lrmf"])
    def test_models_and_counters_identical(self, key):
        system, spec, _algo, _data = _system(key)
        single = system.train(key, "train", epochs=EPOCHS)
        sharded = system.train(key, "train", epochs=EPOCHS, segments=1)
        for name in single.models:
            np.testing.assert_array_equal(sharded.models[name], single.models[name])
        assert sharded.engine_stats == single.engine_stats
        assert sharded.access_stats == single.access_stats
        assert sharded.tuples_extracted == single.tuples_extracted
        assert sharded.epochs_run == single.training.epochs_run


# ---------------------------------------------------------------------- #
# lockstep == threads (the per-segment oracle)
# ---------------------------------------------------------------------- #
class TestLockstepMatchesThreads:
    @pytest.mark.parametrize("key", ["linear", "logistic", "svm"])
    @pytest.mark.parametrize("segments", [2, 4, 8])
    def test_parity(self, key, segments):
        system, spec, _algo, _data = _system(key)
        lockstep = system.train(key, "train", epochs=EPOCHS, segments=segments)
        threads = system.train(
            key, "train", epochs=EPOCHS, segments=segments, execution="threads"
        )
        assert lockstep.cluster.mode == "lockstep"
        assert threads.cluster.mode == "threads"
        for name in lockstep.models:
            np.testing.assert_allclose(
                lockstep.models[name], threads.models[name], rtol=1e-9, atol=1e-12
            )
        assert lockstep.engine_stats == threads.engine_stats
        assert lockstep.cluster.cross_merge_cycles == threads.cluster.cross_merge_cycles

    def test_convergence_tolerance_parity(self):
        """Early stopping must agree between lockstep and the oracle."""
        algorithm = get_algorithm("linear")
        hyper = Hyperparameters(
            learning_rate=0.05,
            merge_coefficient=8,
            epochs=40,
            convergence_tolerance=0.5,
        )
        spec = algorithm.build_spec(6, hyper)
        data = generate_for_algorithm("linear", 650, 6, seed=11)
        database = Database(page_size=8 * 1024)
        database.load_table("train", spec.schema, data)
        database.warm_cache("train")
        system = DAnA(database)
        system.register_udf("linear", spec, epochs=40)
        lockstep = system.train("linear", "train", epochs=40, segments=2)
        threads = system.train(
            "linear", "train", epochs=40, segments=2, execution="threads"
        )
        assert lockstep.cluster.mode == "lockstep"
        assert lockstep.converged and threads.converged
        assert lockstep.epochs_run == threads.epochs_run < 40
        for name in lockstep.models:
            np.testing.assert_allclose(
                lockstep.models[name], threads.models[name], rtol=1e-9
            )

    def test_lrmf_falls_back_to_threads(self):
        system, spec, _algo, _data = _system("lrmf")
        run = system.train("lrmf", "train", epochs=2, segments=4)
        assert run.cluster.mode == "threads"
        assert run.cluster.aggregation_strategy == "gradient_sum"
        with pytest.raises(ConfigurationError):
            system.train("lrmf", "train", epochs=2, segments=4, execution="lockstep")


# ---------------------------------------------------------------------- #
# segments∈{2,4,8} converge to the reference fit within tolerance
# ---------------------------------------------------------------------- #
class TestShardedConvergence:
    @pytest.mark.parametrize("key", ["linear", "logistic", "svm", "lrmf"])
    @pytest.mark.parametrize("segments", [2, 4, 8])
    def test_converges_within_tolerance(self, key, segments):
        system, spec, algorithm, data = _system(key)
        run = system.train(key, "train", epochs=EPOCHS, segments=segments)
        initial_loss = algorithm.loss(data, spec.initial_models)
        reference = algorithm.reference_fit(data, spec.hyperparameters, EPOCHS)
        reference_loss = algorithm.loss(data, reference)
        sharded_loss = algorithm.loss(data, run.models)
        # Learning happened, and epoch-merged training lands near the
        # sequential reference fit (model averaging trades a bounded amount
        # of per-epoch progress for segment parallelism).
        assert sharded_loss < 0.6 * initial_loss
        assert sharded_loss <= 2.0 * reference_loss + 1e-9


# ---------------------------------------------------------------------- #
# cycle counters consistent across segment counts
# ---------------------------------------------------------------------- #
class TestCounterConsistency:
    @pytest.mark.parametrize("key", ["linear", "lrmf"])
    def test_invariants_across_segment_counts(self, key):
        system, spec, _algo, data = _system(key)
        page_count = system.database.table("train").page_count
        runs = {
            n: system.train(key, "train", epochs=EPOCHS, segments=n)
            for n in (1, 2, 4, 8)
        }
        criticals = []
        for n, run in runs.items():
            # every tuple is extracted and trained exactly once per epoch
            assert run.tuples_extracted == len(data)
            assert run.engine_stats.tuples_processed == len(data) * EPOCHS
            assert run.access_stats.pages_processed == page_count
            assert sum(seg.pages for seg in run.segments) == page_count
            assert run.epochs_run == EPOCHS
            assert run.engine_stats.epochs_completed == EPOCHS
            criticals.append(run.critical_path_cycles)
            if n > 1:
                assert run.cluster.merges_performed == EPOCHS
                assert run.cluster.cross_merge_cycles > 0
        # Sharding shortens the modelled critical path: strictly from 1→2
        # segments, then monotonically until the page supply runs out (heap
        # pages are the distribution unit, so a 4-page table saturates at 4
        # useful segments).
        assert criticals[1] < criticals[0]
        assert all(b <= a for a, b in zip(criticals, criticals[1:]))

    def test_per_segment_counters_sum_to_aggregate(self):
        system, spec, _algo, _data = _system("linear")
        run = system.train("linear", "train", epochs=EPOCHS, segments=4)
        assert run.engine_stats.tuples_processed == sum(
            seg.engine_stats.tuples_processed for seg in run.segments
        )
        assert run.access_stats.strider_cycles_critical == max(
            seg.access_stats.strider_cycles_critical for seg in run.segments
        )


# ---------------------------------------------------------------------- #
# reproducibility: one seeded generator through shuffling + partitioning
# ---------------------------------------------------------------------- #
class TestReproducibility:
    @pytest.mark.parametrize("execution", ["auto", "threads"])
    def test_shuffled_sharded_runs_are_bit_identical(self, execution):
        system, spec, _algo, _data = _system("linear")
        kwargs = dict(
            epochs=4, segments=4, shuffle=True, seed=123, execution=execution,
            partition_strategy="hash",
        )
        first = system.train("linear", "train", **kwargs)
        second = system.train("linear", "train", **kwargs)
        for name in first.models:
            np.testing.assert_array_equal(first.models[name], second.models[name])
        assert first.engine_stats == second.engine_stats

    def test_different_seed_changes_shuffled_run(self):
        system, spec, _algo, _data = _system("linear")
        a = system.train("linear", "train", epochs=4, segments=4, shuffle=True, seed=1)
        b = system.train("linear", "train", epochs=4, segments=4, shuffle=True, seed=2)
        assert any(
            not np.array_equal(a.models[name], b.models[name]) for name in a.models
        )

    def test_single_segment_shuffled_matches_single_engine_exactly(self):
        """segments=1 consumes the same rng stream as the single path."""
        system, spec, _algo, _data = _system("linear")
        single = system.train("linear", "train", epochs=4, shuffle=True, seed=9)
        sharded = system.train(
            "linear", "train", epochs=4, shuffle=True, seed=9, segments=1
        )
        np.testing.assert_array_equal(sharded.models["mo"], single.models["mo"])
        assert sharded.engine_stats == single.engine_stats

    def test_single_path_shuffle_is_seeded(self):
        system, spec, _algo, _data = _system("linear")
        a = system.train("linear", "train", epochs=4, shuffle=True, seed=5)
        b = system.train("linear", "train", epochs=4, shuffle=True, seed=5)
        np.testing.assert_array_equal(a.models["mo"], b.models["mo"])


# ---------------------------------------------------------------------- #
# facade plumbing
# ---------------------------------------------------------------------- #
class TestFacade:
    def test_sharded_result_surface(self):
        system, spec, _algo, _data = _system("linear")
        run = system.train("linear", "train", epochs=2, segments=3)
        assert run.cluster.segments == 3
        assert len(run.segments) == 3
        assert run.critical_path_cycles > 0
        assert run.cluster.partition_strategy == "round_robin"
        assert run.cluster.aggregation_strategy == "average"

    def test_use_striders_false_bypasses_access_engine(self):
        system, spec, algorithm, data = _system("linear")
        with_striders = system.train("linear", "train", epochs=3, segments=4)
        system.use_striders = False
        without = system.train("linear", "train", epochs=3, segments=4)
        # CPU-fed extraction books no Strider/AXI activity but trains on
        # exactly the same tuples.
        assert without.access_stats.strider_cycles_total == 0
        assert without.access_stats.pages_processed == 0
        assert without.tuples_extracted == with_striders.tuples_extracted == len(data)
        for name in with_striders.models:
            np.testing.assert_array_equal(without.models[name], with_striders.models[name])

    def test_invalid_configuration(self):
        system, spec, _algo, _data = _system("linear")
        binary = system.compile_udf("linear", "train")
        with pytest.raises(ConfigurationError):
            ShardedDAnA(system.database, binary, spec, segments=0)
        with pytest.raises(ConfigurationError):
            ShardedDAnA(system.database, binary, spec, segments=2, execution="warp")
        with pytest.raises(ConfigurationError):
            system.train("linear", "train", epochs=2, segments=2, aggregation="median")
