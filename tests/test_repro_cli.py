"""Tests for the ``repro`` ops console: formatting units + subcommands.

The subcommand tests go end-to-end through :func:`repro.obs.cli.main`
(argparse included) and read the printed output via capsys — the same
surface the CI smoke step exercises.
"""

import csv
import io
import json

import pytest

from repro.obs.cli import (
    _flatten_numeric,
    build_parser,
    format_mapping,
    format_rows,
    main,
)

ROWS = [
    {"name": "a", "value": 1.25, "count": 3},
    {"name": "b", "value": 0.5, "count": 11},
]


class TestFormatters:
    def test_table_alignment(self):
        out = format_rows(ROWS, "table")
        lines = out.splitlines()
        assert lines[0].split() == ["name", "value", "count"]
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].split() == ["a", "1.250", "3"]
        # columns line up: every row has the same width
        assert len({len(line) for line in lines}) == 1

    def test_csv_round_trip(self):
        out = format_rows(ROWS, "csv")
        parsed = list(csv.reader(io.StringIO(out)))
        assert parsed[0] == ["name", "value", "count"]
        assert parsed[1] == ["a", "1.250", "3"]
        assert len(parsed) == 3

    def test_json_round_trip(self):
        parsed = json.loads(format_rows(ROWS, "json"))
        assert parsed == ROWS

    def test_empty_rows(self):
        assert format_rows([], "table") == "(no rows)"
        assert format_rows([], "csv") == ""
        assert json.loads(format_rows([], "json")) == []

    def test_explicit_columns_fill_missing_cells(self):
        out = format_rows([{"a": 1}], "csv", columns=("a", "b"))
        assert out.splitlines()[1] == "1,"

    def test_format_mapping(self):
        mapping = {"requests": 4, "p99": 1.5}
        table = format_mapping(mapping, "table")
        assert "requests" in table and "1.500" in table
        assert json.loads(format_mapping(mapping, "json")) == mapping

    def test_flatten_numeric(self):
        flat = _flatten_numeric(
            {
                "top": 1,
                "nested": {"x": 2.5},
                "rows": [{"workload": "linear", "speedup": 3.0}, {"plain": 4}],
                "text": "ignored",
                "flag": True,
            }
        )
        assert flat["top"] == 1.0
        assert flat["nested.x"] == 2.5
        assert flat["rows.workload=linear.speedup"] == 3.0
        assert flat["rows.1.plain"] == 4.0
        assert "text" not in flat
        assert "flag" not in flat


@pytest.mark.smoke
class TestSubcommands:
    """End-to-end CLI calls (each builds the in-process demo session)."""

    def test_runs_json(self, capsys):
        assert main(["--format", "json", "runs"]) == 0
        records = json.loads(capsys.readouterr().out)
        # train → save → score → bench, then the EXPLAIN ANALYZE score run
        # whose statement trace `repro trace` renders.
        assert [r["kind"] for r in records] == ["train", "score", "bench", "score"]
        assert records[0]["label"] == "demo_linear"
        assert records[1]["model"] == "demo_model:v1"
        assert all(r["tuples"] > 0 for r in records)

    def test_runs_show(self, capsys):
        assert main(["--format", "json", "runs", "show", "1"]) == 0
        detail = json.loads(capsys.readouterr().out)
        assert detail["run_id"] == 1
        assert detail["config"]["segments"] == 2
        assert detail["metrics"]["engine.total_cycles"] == detail["cycles"]
        # the demo session runs under an armed telemetry session, so the
        # record carries span rollups
        assert detail["metrics"]["span.runtime.epoch.count"] >= 2

    def test_runs_table_and_limit(self, capsys):
        assert main(["runs", "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "score" in out
        assert "train" not in out.splitlines()[2]

    def test_trace(self, capsys):
        # the demo session's EXPLAIN ANALYZE score run is the last (4th)
        # record; its persisted trace renders the annotated plan + rollup.
        assert main(["trace", "4"]) == 0
        out = capsys.readouterr().out
        assert "ScanScore" in out
        assert "predicted:" in out and "actual:" in out
        assert "span rollup" in out
        assert "serving.scorer.segment" in out

    def test_trace_json_round_trip(self, capsys):
        assert main(["--format", "json", "trace", "4"]) == 0
        trace = json.loads(capsys.readouterr().out)
        assert trace["analyze"] is True
        assert trace["operators"]["name"] == "ScanScore"
        assert trace["rollup"]["serving.scorer.segment"]["count"] >= 2

    def test_trace_missing(self, capsys):
        # run 1 (the plain train run) has no trace; unknown ids error too.
        assert main(["trace", "1"]) == 1
        assert "no recorded statement trace" in capsys.readouterr().err
        assert main(["trace", "999"]) == 1
        assert "999" in capsys.readouterr().err

    def test_models_csv(self, capsys):
        assert main(["--format", "csv", "models"]) == 0
        parsed = list(csv.reader(io.StringIO(capsys.readouterr().out)))
        assert parsed[0][0] == "model"
        assert parsed[1][0] == "demo_model"

    def test_serve_stats(self, capsys):
        assert main(["--format", "json", "serve", "--stats", "--requests", "8"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["requests"] == 8
        assert stats["latency_histogram"]["count"] == 8
        assert stats["p99_latency_ms"] >= stats["p50_latency_ms"] >= 0.0


class TestBenchSubcommand:
    def test_bench_reads_result_file(self, capsys, tmp_path):
        result = tmp_path / "bench.json"
        result.write_text(json.dumps({"geomean_speedup": 30.0, "note": "x"}))
        assert main(["--format", "json", "bench", "--result", str(result)]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows == [{"metric": "geomean_speedup", "value": 30.0}]

    def test_bench_compare(self, capsys, tmp_path):
        base = tmp_path / "base.json"
        other = tmp_path / "other.json"
        base.write_text(json.dumps({"speedup": 10.0, "only_base": 1.0}))
        other.write_text(json.dumps({"speedup": 12.0}))
        assert (
            main(
                [
                    "--format",
                    "json",
                    "bench",
                    "--result",
                    str(base),
                    "--compare",
                    str(other),
                ]
            )
            == 0
        )
        rows = {r["metric"]: r for r in json.loads(capsys.readouterr().out)}
        assert rows["speedup"]["delta"] == "+20.0%"
        assert rows["only_base"]["other"] == ""

    def test_bench_missing_file_fails(self, capsys, tmp_path):
        assert main(["bench", "--result", str(tmp_path / "missing.json")]) == 1
        assert "not found" in capsys.readouterr().err
