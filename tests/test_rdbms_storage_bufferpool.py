"""Unit tests for the storage manager and the buffer pool."""

import pytest

from repro.exceptions import BufferPoolError, StorageError
from repro.rdbms.buffer_pool import BufferPool
from repro.rdbms.storage import StorageManager


def _image(page_size: int, fill: int) -> bytes:
    return bytes([fill % 256]) * page_size


@pytest.fixture
def storage():
    manager = StorageManager()
    manager.create_file("t", 1024)
    for i in range(10):
        manager.append_page("t", _image(1024, i))
    manager.stats.reset()
    return manager


class TestStorageManager:
    def test_create_duplicate_file(self, storage):
        with pytest.raises(StorageError):
            storage.create_file("t", 1024)

    def test_missing_file(self, storage):
        with pytest.raises(StorageError):
            storage.read_page("nope", 0)

    def test_page_round_trip(self, storage):
        assert storage.read_page("t", 3) == _image(1024, 3)

    def test_read_counts_io(self, storage):
        storage.read_page("t", 0)
        storage.read_page("t", 1)
        assert storage.stats.page_reads == 2
        assert storage.stats.bytes_read == 2048

    def test_wrong_page_size_rejected(self, storage):
        with pytest.raises(StorageError):
            storage.append_page("t", b"\x00" * 100)

    def test_write_page(self, storage):
        storage.write_page("t", 2, _image(1024, 99))
        assert storage.read_page("t", 2) == _image(1024, 99)

    def test_out_of_range_page(self, storage):
        with pytest.raises(StorageError):
            storage.read_page("t", 100)

    def test_file_bytes_and_drop(self, storage):
        assert storage.file_bytes("t") == 10 * 1024
        storage.drop_file("t")
        assert not storage.has_file("t")


class TestBufferPool:
    def test_miss_then_hit(self, storage):
        pool = BufferPool(storage, pool_bytes=4 * 1024, page_size=1024)
        pool.get_page("t", 0)
        pool.get_page("t", 0)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1

    def test_lru_eviction(self, storage):
        pool = BufferPool(storage, pool_bytes=3 * 1024, page_size=1024)
        for page_no in range(5):
            pool.get_page("t", page_no)
        assert len(pool) == 3
        assert pool.stats.evictions == 2
        # pages 2, 3, 4 should be resident (LRU evicted 0 and 1)
        assert pool.resident("t", 4)
        assert not pool.resident("t", 0)

    def test_lru_recency_update(self, storage):
        pool = BufferPool(storage, pool_bytes=2 * 1024, page_size=1024)
        pool.get_page("t", 0)
        pool.get_page("t", 1)
        pool.get_page("t", 0)       # touch 0 so that 1 becomes the LRU victim
        pool.get_page("t", 2)
        assert pool.resident("t", 0)
        assert not pool.resident("t", 1)

    def test_pinned_pages_not_evicted(self, storage):
        pool = BufferPool(storage, pool_bytes=2 * 1024, page_size=1024)
        pool.get_page("t", 0, pin=True)
        pool.get_page("t", 1)
        pool.get_page("t", 2)
        assert pool.resident("t", 0)
        pool.unpin("t", 0)

    def test_unpin_unpinned_raises(self, storage):
        pool = BufferPool(storage, pool_bytes=2 * 1024, page_size=1024)
        pool.get_page("t", 0)
        with pytest.raises(BufferPoolError):
            pool.unpin("t", 0)

    def test_prefetch_warm_cache(self, storage):
        pool = BufferPool(storage, pool_bytes=20 * 1024, page_size=1024)
        loaded = pool.prefetch_table("t")
        assert loaded == 10
        pool.get_page("t", 5)
        assert pool.stats.hits == 1
        assert pool.stats.misses == 0

    def test_prefetch_respects_capacity(self, storage):
        pool = BufferPool(storage, pool_bytes=4 * 1024, page_size=1024)
        loaded = pool.prefetch_table("t")
        assert loaded == 4

    def test_clear_cold_cache(self, storage):
        pool = BufferPool(storage, pool_bytes=20 * 1024, page_size=1024)
        pool.prefetch_table("t")
        pool.clear()
        pool.get_page("t", 0)
        assert pool.stats.misses == 1

    def test_hit_rate(self, storage):
        pool = BufferPool(storage, pool_bytes=20 * 1024, page_size=1024)
        assert pool.stats.hit_rate == 0.0
        pool.get_page("t", 0)
        pool.get_page("t", 0)
        pool.get_page("t", 1)
        assert pool.stats.hit_rate == pytest.approx(1 / 3)

    def test_too_small_pool_rejected(self, storage):
        with pytest.raises(BufferPoolError):
            BufferPool(storage, pool_bytes=100, page_size=1024)
