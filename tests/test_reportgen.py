"""Tests for the full-report generator CLI."""

from repro.harness.experiments import EXPERIMENTS
from repro.harness.reportgen import generate_report, main


class TestReportGeneration:
    def test_single_section(self):
        report = generate_report(["table3_workloads"])
        assert "Table 3" in report
        assert "Netflix" in report

    def test_selected_figures(self):
        report = generate_report(["fig13_greenplum_segments", "fig16_tabla"])
        assert "Figure 13" in report
        assert "Figure 16" in report
        assert "Geomean" in report

    def test_titles_cover_registry(self):
        from repro.harness.reportgen import _TITLES

        assert set(_TITLES) == set(EXPERIMENTS)

    def test_cli_writes_file(self, tmp_path, monkeypatch):
        # Limit the run to one cheap experiment by monkeypatching the registry.
        monkeypatch.setattr(
            "repro.harness.reportgen.EXPERIMENTS",
            {"table3_workloads": EXPERIMENTS["table3_workloads"]},
        )
        target = tmp_path / "report.txt"
        assert main([str(target)]) == 0
        content = target.read_text()
        assert "Table 3" in content
