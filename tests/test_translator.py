"""Unit tests for dimension inference, translation and the hDFG evaluator."""

import numpy as np
import pytest

from repro import dana
from repro.exceptions import DimensionError, TranslationError
from repro.translator import (
    HDFGEvaluator,
    NodeKind,
    Region,
    broadcast_primary,
    group_fused,
    group_single,
    translate,
)
from repro.translator import dimensions as dims


class TestDimensionRules:
    def test_equal_shapes(self):
        assert broadcast_primary((5, 3), (5, 3)) == (5, 3)

    def test_scalar_broadcast(self):
        assert broadcast_primary((), (7,)) == (7,)
        assert broadcast_primary((7,), ()) == (7,)

    def test_suffix_replication(self):
        assert broadcast_primary((4,), (2, 4)) == (2, 4)
        assert broadcast_primary((2, 4), (4,)) == (2, 4)

    def test_incompatible_shapes(self):
        with pytest.raises(DimensionError):
            broadcast_primary((5, 10), (2, 10))
        with pytest.raises(DimensionError):
            broadcast_primary((3,), (2, 4))

    def test_group_single(self):
        assert group_single((10,), 1) == ()
        assert group_single((5, 10), 2) == (5,)
        assert group_single((5, 10), 1) == (10,)
        with pytest.raises(DimensionError):
            group_single((5,), 2)

    def test_group_fused_paper_example(self):
        # sigma(mo * in, 2) with mo=[5][10] and in=[2][10] -> [5][2]  (§4.4)
        assert group_fused((5, 10), (2, 10), 2) == (5, 2)

    def test_group_fused_dot_product(self):
        assert group_fused((10,), (10,), 1) == ()

    def test_group_fused_same_shape(self):
        assert group_fused((5, 10), (5, 10), 2) == (5,)

    def test_group_fused_extent_mismatch(self):
        with pytest.raises(DimensionError):
            group_fused((5, 10), (2, 9), 2)

    def test_gather_and_merge(self):
        assert dims.gather((8, 3), ()) == (3,)
        with pytest.raises(DimensionError):
            dims.gather((), ())
        assert dims.merge((4, 2)) == (4, 2)


class TestTranslator:
    def test_linear_regression_graph_structure(self, linear_algo_factory):
        graph = translate(linear_algo_factory(n_features=10))
        summary = graph.summary()
        assert summary["merge_nodes"] == 1
        assert summary["sub_nodes_update_rule"] > 0
        assert summary["sub_nodes_post_merge"] > 0
        assert graph.update_node_id is not None
        kinds = {node.kind for node in graph.nodes()}
        assert NodeKind.GROUP in kinds and NodeKind.MERGE in kinds

    def test_group_fusion_matches_figure_3(self, linear_algo_factory):
        graph = translate(linear_algo_factory(n_features=10))
        group_nodes = [n for n in graph.nodes() if n.kind is NodeKind.GROUP]
        assert len(group_nodes) == 1
        sigma = group_nodes[0]
        assert sigma.inner_op is not None          # mo*in fused into the SIGMA node
        assert len(sigma.inputs) == 2
        assert sigma.dims == ()                    # dot product -> scalar

    def test_regions_split_at_merge_boundary(self, linear_algo_factory):
        graph = translate(linear_algo_factory())
        merge_node = graph.node(graph.merge_node_ids[0])
        assert merge_node.region is Region.POST_MERGE
        upstream = graph.node(merge_node.inputs[0])
        assert upstream.region is Region.UPDATE_RULE
        # every consumer of the merged value is post-merge
        for consumer in graph.consumers(merge_node.node_id):
            assert consumer.region is Region.POST_MERGE

    def test_model_shape_mismatch_rejected(self):
        mo = dana.model([4], name="mo")
        x = dana.input([6], name="x")
        y = dana.output(name="y")
        algo = dana.algo(mo, x, y)
        algo.setModel(x)          # wrong shape: input has 6 elements, model 4
        algo.setEpochs(1)
        with pytest.raises(TranslationError):
            translate(algo)

    def test_convergence_region(self):
        mo, x, y = dana.model([4], name="mo"), dana.input([4], name="x"), dana.output(name="y")
        lr, tol = dana.meta(0.1, name="lr"), dana.meta(0.01, name="tol")
        algo = dana.algo(mo, x, y)
        grad = (dana.sigma(mo * x, 1) - y) * x
        merged = algo.merge(grad, 4, "+")
        algo.setModel(mo - lr * merged)
        algo.setConvergence(dana.norm(merged, 1) < tol)
        algo.setEpochs(3)
        graph = translate(algo)
        assert graph.convergence_node_id is not None
        conv_node = graph.node(graph.convergence_node_id)
        assert conv_node.region is Region.CONVERGENCE
        assert graph.total_sub_nodes([Region.CONVERGENCE]) > 0

    def test_required_operators(self, linear_algo_factory):
        graph = translate(linear_algo_factory())
        from repro.dsl import Operator

        ops = graph.required_operators()
        assert {Operator.ADD, Operator.SUB, Operator.MUL, Operator.DIV} <= ops

    def test_update_targets_for_lrmf(self):
        from repro.algorithms import Hyperparameters, LowRankMatrixFactorization

        spec = LowRankMatrixFactorization().build_spec(
            8, Hyperparameters(), model_topology=(12, 10, 4)
        )
        graph = translate(spec.algo)
        assert len(graph.update_targets) == 2
        names = {name for name, _v, _u in graph.update_targets}
        assert names == {"L", "R"}
        gathers = [n for n in graph.nodes() if n.kind is NodeKind.GATHER]
        assert len(gathers) == 2


class TestEvaluator:
    def test_linear_regression_single_tuple(self, linear_algo_factory):
        graph = translate(linear_algo_factory(n_features=3, merge_coefficient=1, learning_rate=0.1))
        evaluator = HDFGEvaluator(graph)
        env = evaluator.initial_env({"mo": np.zeros(3), "x": np.array([1.0, 2.0, 3.0]), "y": 4.0})
        env = evaluator.evaluate(env, [Region.UPDATE_RULE])
        merge_node = graph.node(graph.merge_node_ids[0])
        grad = env[merge_node.inputs[0]]
        np.testing.assert_allclose(grad, [-4.0, -8.0, -12.0])
        env[merge_node.node_id] = grad
        env = evaluator.evaluate(env, [Region.POST_MERGE])
        models = evaluator.model_results(env)
        np.testing.assert_allclose(models["mo"], [0.4, 0.8, 1.2])

    def test_group_contract_matches_numpy(self):
        # sigma(mo * x, 2) with mo=[5][10], x=[2][10] is the generalised
        # matrix product of §4.4; pull it into the graph via the convergence
        # condition and check the evaluator against NumPy.
        mo = dana.model([5, 10], name="mo")
        x = dana.input([2, 10], name="x")
        y = dana.output(name="y")
        tol = dana.meta(1e9, name="tol")
        algo = dana.algo(mo, x, y)
        s = dana.sigma(mo * x, 2)
        algo.setModel(mo + 0.0 * mo)
        algo.setConvergence(dana.norm(s, 2) < tol)
        algo.setEpochs(1)
        graph = translate(algo)
        evaluator = HDFGEvaluator(graph)
        rng = np.random.default_rng(1)
        mo_v, x_v = rng.normal(size=(5, 10)), rng.normal(size=(2, 10))
        env = evaluator.initial_env({"mo": mo_v, "x": x_v, "y": 0.0})
        env = evaluator.evaluate(
            env, [Region.UPDATE_RULE, Region.POST_MERGE, Region.CONVERGENCE]
        )
        sigma_node = next(
            n for n in graph.nodes() if n.kind is NodeKind.GROUP and n.dims == (5, 2)
        )
        np.testing.assert_allclose(env[sigma_node.node_id], mo_v @ x_v.T, rtol=1e-10)

    def test_nonlinear_and_comparison_ops(self):
        x = dana.input([3], name="x")
        mo = dana.model([3], name="mo")
        y = dana.output(name="y")
        algo = dana.algo(mo, x, y)
        algo.setModel(dana.sigmoid(mo) * (x > mo) + mo * (x < mo) + 0.0 * mo)
        algo.setEpochs(1)
        graph = translate(algo)
        evaluator = HDFGEvaluator(graph)
        env = evaluator.initial_env({"mo": np.array([0.0, 1.0, -1.0]), "x": np.array([1.0, 0.0, -2.0]), "y": 0.0})
        env = evaluator.evaluate(env, [Region.UPDATE_RULE, Region.POST_MERGE])
        result = evaluator.model_results(env)["mo"]
        expected = 1 / (1 + np.exp(-np.array([0.0, 1.0, -1.0]))) * np.array([1.0, 0.0, 0.0]) + np.array(
            [0.0, 1.0, -1.0]
        ) * np.array([0.0, 1.0, 1.0])
        np.testing.assert_allclose(result, expected)

    def test_aggregate_merge(self, linear_algo_factory):
        graph = translate(linear_algo_factory(n_features=2))
        evaluator = HDFGEvaluator(graph)
        merge_node = graph.node(graph.merge_node_ids[0])
        merged = evaluator.aggregate_merge(
            merge_node, [np.array([1.0, 2.0]), np.array([3.0, 4.0]), np.array([5.0, 6.0])]
        )
        np.testing.assert_allclose(merged, [9.0, 12.0])

    def test_convergence_reached(self):
        mo, x, y = dana.model([2], name="mo"), dana.input([2], name="x"), dana.output(name="y")
        tol = dana.meta(10.0, name="tol")
        algo = dana.algo(mo, x, y)
        grad = (dana.sigma(mo * x, 1) - y) * x
        merged = algo.merge(grad, 2, "+")
        algo.setModel(mo - 0.1 * merged)
        algo.setConvergence(dana.norm(merged, 1) < tol)
        algo.setEpochs(5)
        graph = translate(algo)
        evaluator = HDFGEvaluator(graph)
        env = evaluator.initial_env({"mo": np.zeros(2), "x": np.array([1.0, 1.0]), "y": 1.0})
        env = evaluator.evaluate(env, [Region.UPDATE_RULE])
        merge_node = graph.node(graph.merge_node_ids[0])
        env[merge_node.node_id] = env[merge_node.inputs[0]]
        env = evaluator.evaluate(env, [Region.POST_MERGE, Region.CONVERGENCE])
        assert evaluator.convergence_reached(env)  # |grad| = sqrt(2) < 10
