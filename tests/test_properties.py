"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsl import Operator
from repro.exceptions import DimensionError
from repro.hw.strider import Strider
from repro.hw.tree_bus import TreeBus
from repro.isa import Operand, StriderInstruction, StriderOpcode
from repro.compiler.strider_compiler import compile_strider
from repro.rdbms.heaptuple import decode_tuple, encode_tuple
from repro.rdbms.page import HeapPage, PageLayout
from repro.rdbms.types import ColumnType, Schema
from repro.translator import broadcast_primary, group_fused, group_single

# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #
finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)
small_dims = st.lists(st.integers(min_value=1, max_value=6), min_size=0, max_size=3).map(tuple)


class TestPageProperties:
    @settings(max_examples=50, deadline=None)
    @given(rows=st.lists(st.lists(finite_floats, min_size=4, max_size=4), min_size=1, max_size=60))
    def test_page_round_trip_any_rows(self, rows):
        """Inserting rows and re-reading the binary page preserves them."""
        schema = Schema.training_schema(3)
        page = HeapPage(PageLayout(page_size=8 * 1024))
        for row in rows:
            page.insert(schema, row)
        restored = HeapPage.from_bytes(page.to_bytes(), PageLayout(page_size=8 * 1024))
        recovered = list(restored.tuples(schema))
        assert len(recovered) == len(rows)
        np.testing.assert_allclose(np.asarray(recovered), np.float32(rows), rtol=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(finite_floats, min_size=5, max_size=5))
    def test_tuple_encode_decode(self, values):
        schema = Schema.training_schema(4)
        decoded = decode_tuple(schema, encode_tuple(schema, values))
        np.testing.assert_allclose(decoded, np.float32(values), rtol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        n_rows=st.integers(min_value=1, max_value=80),
        n_features=st.integers(min_value=1, max_value=24),
    )
    def test_strider_extraction_is_lossless(self, n_rows, n_features):
        """Whatever fits on one page, the Strider extracts all of it, in order."""
        schema = Schema.training_schema(n_features)
        layout = PageLayout(page_size=32 * 1024)
        rng = np.random.default_rng(n_rows * 31 + n_features)
        rows = rng.normal(size=(n_rows, n_features + 1)).astype(np.float32)
        page = HeapPage(layout)
        inserted = 0
        for row in rows:
            if not page.has_room(schema):
                break
            page.insert(schema, row.tolist())
            inserted += 1
        compiled = compile_strider(layout, schema)
        result = Strider(compiled.program).process_page(page.to_bytes())
        assert result.stats.tuples_emitted == inserted
        assert all(len(p) == schema.row_width for p in result.payloads)


class TestISAProperties:
    @settings(max_examples=200, deadline=None)
    @given(word=st.integers(min_value=0, max_value=(1 << 22) - 1))
    def test_decode_encode_round_trip_when_valid(self, word):
        """Any 22-bit word with a valid opcode survives decode → encode."""
        opcode_value = word >> 18
        if opcode_value > 10:
            with pytest.raises(Exception):
                StriderInstruction.decode(word)
            return
        assert StriderInstruction.decode(word).encode() == word

    @settings(max_examples=100, deadline=None)
    @given(field=st.integers(min_value=0, max_value=63))
    def test_operand_field_round_trip(self, field):
        assert Operand.decode(field).encode() == field


class TestDimensionProperties:
    @settings(max_examples=100, deadline=None)
    @given(dims=small_dims)
    def test_broadcast_is_commutative_and_idempotent(self, dims):
        assert broadcast_primary(dims, dims) == dims
        assert broadcast_primary((), dims) == dims
        assert broadcast_primary(dims, ()) == dims

    @settings(max_examples=100, deadline=None)
    @given(dims=small_dims.filter(lambda d: len(d) >= 1), axis=st.integers(min_value=1, max_value=3))
    def test_group_single_removes_exactly_one_axis(self, dims, axis):
        if axis > len(dims):
            with pytest.raises(DimensionError):
                group_single(dims, axis)
            return
        out = group_single(dims, axis)
        assert len(out) == len(dims) - 1
        # every surviving extent appears in the input
        assert np.prod(out, dtype=np.int64) * dims[axis - 1] == np.prod(dims, dtype=np.int64)

    @settings(max_examples=100, deadline=None)
    @given(
        left=st.integers(min_value=1, max_value=6),
        right=st.integers(min_value=1, max_value=6),
        shared=st.integers(min_value=1, max_value=8),
    )
    def test_group_fused_contraction_shape(self, left, right, shared):
        out = group_fused((left, shared), (right, shared), 2)
        assert out == (left, right) or (left, shared) == (right, shared) and out == (left,)


class TestMergeProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        vectors=st.lists(
            st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=3, max_size=3),
            min_size=1,
            max_size=9,
        )
    )
    def test_tree_merge_equals_flat_sum(self, vectors):
        """Pairwise tree reduction must equal a flat sum (merge associativity)."""
        bus = TreeBus(alu_count=4)
        arrays = [np.asarray(v) for v in vectors]
        merged = bus.merge(arrays, Operator.ADD)
        np.testing.assert_allclose(merged, np.sum(arrays, axis=0), rtol=1e-9, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        threads=st.integers(min_value=1, max_value=64),
        elements=st.integers(min_value=1, max_value=500),
    )
    def test_merge_cycles_monotone(self, threads, elements):
        bus = TreeBus(alu_count=8)
        cycles = bus.merge_cycles(threads, elements)
        assert cycles >= 0
        assert bus.merge_cycles(threads * 2, elements) >= cycles


class TestSchedulerProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        n_features=st.integers(min_value=2, max_value=48),
        acs=st.integers(min_value=1, max_value=8),
    )
    def test_schedule_operation_count_invariant(self, n_features, acs):
        """The scheduler never drops or duplicates atomic operations."""
        from repro.algorithms import Hyperparameters, LinearRegression
        from repro.compiler import Scheduler, SubNodeExpander
        from repro.translator import Region, translate

        spec = LinearRegression().build_spec(n_features, Hyperparameters(merge_coefficient=4))
        graph = translate(spec.algo)
        expander = SubNodeExpander(graph)
        expected = sum(
            len(expander.expand(node))
            for node in graph.compute_nodes([Region.UPDATE_RULE])
        )
        schedule = Scheduler(graph, acs_per_thread=acs).schedule()
        scheduled = sum(
            instruction.enabled_au_count
            for step in schedule.program.update_rule_steps
            for instruction in step.cluster_instructions
        )
        assert scheduled == expected
        # resource safety: never more clusters per step than allocated
        for step in schedule.program.update_rule_steps:
            assert len(step.cluster_instructions) <= acs


class TestBufferPoolProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        accesses=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=60),
    )
    def test_pool_never_exceeds_capacity_and_counts_add_up(self, capacity, accesses):
        from repro.rdbms.buffer_pool import BufferPool
        from repro.rdbms.storage import StorageManager

        storage = StorageManager()
        storage.create_file("f", 256)
        for i in range(16):
            storage.append_page("f", bytes([i]) * 256)
        pool = BufferPool(storage, pool_bytes=capacity * 256, page_size=256)
        for page_no in accesses:
            pool.get_page("f", page_no)
        assert len(pool) <= capacity
        assert pool.stats.hits + pool.stats.misses == len(accesses)
        assert pool.stats.misses >= len(set(accesses)) - capacity
