"""Prediction-serving subsystem: registry, inference tape, scorers, server.

Covers the PR-4 contract:

* the forward slice recovers the right score node for all four algorithms
  and never crosses a merge boundary;
* batched inference tape == per-tuple evaluator forward pass — predictions
  *and* schedule-derived cycle counters — across segment counts;
* registry round trips are bit-identical, and missing/mismatched models
  fail fast with :class:`ConfigurationError`;
* the micro-batching prediction server returns the same predictions as the
  direct path and reports sane latency/throughput statistics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import Hyperparameters, get_algorithm
from repro.core import DAnA
from repro.data.synthetic import generate_for_algorithm
from repro.exceptions import ConfigurationError, TranslationError
from repro.perf import ScoreRunCost, measured_serving_sweep
from repro.rdbms import Database
from repro.serving import MODEL_PARAM_SCHEMA, model_table_name
from repro.translator import NodeKind, Region, forward_slice, translate

N_FEATURES = 8
N_TUPLES = 600
LRMF_TOPOLOGY = (24, 18, 4)

DENSE_ALGORITHMS = ("linear", "logistic", "svm")
ALL_ALGORITHMS = DENSE_ALGORITHMS + ("lrmf",)


def build_system(algorithm_key: str, n_tuples: int = N_TUPLES):
    """A DAnA instance with one registered UDF and a loaded table."""
    algorithm = get_algorithm(algorithm_key)
    if algorithm_key == "lrmf":
        hyper = Hyperparameters(learning_rate=0.05, epochs=2, rank=LRMF_TOPOLOGY[2])
        spec = algorithm.build_spec(0, hyper, model_topology=LRMF_TOPOLOGY)
        data = generate_for_algorithm(
            algorithm_key, n_tuples, LRMF_TOPOLOGY[2], seed=0,
            model_topology=LRMF_TOPOLOGY[:2],
        )
    else:
        hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=16, epochs=2)
        spec = algorithm.build_spec(N_FEATURES, hyper)
        data = generate_for_algorithm(algorithm_key, n_tuples, N_FEATURES, seed=0)
    database = Database()
    database.load_table("t", spec.schema, data)
    system = DAnA(database)
    system.register_udf(algorithm_key, spec, epochs=2)
    return system, spec, data


def trained_models(system: DAnA, algorithm_key: str) -> dict[str, np.ndarray]:
    return system.train(algorithm_key, "t", epochs=2).models


# ---------------------------------------------------------------------- #
# forward lowering
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("key", ALL_ALGORITHMS)
def test_forward_slice_is_merge_free_update_rule_only(key):
    system, spec, _data = build_system(key, n_tuples=64)
    forward = forward_slice(translate(spec.algo))
    kinds = {node.kind for node in forward.graph.nodes()}
    assert NodeKind.MERGE not in kinds
    assert NodeKind.UPDATE not in kinds
    assert all(
        node.region is Region.UPDATE_RULE for node in forward.graph.nodes()
    )
    # No label dependence: every output binding is sliced away.
    assert all(b.kind != "output" for b in forward.graph.bindings)


def test_forward_slice_scores_match_closed_form():
    rng = np.random.default_rng(3)
    X = np.hstack([rng.normal(size=(40, N_FEATURES)), np.zeros((40, 1))])
    w = rng.normal(size=N_FEATURES)

    system, _spec, _data = build_system("linear", n_tuples=64)
    preds = system.predict("linear", X, models={"mo": w})
    np.testing.assert_allclose(preds, X[:, :N_FEATURES] @ w, rtol=1e-9)

    system, _spec, _data = build_system("logistic", n_tuples=64)
    preds = system.predict("logistic", X, models={"mo": w})
    np.testing.assert_allclose(
        preds, 1.0 / (1.0 + np.exp(-(X[:, :N_FEATURES] @ w))), rtol=1e-9
    )

    system, _spec, _data = build_system("svm", n_tuples=64)
    preds = system.predict("svm", X, models={"mo": w})
    np.testing.assert_allclose(preds, X[:, :N_FEATURES] @ w, rtol=1e-9)


def test_forward_slice_lrmf_gathers_factor_rows():
    system, _spec, data = build_system("lrmf", n_tuples=128)
    models = trained_models(system, "lrmf")
    preds = system.predict("lrmf", data, models=models)
    rows = data[:, 0].astype(int)
    cols = data[:, 1].astype(int)
    expected = np.sum(models["L"][rows] * models["R"][cols], axis=1)
    np.testing.assert_allclose(preds, expected, rtol=1e-9)


def test_forward_slice_rejects_label_free_graph():
    from repro import dana

    mo = dana.model([2], name="mo")
    x = dana.input([2], name="x")
    y = dana.output(name="y")
    algo = dana.algo(mo, x, y, name="labelfree")
    algo.setModel(mo - dana.meta(0.1, name="lr") * mo)
    algo.setEpochs(1)
    with pytest.raises(TranslationError):
        forward_slice(translate(algo))


# ---------------------------------------------------------------------- #
# parity: batched tape vs per-tuple oracle
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("key", ALL_ALGORITHMS)
@pytest.mark.parametrize("segments", [1, 2, 4])
def test_score_table_batched_matches_per_tuple_oracle(key, segments):
    system, _spec, _data = build_system(key)
    models = trained_models(system, key)
    batched = system.score_table(key, "t", models=models, segments=segments)
    oracle = system.score_table(
        key, "t", models=models, segments=segments, path="per_tuple"
    )
    np.testing.assert_array_equal(batched.predictions, oracle.predictions)
    assert batched.inference_stats == oracle.inference_stats
    for seg_b, seg_o in zip(batched.segments, oracle.segments):
        assert seg_b.inference_stats == seg_o.inference_stats
        assert seg_b.access_stats == seg_o.access_stats
    assert batched.tuples_scored == system.database.catalog.table("t").tuple_count


@pytest.mark.parametrize("segments", [1, 2, 4])
def test_score_table_order_is_storage_order(segments):
    system, _spec, _data = build_system("linear")
    models = trained_models(system, "linear")
    sharded = system.score_table("linear", "t", models=models, segments=segments)
    rows = system.database.table("t").read_all(system.database.buffer_pool)
    direct = system.predict("linear", rows, models=models)
    np.testing.assert_array_equal(sharded.predictions, direct)


def test_predict_single_row_returns_scalar():
    system, _spec, data = build_system("linear", n_tuples=64)
    models = trained_models(system, "linear")
    single = system.predict("linear", data[0], models=models)
    block = system.predict("linear", data[:1], models=models)
    assert np.ndim(single) == 0
    assert block.shape == (1,)
    assert float(single) == float(block[0])


def test_predict_counters_are_schedule_derived_and_path_identical():
    system, _spec, data = build_system("linear", n_tuples=200)
    models = trained_models(system, "linear")
    plan = system._inference_plan(system._registered("linear"))
    fast, slow = plan.new_engine(), plan.new_engine()
    p_fast = fast.score(data, models, path="batched", batch_size=64)
    p_slow = slow.score(data, models, path="per_tuple", batch_size=64)
    np.testing.assert_array_equal(p_fast, p_slow)
    assert fast.stats == slow.stats
    assert fast.stats.batches_scored == -(-200 // 64)
    assert fast.stats.forward_cycles > 0
    # ceil(batch/threads) rounds per batch, schedule cycles per round.
    rounds = sum(
        -(-min(64, 200 - start) // plan.threads) for start in range(0, 200, 64)
    )
    assert fast.stats.forward_cycles == rounds * plan.forward_cycles_per_round


# ---------------------------------------------------------------------- #
# model registry
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("key", ["linear", "lrmf"])
def test_registry_round_trip_is_bit_identical(key):
    system, _spec, _data = build_system(key)
    models = trained_models(system, key)
    entry = system.save_model("prod", key, models)
    assert entry.version == 1
    assert system.database.catalog.has_table(model_table_name("prod", 1))
    loaded = system.load_model("prod")
    assert set(loaded) == set(models)
    for name, value in models.items():
        assert loaded[name].dtype == np.float64
        np.testing.assert_array_equal(loaded[name], np.asarray(value, np.float64))
    # Saved-model predictions are bit-identical to in-memory predictions.
    in_memory = system.score_table(key, "t", models=models)
    from_registry = system.score_table(key, "t", model_name="prod")
    np.testing.assert_array_equal(in_memory.predictions, from_registry.predictions)


def test_registry_versions_increment_and_load_by_version():
    system, _spec, _data = build_system("linear", n_tuples=64)
    m1 = {"mo": np.arange(N_FEATURES, dtype=np.float64)}
    m2 = {"mo": np.arange(N_FEATURES, dtype=np.float64) * 2}
    assert system.save_model("m", "linear", m1).version == 1
    assert system.save_model("m", "linear", m2).version == 2
    np.testing.assert_array_equal(system.load_model("m", version=1)["mo"], m1["mo"])
    np.testing.assert_array_equal(system.load_model("m")["mo"], m2["mo"])
    assert system.registry.versions("m") == [1, 2]
    # Parameter tables are real catalogued heap tables.
    assert system.database.catalog.table(model_table_name("m", 2)).schema == (
        MODEL_PARAM_SCHEMA
    )


def test_registry_missing_model_and_version_fail_fast():
    system, _spec, _data = build_system("linear", n_tuples=64)
    with pytest.raises(ConfigurationError, match="no saved model"):
        system.load_model("ghost")
    system.save_model("m", "linear", {"mo": np.zeros(N_FEATURES)})
    with pytest.raises(ConfigurationError, match="no version 7"):
        system.load_model("m", version=7)
    with pytest.raises(ConfigurationError, match="no saved model"):
        system.predict("linear", np.zeros((1, N_FEATURES)), model_name="ghost")


def test_mismatched_model_fails_fast():
    system, _spec, _data = build_system("linear", n_tuples=64)
    algorithm = get_algorithm("svm")
    svm_spec = algorithm.build_spec(N_FEATURES, Hyperparameters())
    system.register_udf("svm", svm_spec, epochs=1)
    system.save_model("svm_model", "svm", {"mo": np.zeros(N_FEATURES)})
    with pytest.raises(ConfigurationError, match="trained by algorithm"):
        system.predict(
            "linear", np.zeros((1, N_FEATURES)), model_name="svm_model"
        )
    with pytest.raises(ConfigurationError, match="shape"):
        system.predict(
            "linear", np.zeros((1, N_FEATURES)), models={"mo": np.zeros(3)}
        )
    with pytest.raises(ConfigurationError, match="parameters"):
        system.predict(
            "linear", np.zeros((1, N_FEATURES)), models={"w": np.zeros(N_FEATURES)}
        )
    with pytest.raises(ConfigurationError, match="shape"):
        system.save_model("bad", "linear", {"mo": np.zeros(3)})


def test_serving_kwargs_validated_up_front():
    system, _spec, data = build_system("linear", n_tuples=64)
    models = {"mo": np.zeros(N_FEATURES)}
    with pytest.raises(ConfigurationError, match="exactly one of"):
        system.predict("linear", data, models=models, model_name="m")
    with pytest.raises(ConfigurationError, match="exactly one of"):
        system.predict("linear", data)
    with pytest.raises(ConfigurationError, match="serving path"):
        system.predict("linear", data, models=models, path="vectorized")
    with pytest.raises(ConfigurationError, match="batch_size"):
        system.predict("linear", data, models=models, batch_size=0)
    with pytest.raises(ConfigurationError, match="segments"):
        system.score_table("linear", "t", models=models, segments=0)
    with pytest.raises(ConfigurationError, match="partition strategy"):
        system.score_table("linear", "t", models=models, partition_strategy="range")
    with pytest.raises(ConfigurationError, match="max_batch_size"):
        system.serve("linear", models=models, max_batch_size=0)
    with pytest.raises(ConfigurationError, match="max_wait_ms"):
        system.serve("linear", models=models, max_wait_ms=-1.0)
    with pytest.raises(ConfigurationError, match="not registered"):
        system.predict("ghost_udf", data, models=models)


# ---------------------------------------------------------------------- #
# micro-batching prediction server
# ---------------------------------------------------------------------- #
def test_prediction_server_matches_direct_predictions():
    system, _spec, data = build_system("linear", n_tuples=200)
    models = trained_models(system, "linear")
    direct = system.predict("linear", data, models=models)
    with system.serve(
        "linear", models=models, max_batch_size=32, max_wait_ms=2.0
    ) as server:
        futures = [server.submit(row) for row in data]
        served = np.array([f.result(timeout=30) for f in futures])
    np.testing.assert_allclose(served, direct, rtol=1e-12)
    stats = server.stats
    assert stats.requests == len(data)
    assert 1 <= stats.batches <= len(data)
    assert stats.mean_batch_size >= 1.0
    assert stats.p99_latency_ms >= stats.p50_latency_ms >= 0.0
    assert stats.requests_per_second > 0


def test_prediction_server_coalesces_queued_requests():
    system, _spec, data = build_system("linear", n_tuples=64)
    models = trained_models(system, "linear")
    # A wait window much longer than the submission loop forces the scorer
    # to coalesce the burst into max_batch_size-bounded micro-batches.
    with system.serve(
        "linear", models=models, max_batch_size=16, max_wait_ms=200.0
    ) as server:
        futures = [server.submit(row) for row in data[:32]]
        served = np.array([f.result(timeout=30) for f in futures])
    direct = system.predict("linear", data[:32], models=models)
    np.testing.assert_allclose(served, direct, rtol=1e-12)
    assert server.stats.requests == 32
    assert server.stats.batches < 32
    assert server.stats.mean_batch_size > 1.0


def test_prediction_server_restarts_after_stop():
    system, _spec, data = build_system("linear", n_tuples=64)
    models = trained_models(system, "linear")
    server = system.serve("linear", models=models, max_batch_size=8, max_wait_ms=1.0)
    server.start()
    first = server.predict(data[0])
    server.stop()
    server.start()  # a stopped server must be restartable
    try:
        assert server.predict(data[0]) == first
    finally:
        server.stop()


def test_prediction_server_survives_cancelled_futures():
    system, _spec, data = build_system("linear", n_tuples=64)
    models = {"mo": np.ones(N_FEATURES)}
    with system.serve(
        "linear", models=models, max_batch_size=4, max_wait_ms=10.0
    ) as server:
        doomed = server.submit(data[0])
        doomed.cancel()  # client gave up before the scorer picked it up
        alive = server.submit(data[1])
        # The scorer must survive delivering into the cancelled future and
        # keep serving everyone else.
        assert np.isfinite(alive.result(timeout=30))
        assert float(server.predict(data[2])) == pytest.approx(
            float(np.sum(data[2][:N_FEATURES]))
        )


def test_registry_rejects_duplicate_element_indices():
    system, _spec, _data = build_system("linear", n_tuples=64)
    system.save_model("m", "linear", {"mo": np.arange(N_FEATURES, dtype=np.float64)})
    # Corrupt the parameter table: right row count, but one element index
    # duplicated and one missing — must fail loudly, not return garbage.
    table = model_table_name("m", 1)
    system.database.drop_table(table)
    rows = [(0, i, float(i)) for i in range(N_FEATURES)]
    rows[1] = (0, 0, 99.0)  # idx 1 missing, idx 0 duplicated
    system.database.load_table(table, MODEL_PARAM_SCHEMA, rows)
    with pytest.raises(ConfigurationError, match="corrupt"):
        system.load_model("m")


def test_score_table_counters_independent_of_call_order():
    # A predict() before score_table() (which compiles a nominal table-less
    # design) must not change the table scoring's schedule-derived counters.
    system_a, _spec, data = build_system("linear")
    system_b, _spec2, _data2 = build_system("linear")
    models = {"mo": np.linspace(-1.0, 1.0, N_FEATURES)}
    system_a.predict("linear", data[:4], models=models)
    scored_a = system_a.score_table("linear", "t", models=models, segments=2)
    scored_b = system_b.score_table("linear", "t", models=models, segments=2)
    assert scored_a.inference_stats == scored_b.inference_stats
    np.testing.assert_array_equal(scored_a.predictions, scored_b.predictions)


def test_prediction_server_rejects_when_stopped_and_bad_rows():
    system, _spec, data = build_system("linear", n_tuples=64)
    models = {"mo": np.zeros(N_FEATURES)}
    server = system.serve("linear", models=models)
    with pytest.raises(ConfigurationError, match="not running"):
        server.submit(data[0])
    with server:
        with pytest.raises(ConfigurationError, match="1-D"):
            server.submit(data[:2])
        assert server.predict(data[0]) == pytest.approx(0.0)
    with pytest.raises(ConfigurationError, match="not running"):
        server.submit(data[0])


# ---------------------------------------------------------------------- #
# model hot-swap
# ---------------------------------------------------------------------- #
def test_hot_swap_scores_later_requests_with_new_model():
    system, _spec, data = build_system("linear", n_tuples=64)
    v1 = {"mo": np.zeros(N_FEATURES)}
    v2 = {"mo": np.ones(N_FEATURES)}
    system.save_model("m", "linear", v1)
    with system.serve("linear", model_name="m", max_wait_ms=1.0) as server:
        assert server.model_version == 1
        before = [server.predict(row) for row in data[:4]]
        system.save_model("m", "linear", v2)
        entry = server.reload()  # latest version
        assert entry.version == 2 and server.model_version == 2
        after = [server.predict(row) for row in data[:4]]
    assert all(value == 0.0 for value in before)
    expected = np.sum(data[:4, :N_FEATURES], axis=1)
    np.testing.assert_allclose(after, expected, rtol=1e-12)
    assert server.stats.swaps == 1
    # Bit-identical to a cold restart on the new version.
    with system.serve("linear", model_name="m", max_wait_ms=1.0) as cold:
        cold_preds = [cold.predict(row) for row in data[:4]]
    np.testing.assert_array_equal(after, cold_preds)


def test_hot_swap_by_explicit_version_and_rollback():
    system, _spec, data = build_system("linear", n_tuples=64)
    system.save_model("m", "linear", {"mo": np.zeros(N_FEATURES)})
    system.save_model("m", "linear", {"mo": np.ones(N_FEATURES)})
    with system.serve("linear", model_name="m") as server:
        assert server.model_version == 2
        server.reload(version=1)  # rollback
        assert server.model_version == 1
        assert server.predict(data[0]) == pytest.approx(0.0)
        with pytest.raises(ConfigurationError, match="no version 9"):
            server.reload(version=9)
        # A failed reload leaves the served model untouched.
        assert server.model_version == 1
        assert server.predict(data[1]) == pytest.approx(0.0)


def test_hot_swap_during_active_drain_is_batch_atomic():
    """Swap while a burst is in flight: every request scores with exactly
    the old or the new model — never a half-swapped mixture — and requests
    submitted after the swap returns use the new version."""
    system, _spec, data = build_system("linear", n_tuples=256)
    v1 = {"mo": np.zeros(N_FEATURES)}
    v2 = {"mo": np.ones(N_FEATURES)}
    system.save_model("m", "linear", v1)
    system.save_model("m", "linear", v2)
    expected_v2 = np.sum(data[:, :N_FEATURES], axis=1)
    with system.serve(
        "linear", model_name="m", version=1, max_batch_size=8, max_wait_ms=5.0
    ) as server:
        in_flight = [server.submit(row) for row in data[:128]]
        server.reload(version=2)  # concurrent with the draining burst
        late = [server.submit(row) for row in data[128:160]]
        drained = np.array([f.result(timeout=30) for f in in_flight])
        late_preds = np.array([f.result(timeout=30) for f in late])
    # In-flight requests score with one of the two models, atomically.
    for index, value in enumerate(drained):
        assert value == pytest.approx(0.0) or value == pytest.approx(
            expected_v2[index], rel=1e-12
        )
    # Requests submitted after reload() returned must use the new model:
    # reload swaps under the server lock, and batches snapshot at score
    # time, so nothing submitted later can see the old parameters.
    np.testing.assert_allclose(late_preds, expected_v2[128:160], rtol=1e-12)
    assert server.stats.swaps == 1


def test_swap_models_requires_registry_backing_for_reload():
    system, _spec, data = build_system("linear", n_tuples=64)
    server = system.serve("linear", models={"mo": np.zeros(N_FEATURES)})
    assert server.model_version is None
    with pytest.raises(ConfigurationError, match="in-memory model mapping"):
        server.reload()
    with pytest.raises(ConfigurationError, match="non-empty model mapping"):
        server.swap_models({})
    # In-memory swap still works (no registry round trip).
    with server:
        server.swap_models({"mo": np.ones(N_FEATURES)})
        assert server.predict(data[0]) == pytest.approx(
            float(np.sum(data[0][:N_FEATURES]))
        )
    assert server.stats.swaps == 1


# ---------------------------------------------------------------------- #
# serving cost model
# ---------------------------------------------------------------------- #
def test_score_run_cost_books_critical_path_and_cost_column():
    system, _spec, _data = build_system("linear")
    models = trained_models(system, "linear")
    result = system.score_table("linear", "t", models=models, segments=2)
    cost = ScoreRunCost.from_result(result)
    assert cost.segments == 2
    assert cost.tuples_scored == N_TUPLES
    assert cost.critical_path_cycles == result.critical_path_cycles
    assert cost.critical_path_cycles >= cost.pipelined_critical_path_cycles > 0
    assert cost.inference_cycles_per_tuple > 0
    assert cost.seconds() > 0
    assert cost.tuples_per_second() > 0
    (row,) = measured_serving_sweep([result])
    assert row["segments"] == 2
    assert row["inference_cycles_per_tuple"] == pytest.approx(
        cost.inference_cycles_per_tuple, rel=1e-2
    )


def test_empty_table_scores_empty():
    algorithm = get_algorithm("linear")
    spec = algorithm.build_spec(N_FEATURES, Hyperparameters())
    database = Database()
    database.load_table("empty", spec.schema, np.empty((0, N_FEATURES + 1)))
    system = DAnA(database)
    system.register_udf("linear", spec)
    result = system.score_table(
        "linear", "empty", models={"mo": np.zeros(N_FEATURES)}
    )
    assert result.tuples_scored == 0
    assert result.predictions.shape[0] == 0
