"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "smoke: end-to-end smoke tests (example scripts, CLI entry points)"
    )
    config.addinivalue_line(
        "markers", "slow: tests that take more than a couple of seconds"
    )
    config.addinivalue_line(
        "markers",
        "chaos: fault-injection parity tests (retried runs must be "
        "bit-identical to fault-free runs)",
    )

from repro import dana
from repro.algorithms import Hyperparameters, LinearRegression
from repro.rdbms import Database, Schema
from repro.translator import translate


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def small_regression_data(rng):
    """200 tuples, 4 features, exact linear target (no noise)."""
    X = rng.normal(size=(200, 4))
    w = np.array([2.0, -1.0, 0.5, 3.0])
    y = X @ w
    return np.hstack([X, y[:, None]])


@pytest.fixture
def linear_spec():
    """A compiled-ready linear-regression spec with 4 features."""
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=8, epochs=30)
    return LinearRegression().build_spec(4, hyper)


@pytest.fixture
def linear_graph(linear_spec):
    return translate(linear_spec.algo)


@pytest.fixture
def small_database(small_regression_data, linear_spec):
    """A database with the small regression table loaded (8 KB pages)."""
    db = Database(page_size=8 * 1024)
    db.load_table("train", linear_spec.schema, small_regression_data)
    return db


@pytest.fixture
def linear_algo_factory():
    """Builds a fresh linear-regression DSL program (update rule of §4.3)."""

    def build(n_features=4, merge_coefficient=8, learning_rate=0.05, epochs=10):
        mo = dana.model([n_features], name="mo")
        x = dana.input([n_features], name="x")
        y = dana.output(name="y")
        lr = dana.meta(learning_rate, name="lr")
        coeff = dana.meta(float(merge_coefficient), name="mc")
        algo = dana.algo(mo, x, y, name="linearR")
        s = dana.sigma(mo * x, 1)
        grad = (s - y) * x
        merged = algo.merge(grad, merge_coefficient, "+")
        algo.setModel(mo - lr * (merged / coeff))
        algo.setEpochs(epochs)
        return algo

    return build
