"""Run-registry tests: heap-table persistence, SQL read-back, fault log.

Every recorded ``DAnA.train`` / ``score_table`` / bench invocation must
land as real heap-table rows (``repro_runs`` + ``repro_run_metrics``)
readable through the SQL executor, with the string-valued parts (labels,
config, git rev, fired faults, retry counters) joined from the catalog.
"""

import numpy as np
import pytest

from repro.algorithms import Hyperparameters, get_algorithm
from repro.core.dana import DAnA
from repro.data.synthetic import generate_for_algorithm
from repro.exceptions import CatalogError
from repro.obs import (
    RUN_METRICS_TABLE,
    RUNS_TABLE,
    RunRecorder,
    enable_telemetry,
)
from repro.obs.recorder import git_revision
from repro.rdbms import Database
from repro.rdbms.catalog import RunEntry
from repro.reliability import FaultPlan, RetryPolicy, inject_faults

RETRY = RetryPolicy(max_attempts=3, backoff_s=0.0)


def _recording_system(n_tuples=192, epochs=2, seed=11):
    """A DAnA system with run recording on and one linear UDF loaded."""
    algorithm = get_algorithm("linear")
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=8, epochs=epochs)
    spec = algorithm.build_spec(6, hyper)
    data = generate_for_algorithm("linear", n_tuples, 6, seed=seed)
    database = Database(page_size=8 * 1024)
    database.load_table("train", spec.schema, data)
    database.warm_cache("train")
    system = DAnA(database, record_runs=True)
    system.register_udf("linear", spec, epochs=epochs)
    return system


class TestTrainAndScoreRecording:
    def test_train_then_score_lands_in_heap_tables(self):
        system = _recording_system()
        recorder = system.run_recorder
        run = system.train("linear", "train", segments=2)
        system.save_model("m", "linear", run.models)
        system.score_table("linear", "train", model_name="m")

        runs = recorder.runs()
        assert [r["kind"] for r in runs] == ["train", "score"]
        train_rec, score_rec = runs
        assert train_rec["run_id"] == 1
        assert train_rec["label"] == "linear"
        assert train_rec["algorithm"] == "linear"
        assert train_rec["segments"] == 2
        assert train_rec["epochs"] == run.epochs_run
        assert train_rec["tuples"] == run.tuples_extracted
        assert train_rec["cycles"] == run.engine_stats.total_cycles
        assert train_rec["wall_ms"] > 0.0
        assert train_rec["git_rev"] == git_revision()
        assert score_rec["run_id"] == 2
        assert score_rec["model"] == "m:v1"

    def test_sql_read_back(self):
        system = _recording_system()
        run = system.train("linear", "train", segments=2)
        system.score_table("linear", "train", models=run.models)

        headline = system.execute(f"SELECT * FROM {RUNS_TABLE}")
        assert len(headline.rows) == 2
        assert headline.columns[0] == "run_id"
        metrics = system.execute(
            f"SELECT * FROM {RUN_METRICS_TABLE} WHERE run_id = 2"
        )
        assert len(metrics.rows) >= 5
        assert all(int(row[0]) == 2 for row in metrics.rows)

    def test_run_detail_round_trip(self):
        system = _recording_system()
        recorder = system.run_recorder
        system.train("linear", "train", segments=2, seed=7)
        detail = recorder.run_detail(1)
        assert detail["config"]["segments"] == 2
        assert detail["config"]["seed"] == 7
        metrics = detail["metrics"]
        assert metrics["engine.total_cycles"] == detail["cycles"]
        assert metrics["access.tuples_extracted"] == detail["tuples"]
        assert metrics["cluster.merges_performed"] >= 1
        assert metrics["wall_seconds"] > 0.0
        assert detail["faults"] == []

    def test_unknown_run_raises(self):
        system = _recording_system()
        with pytest.raises(CatalogError):
            system.run_recorder.run_detail(99)

    def test_recording_off_by_default(self):
        database = Database(page_size=8 * 1024)
        assert DAnA(database).run_recorder is None

    def test_span_rollups_recorded_when_armed(self):
        system = _recording_system()
        with enable_telemetry():
            system.train("linear", "train", segments=2)
        metrics = system.run_recorder.run_detail(1)["metrics"]
        assert metrics["span.runtime.epoch.count"] >= 2
        assert metrics["span.cluster.segment.merge.seconds"] > 0.0

    def test_recorded_run_is_bit_identical_to_unrecorded(self):
        recorded = _recording_system()
        plain_db = recorded.database  # fresh twin below
        unrecorded = _recording_system()
        unrecorded_system = DAnA(unrecorded.database)  # recording off
        del plain_db
        baseline = unrecorded.train("linear", "train", segments=2)
        result = recorded.train("linear", "train", segments=2)
        for name in baseline.models:
            np.testing.assert_array_equal(baseline.models[name], result.models[name])
        assert baseline.engine_stats.__dict__ == result.engine_stats.__dict__
        del unrecorded_system


@pytest.mark.chaos
class TestFaultAndRetryRecording:
    def test_fired_faults_and_retries_in_run_record(self):
        system = _recording_system()
        plan = FaultPlan.transient(
            ("hw.strider.page_walk", 2),
            ("runtime.batch_source.producer", 1),
        )
        with inject_faults(plan):
            system.train("linear", "train", stream=True, retry=RETRY)
        runs = system.run_recorder.runs()
        assert runs[0]["faults"] == 2
        assert runs[0]["retries"] >= 2
        detail = system.run_recorder.run_detail(1)
        assert {f["site"] for f in detail["faults"]} <= {
            "hw.strider.page_walk",
            "runtime.batch_source.producer",
        }
        assert all(f["kind"] == "error" for f in detail["faults"])
        assert detail["retry"]["faults"] >= 2
        assert detail["retry"]["retries"] >= 2


class TestBenchRecording:
    def test_record_bench(self):
        system = _recording_system()
        recorder = system.run_recorder
        watch = recorder.begin()
        recorder.record_bench(
            "sweep",
            metrics={"tuples": 100, "cycles": 12, "speedup": 3.5},
            watch=watch,
            config={"workload": "demo"},
        )
        runs = recorder.runs()
        assert runs[0]["kind"] == "bench"
        assert runs[0]["label"] == "sweep"
        assert runs[0]["tuples"] == 100
        detail = recorder.run_detail(1)
        assert detail["metrics"]["speedup"] == 3.5
        assert detail["config"]["workload"] == "demo"


class TestCatalogRunRegistry:
    def test_metric_ids_are_interned(self):
        database = Database(page_size=8 * 1024)
        catalog = database.catalog
        first = catalog.run_metric_id("engine.total_cycles")
        assert catalog.run_metric_id("engine.total_cycles") == first
        other = catalog.run_metric_id("wall_seconds")
        assert other != first
        names = catalog.run_metric_names()
        assert names[first] == "engine.total_cycles"
        assert names[other] == "wall_seconds"

    def test_duplicate_run_id_rejected(self):
        database = Database(page_size=8 * 1024)
        entry = RunEntry(run_id=1, kind="train", label="x")
        database.catalog.register_run(entry)
        with pytest.raises(CatalogError):
            database.catalog.register_run(RunEntry(run_id=1, kind="score", label="y"))

    def test_unknown_kind_rejected(self):
        database = Database(page_size=8 * 1024)
        with pytest.raises(CatalogError):
            database.catalog.register_run(
                RunEntry(run_id=1, kind="mystery", label="x")
            )

    def test_next_run_id_monotonic(self):
        database = Database(page_size=8 * 1024)
        assert database.catalog.next_run_id() == 1
        database.catalog.register_run(RunEntry(run_id=5, kind="bench", label="x"))
        assert database.catalog.next_run_id() == 6


class TestRecorderConcurrency:
    def test_concurrent_bench_records_get_distinct_ids(self):
        import threading

        system = _recording_system()
        recorder = system.run_recorder
        errors = []

        def record(tag):
            try:
                watch = recorder.begin()
                recorder.record_bench(f"sweep-{tag}", metrics={}, watch=watch)
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        threads = [threading.Thread(target=record, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        runs = recorder.runs()
        assert sorted(r["run_id"] for r in runs) == list(range(1, 9))
