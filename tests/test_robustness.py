"""Robustness and failure-injection tests across the stack."""

import numpy as np
import pytest

from repro import dana
from repro.compiler import compile_strider
from repro.exceptions import (
    CompilerError,
    DSLError,
    HardwareError,
    ISAError,
    RDBMSError,
    ReproError,
    StriderError,
    TranslationError,
)
from repro.hw.strider import Strider
from repro.rdbms import Database, HeapPage, PageLayout, Schema
from repro.translator import translate


class TestExceptionHierarchy:
    def test_all_subsystem_errors_are_repro_errors(self):
        for exc in (RDBMSError, DSLError, TranslationError, CompilerError, ISAError, HardwareError):
            assert issubclass(exc, ReproError)

    def test_strider_error_is_hardware_error(self):
        assert issubclass(StriderError, HardwareError)

    def test_catchable_at_the_top_level(self):
        with pytest.raises(ReproError):
            Schema.training_schema(2).encode_row((1.0,))


class TestDanaAliasModule:
    def test_alias_exports_match_dsl(self):
        import repro.dana as dana_module
        import repro.dsl as dsl

        for name in ("model", "input", "output", "meta", "algo", "sigma", "sigmoid", "norm"):
            assert getattr(dana_module, name) is getattr(dsl, name)

    def test_paper_snippet_compiles(self):
        # Verbatim structure of the §4.3 snippet (with Python-legal dims).
        mo = dana.model([10])
        inp = dana.input([10])
        out = dana.output()
        lr = dana.meta(0.3)
        linearR = dana.algo(mo, inp, out)
        s = dana.sigma(mo * inp, 1)
        er = s - out
        grad = er * inp
        up = lr * grad
        mo_up = mo - up
        linearR.setModel(mo_up)
        merge_coef = dana.meta(8)
        linearR.merge(grad, merge_coef, "+")
        convergence_factor = dana.meta(0.01)
        n = dana.norm(grad, 1)
        linearR.setConvergence(n < convergence_factor)
        linearR.setEpochs(10)
        graph = translate(linearR)
        assert graph.convergence_node_id is not None
        assert len(graph.merge_node_ids) == 1


class TestCorruptedPages:
    def test_truncated_page_rejected_by_heap_page(self):
        layout = PageLayout(page_size=8192)
        with pytest.raises(RDBMSError):
            HeapPage.from_bytes(b"\x00" * 100, layout)

    def test_strider_on_zeroed_page_emits_nothing_harmful(self):
        # A zeroed page claims free_space_start == 0 < line-pointer start, so
        # the walk loop exits after its first (do-while) iteration without
        # reading out of bounds.
        layout = PageLayout(page_size=8192)
        schema = Schema.training_schema(4)
        compiled = compile_strider(layout, schema)
        result = Strider(compiled.program).process_page(bytes(8192))
        assert result.stats.tuples_emitted <= 1

    def test_strider_on_garbage_page_fails_safely(self):
        layout = PageLayout(page_size=1024)
        schema = Schema.training_schema(4)
        compiled = compile_strider(layout, schema)
        rng = np.random.default_rng(0)
        garbage = bytes(rng.integers(0, 256, size=1024, dtype=np.uint8))
        strider = Strider(compiled.program, max_instructions=100_000)
        # Either the walk terminates quickly or it raises a StriderError;
        # it must never hang or crash the interpreter.
        try:
            result = strider.process_page(garbage)
            assert result.stats.instructions_executed <= 100_000
        except StriderError:
            pass


class TestEmptyAndEdgeCaseTables:
    def test_empty_table_scan(self):
        db = Database(page_size=8192)
        schema = Schema.training_schema(3)
        db.create_table("empty", schema)
        assert db.execute("SELECT count(*) FROM empty").rows == [(0,)]
        assert db.table("empty").read_all(db.buffer_pool).shape == (0, 4)

    def test_single_tuple_table_trains(self):
        from repro.algorithms import Hyperparameters, LinearRegression
        from repro.core import DAnA

        spec = LinearRegression().build_spec(3, Hyperparameters(merge_coefficient=4, epochs=3))
        db = Database(page_size=8192)
        db.load_table("one", spec.schema, np.array([[1.0, 2.0, 3.0, 4.0]]))
        system = DAnA(db)
        system.register_udf("lr", spec, epochs=3)
        run = system.train("lr", "one")
        assert run.tuples_extracted == 1
        assert np.all(np.isfinite(run.models["mo"]))

    def test_wide_tuple_must_fit_page(self):
        db = Database(page_size=8192)
        schema = Schema.training_schema(5000)
        table = db.create_table("wide", schema)
        with pytest.raises(ReproError):
            table.bulk_load([np.zeros(5001).tolist()])


class TestDSLMisuse:
    def test_group_axis_out_of_range_detected_at_translation(self):
        mo, x, y = dana.model([4], name="mo"), dana.input([4], name="x"), dana.output(name="y")
        algo = dana.algo(mo, x, y)
        algo.setModel(mo - 0.1 * dana.sigma(mo * x, 3) * mo)
        algo.setEpochs(1)
        with pytest.raises(ReproError):
            translate(algo)

    def test_missing_terminator(self):
        mo, x, y = dana.model([4]), dana.input([4]), dana.output()
        algo = dana.algo(mo, x, y)
        algo.setModel(mo)
        with pytest.raises(DSLError):
            translate(algo)


# ---------------------------------------------------------------------- #
# Chaos parity suite (ISSUE 6): deterministic fault injection + retry
# ---------------------------------------------------------------------- #
import threading

from repro.algorithms import Hyperparameters, get_algorithm
from repro.core import DAnA
from repro.data.synthetic import generate_for_algorithm
from repro.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    RetryExhaustedError,
    ServerOverloadedError,
    ServingError,
    TransientError,
)
from repro.reliability import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    RetryStats,
    fault_point,
    inject_faults,
)

LRMF_TOPOLOGY = (24, 18, 4)
ALGORITHMS = ("linear", "logistic", "svm", "lrmf")
#: zero-sleep retry policy used by the chaos runs (tests never wait).
RETRY = RetryPolicy(max_attempts=3, backoff_s=0.0)


def _chaos_system(key, n_tuples=192, epochs=2, seed=11):
    """A fresh DAnA system with one algorithm UDF over a loaded table."""
    algorithm = get_algorithm(key)
    n_features = 4 if key == "lrmf" else 6
    topology = LRMF_TOPOLOGY if key == "lrmf" else ()
    hyper = Hyperparameters(learning_rate=0.05, merge_coefficient=8, epochs=epochs)
    spec = algorithm.build_spec(n_features, hyper, topology)
    data = generate_for_algorithm(key, n_tuples, n_features, LRMF_TOPOLOGY, seed=seed)
    database = Database(page_size=8 * 1024)
    database.load_table("train", spec.schema, data)
    database.warm_cache("train")
    system = DAnA(database)
    system.register_udf(key, spec, epochs=epochs)
    return system, spec


def _assert_models_equal(expected, actual):
    assert set(expected) == set(actual)
    for name in expected:
        np.testing.assert_array_equal(expected[name], actual[name])


def _assert_train_parity(baseline, chaotic):
    """Bit-identical models + schedule-derived counters (retry excluded)."""
    _assert_models_equal(baseline.models, chaotic.models)
    assert baseline.engine_stats.__dict__ == chaotic.engine_stats.__dict__
    assert baseline.access_stats.__dict__ == chaotic.access_stats.__dict__
    assert baseline.tuples_extracted == chaotic.tuples_extracted


def _assert_sharded_parity(baseline, chaotic):
    _assert_train_parity(baseline, chaotic)
    assert baseline.epochs_run == chaotic.epochs_run
    assert baseline.converged == chaotic.converged
    assert len(baseline.segments) == len(chaotic.segments)
    for base_seg, chaos_seg in zip(baseline.segments, chaotic.segments):
        assert base_seg.engine_stats.__dict__ == chaos_seg.engine_stats.__dict__
        assert base_seg.access_stats.__dict__ == chaos_seg.access_stats.__dict__
    assert (
        baseline.cluster.tree_bus.__dict__ == chaotic.cluster.tree_bus.__dict__
    )
    assert baseline.cluster.merges_performed == chaotic.cluster.merges_performed


@pytest.mark.chaos
class TestChaosTrainingParity:
    """Runs that retried injected faults are bit-identical to fault-free."""

    @pytest.mark.parametrize("key", ALGORITHMS)
    def test_single_accelerator_stream_parity(self, key):
        baseline_system, _spec = _chaos_system(key)
        baseline = baseline_system.train(key, "train", stream=True)

        chaos_system, _spec = _chaos_system(key)
        plan = FaultPlan.transient(
            ("hw.strider.page_walk", 2),
            ("runtime.batch_source.producer", 1),
        )
        with inject_faults(plan) as injector:
            chaotic = chaos_system.train(key, "train", stream=True, retry=RETRY)
        assert len(injector.fired) == 2
        assert chaotic.retry_stats.faults >= 2
        assert chaotic.retry_stats.retries >= 2
        _assert_train_parity(baseline, chaotic)

    @pytest.mark.parametrize("key", ALGORITHMS)
    @pytest.mark.parametrize("segments", [1, 2, 4])
    def test_sharded_parity(self, key, segments):
        system, _spec = _chaos_system(key)
        baseline = system.train(key, "train", segments=segments)

        plan = FaultPlan.transient(
            ("cluster.segment_worker.epoch", 1),
            ("hw.strider.page_walk", 2),
            ("runtime.batch_source.producer", 1),
        )
        with inject_faults(plan) as injector:
            chaotic = system.train(key, "train", segments=segments, retry=RETRY)
        assert len(injector.fired) == 3
        assert chaotic.cluster.retry.faults >= 3
        _assert_sharded_parity(baseline, chaotic)

    def test_fault_without_retry_propagates(self):
        system, _spec = _chaos_system("linear")
        with inject_faults(FaultPlan.transient(("cluster.segment_worker.epoch", 1))):
            with pytest.raises(TransientError):
                system.train("linear", "train", segments=2)

    def test_training_rejects_redistribute(self):
        system, _spec = _chaos_system("linear")
        with pytest.raises(ConfigurationError, match="redistribute"):
            system.train(
                "linear",
                "train",
                retry=RetryPolicy(degradation="redistribute"),
            )

    def test_train_rejects_non_policy_retry(self):
        system, _spec = _chaos_system("linear")
        with pytest.raises(ConfigurationError, match="RetryPolicy"):
            system.train("linear", "train", retry=3)

    def test_retry_exhaustion_raises(self):
        system, _spec = _chaos_system("linear")
        plan = FaultPlan.transient(
            ("cluster.segment_worker.epoch", 1),
            ("cluster.segment_worker.epoch", 2),
        )
        policy = RetryPolicy(max_attempts=2, backoff_s=0.0)
        with inject_faults(plan):
            with pytest.raises(RetryExhaustedError, match="training window"):
                system.train("linear", "train", segments=1, retry=policy)

    def test_no_producer_threads_leak(self):
        system, _spec = _chaos_system("linear")
        plan = FaultPlan.transient(("runtime.batch_source.producer", 1))
        with inject_faults(plan):
            system.train("linear", "train", segments=2, retry=RETRY)
        lingering = [
            t for t in threading.enumerate() if t.name == "batch-source-producer"
        ]
        assert lingering == []


@pytest.mark.chaos
class TestChaosScoringParity:
    """Retried / redistributed scoring is bit-identical to fault-free."""

    @pytest.mark.parametrize("key", ALGORITHMS)
    def test_segment_retry_parity(self, key):
        system, spec = _chaos_system(key)
        baseline = system.score_table(
            key, "train", models=spec.initial_models, segments=2
        )
        plan = FaultPlan.transient(
            ("serving.scorer.segment", 1),
            ("serving.inference.score", 2),
        )
        with inject_faults(plan) as injector:
            chaotic = system.score_table(
                key, "train", models=spec.initial_models, segments=2, retry=RETRY
            )
        assert len(injector.fired) == 2
        assert chaotic.retry.faults >= 2
        np.testing.assert_array_equal(baseline.predictions, chaotic.predictions)
        assert (
            baseline.inference_stats.__dict__ == chaotic.inference_stats.__dict__
        )
        for base_seg, chaos_seg in zip(baseline.segments, chaotic.segments):
            assert (
                base_seg.inference_stats.__dict__
                == chaos_seg.inference_stats.__dict__
            )

    @pytest.mark.parametrize("segments", [1, 2, 4])
    def test_streamed_scoring_parity(self, segments):
        system, spec = _chaos_system("linear")
        baseline = system.score_table(
            "linear", "train", models=spec.initial_models, segments=segments
        )
        plan = FaultPlan.transient(
            ("hw.strider.page_walk", 1),
            ("runtime.batch_source.producer", 1),
        )
        with inject_faults(plan) as injector:
            chaotic = system.score_table(
                "linear",
                "train",
                models=spec.initial_models,
                segments=segments,
                retry=RETRY,
            )
        assert len(injector.fired) == 2
        np.testing.assert_array_equal(baseline.predictions, chaotic.predictions)
        assert (
            baseline.inference_stats.__dict__ == chaotic.inference_stats.__dict__
        )

    @pytest.mark.parametrize("key", ["linear", "lrmf"])
    def test_redistribute_predictions_bit_identical(self, key):
        system, spec = _chaos_system(key)
        baseline = system.score_table(
            key, "train", models=spec.initial_models, segments=4
        )
        # max_attempts=1: the first segment to hit the fault fails
        # permanently and its pages are adopted by the survivors.
        policy = RetryPolicy(max_attempts=1, degradation="redistribute")
        plan = FaultPlan.transient(("serving.scorer.segment", 1))
        with inject_faults(plan):
            chaotic = system.score_table(
                key, "train", models=spec.initial_models, segments=4, retry=policy
            )
        assert chaotic.retry.redistributed >= 1
        np.testing.assert_array_equal(baseline.predictions, chaotic.predictions)

    def test_redistribute_with_no_survivors_raises(self):
        system, spec = _chaos_system("linear")
        policy = RetryPolicy(max_attempts=1, degradation="redistribute")
        plan = FaultPlan.transient(("serving.scorer.segment", 1))
        with inject_faults(plan):
            with pytest.raises(RetryExhaustedError):
                system.score_table(
                    "linear",
                    "train",
                    models=spec.initial_models,
                    segments=1,
                    retry=policy,
                )

    def test_exhaustion_with_fail_degradation_raises(self):
        system, spec = _chaos_system("linear")
        policy = RetryPolicy(max_attempts=2, backoff_s=0.0)
        plan = FaultPlan.transient(
            ("serving.scorer.segment", 1),
            ("serving.scorer.segment", 2),
        )
        with inject_faults(plan):
            with pytest.raises(RetryExhaustedError):
                system.score_table(
                    "linear",
                    "train",
                    models=spec.initial_models,
                    segments=1,
                    retry=policy,
                )


class TestFaultPlanValidation:
    def test_rejects_unknown_site(self):
        with pytest.raises(ConfigurationError, match="unknown fault site"):
            FaultPlan([FaultSpec(site="nope", call=1)])

    def test_rejects_bad_call_index(self):
        with pytest.raises(ConfigurationError, match="call index"):
            FaultPlan([FaultSpec(site="hw.strider.page_walk", call=0)])

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="fault kind"):
            FaultPlan([FaultSpec(site="hw.strider.page_walk", call=1, kind="crash")])

    def test_rejects_duplicate_schedule(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            FaultPlan.transient(
                ("hw.strider.page_walk", 1), ("hw.strider.page_walk", 1)
            )

    def test_arming_is_exclusive(self):
        plan = FaultPlan.transient(("hw.strider.page_walk", 1))
        with inject_faults(plan):
            with pytest.raises(ConfigurationError, match="already armed"):
                with inject_faults(plan):
                    pass

    @pytest.mark.chaos
    def test_latency_fault_delays_but_succeeds(self):
        system, _spec = _chaos_system("linear", n_tuples=64, epochs=1)
        baseline = system.train("linear", "train", segments=2)
        plan = FaultPlan(
            [
                FaultSpec(
                    site="cluster.segment_worker.epoch",
                    call=1,
                    kind="latency",
                    latency_s=0.01,
                )
            ]
        )
        with inject_faults(plan) as injector:
            delayed = system.train("linear", "train", segments=2)
        assert [entry.kind for entry in injector.fired] == ["latency"]
        _assert_sharded_parity(baseline, delayed)


class TestRetryPolicyUnit:
    def test_retries_transient_until_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("boom")
            return "ok"

        stats = RetryStats()
        resets = []
        policy = RetryPolicy(max_attempts=3, backoff_s=0.0)
        assert policy.run(flaky, stats=stats, reset=lambda: resets.append(1)) == "ok"
        assert stats.attempts == 3
        assert stats.retries == 2
        assert stats.faults == 2
        assert len(resets) == 2  # reset precedes every re-attempt

    def test_non_transient_errors_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=3, backoff_s=0.0)
        with pytest.raises(ValueError):
            policy.run(lambda: (_ for _ in ()).throw(ValueError("real bug")))

    def test_exhaustion_chains_last_fault(self):
        policy = RetryPolicy(max_attempts=2, backoff_s=0.0)

        def always():
            raise TransientError("again")

        with pytest.raises(RetryExhaustedError) as info:
            policy.run(always, label="unit op")
        assert "unit op" in str(info.value)
        assert isinstance(info.value.__cause__, TransientError)

    def test_validation_fails_fast(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(degradation="shrug")

    def test_seeded_jitter_schedule_is_reproducible(self):
        policy = RetryPolicy(backoff_s=0.001, jitter=0.5, seed=9)
        a, b = policy.sleeps(), policy.sleeps()
        assert a._rng.uniform(0.0, 1.0) == b._rng.uniform(0.0, 1.0)


@pytest.mark.chaos
class TestServerAdmission:
    """Admission control: shedding, deadlines, timeouts, drain, no leaks."""

    @staticmethod
    def _server(spec, system, **kwargs):
        return system.serve("linear", models=spec.initial_models, **kwargs)

    @staticmethod
    def _slow_plan(calls, latency_s=0.25):
        return FaultPlan(
            [
                FaultSpec(
                    site="serving.inference.score",
                    call=call,
                    kind="latency",
                    latency_s=latency_s,
                )
                for call in range(1, calls + 1)
            ]
        )

    def test_burst_sheds_with_server_overloaded(self):
        system, spec = _chaos_system("linear", n_tuples=64, epochs=1)
        row = np.zeros(6)
        server = self._server(
            spec, system, max_batch_size=1, max_wait_ms=0.0, max_queue_depth=2
        )
        futures, sheds = [], 0
        with inject_faults(self._slow_plan(calls=12)):
            with server:
                for _ in range(12):
                    try:
                        futures.append(server.submit(row))
                    except ServerOverloadedError:
                        sheds += 1
                # stop() drains: every admitted request is scored.
        assert sheds >= 1
        assert futures, "at least one request must have been admitted"
        assert server.stats.shed == sheds
        assert all(np.isfinite(f.result(timeout=5)) for f in futures)

    def test_queued_request_misses_deadline(self):
        system, spec = _chaos_system("linear", n_tuples=64, epochs=1)
        row = np.zeros(6)
        server = self._server(spec, system, max_batch_size=1, max_wait_ms=0.0)
        with inject_faults(self._slow_plan(calls=1, latency_s=0.3)):
            with server:
                slow = server.submit(row)
                late = server.submit(row, deadline_ms=25.0)
                assert np.isfinite(float(slow.result(timeout=5)))
                with pytest.raises(DeadlineExceededError, match="deadline"):
                    late.result(timeout=5)
        assert server.stats.deadline_exceeded == 1

    def test_predict_timeout_cancels_and_counts(self):
        system, spec = _chaos_system("linear", n_tuples=64, epochs=1)
        row = np.zeros(6)
        server = self._server(spec, system, max_batch_size=1, max_wait_ms=0.0)
        with inject_faults(self._slow_plan(calls=1, latency_s=0.4)):
            with server:
                blocker = server.submit(row)  # holds the scorer busy
                with pytest.raises(DeadlineExceededError, match="cancelled"):
                    server.predict(row, timeout=0.05)
                assert np.isfinite(float(blocker.result(timeout=5)))
                # the server keeps serving after a cancelled request.
                assert np.isfinite(server.predict(row, timeout=5))
        assert server.stats.timeouts == 1

    def test_per_model_concurrency_limit_sheds(self):
        system, spec = _chaos_system("linear", n_tuples=64, epochs=1)
        row = np.zeros(6)
        server = self._server(
            spec,
            system,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue_depth=8,
            max_concurrent_per_model=1,
        )
        with inject_faults(self._slow_plan(calls=1, latency_s=0.3)):
            with server:
                admitted = server.submit(row)
                with pytest.raises(ServerOverloadedError, match="in flight"):
                    server.submit(row)
                assert np.isfinite(float(admitted.result(timeout=5)))
                # The slot frees once the request resolves.
                assert np.isfinite(server.predict(row, timeout=5))
        assert server.stats.shed == 1

    def test_stop_without_drain_fails_queued_requests(self):
        system, spec = _chaos_system("linear", n_tuples=64, epochs=1)
        row = np.zeros(6)
        server = self._server(
            spec, system, max_batch_size=1, max_wait_ms=0.0, max_queue_depth=8
        )
        # Every call is slow, so the backlog cannot drain before stop().
        with inject_faults(self._slow_plan(calls=8, latency_s=0.3)):
            server.start()
            server.submit(row)
            queued = [server.submit(row) for _ in range(3)]
            server.stop(drain=False)
            for future in queued:
                with pytest.raises(ServingError):
                    future.result(timeout=5)

    def test_no_scorer_threads_leak(self):
        system, spec = _chaos_system("linear", n_tuples=64, epochs=1)
        row = np.zeros(6)
        server = self._server(spec, system, max_queue_depth=4)
        for _ in range(2):  # start/stop cycles, including a restart
            with server:
                assert np.isfinite(server.predict(row, timeout=5))
        lingering = [
            t
            for t in threading.enumerate()
            if t.name == "prediction-server" and t.is_alive()
        ]
        assert lingering == []
        with pytest.raises(ConfigurationError, match="not running"):
            server.submit(row)

    def test_validation_fails_fast(self):
        system, spec = _chaos_system("linear", n_tuples=64, epochs=1)
        with pytest.raises(ConfigurationError, match="max_queue_depth"):
            self._server(spec, system, max_queue_depth=0)
        with pytest.raises(ConfigurationError, match="deadline_ms"):
            self._server(spec, system, deadline_ms=-5.0)
        with pytest.raises(ConfigurationError, match="max_concurrent_per_model"):
            self._server(spec, system, max_concurrent_per_model=0)
        server = self._server(spec, system)
        with server:
            with pytest.raises(ConfigurationError, match="deadline_ms"):
                server.submit(np.zeros(6), deadline_ms=0)


# ---------------------------------------------------------------------- #
# fault machinery across the process boundary (pickle + call offsets)
# ---------------------------------------------------------------------- #
class TestFaultMachineryPickleSafety:
    """Plans and policies are shipped to worker processes verbatim."""

    def test_fault_spec_and_plan_round_trip(self):
        import pickle

        plan = FaultPlan(
            [
                FaultSpec("cluster.segment_worker.epoch", 3, "exit"),
                FaultSpec("hw.strider.page_walk", 2),
                FaultSpec("serving.scorer.segment", 1, "latency", latency_s=0.01),
            ]
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.faults == plan.faults
        assert clone.lookup("hw.strider.page_walk", 2) == plan.faults[1]
        spec = pickle.loads(pickle.dumps(plan.faults[0]))
        assert spec == plan.faults[0]

    def test_retry_policy_round_trip(self):
        import pickle

        policy = RetryPolicy(
            max_attempts=5, backoff_s=0.25, multiplier=3.0, jitter=0.1, seed=9
        )
        clone = pickle.loads(pickle.dumps(policy))
        assert clone == policy

    def test_without_kind_drops_only_that_kind(self):
        plan = FaultPlan(
            [
                FaultSpec("cluster.segment_worker.epoch", 3, "exit"),
                FaultSpec("cluster.segment_worker.epoch", 5, "error"),
            ]
        )
        respawn_plan = plan.without_kind("exit")
        assert [f.kind for f in respawn_plan.faults] == ["error"]
        assert plan.lookup("cluster.segment_worker.epoch", 3) is not None
        assert respawn_plan.lookup("cluster.segment_worker.epoch", 3) is None

    def test_injector_offsets_preadvance_call_counters(self):
        """A respawned worker resumes the fault schedule where it died."""
        site = "cluster.segment_worker.epoch"
        plan = FaultPlan.transient((site, 3))
        with inject_faults(plan, offsets={site: 2}) as injector:
            with pytest.raises(TransientError):
                fault_point(site)  # call 1 + offset 2 == scheduled call 3
        assert [(f.site, f.call) for f in injector.fired] == [(site, 3)]
        # Without the offset the same plan needs three calls to fire.
        with inject_faults(plan) as injector:
            fault_point(site)
            fault_point(site)
            with pytest.raises(TransientError):
                fault_point(site)
        assert len(injector.fired) == 1


# ---------------------------------------------------------------------- #
# process-pool chaos: workers die mid-epoch and recover bit-identically
# ---------------------------------------------------------------------- #
@pytest.mark.chaos
class TestProcessChaosParity:
    """Killed / faulting worker processes recover to bit-identical runs."""

    def test_worker_exit_mid_epoch_recovers_bit_identically(self):
        """kind="exit" kills the worker child with os._exit mid-window; the
        parent must see the death as a TransientError, respawn the worker
        from the last good checkpoint, and finish the run bit-identical to
        the fault-free processes run."""
        system, _spec = _chaos_system("linear", epochs=4)
        baseline = system.train(
            "linear", "train", segments=2, execution="processes"
        )
        plan = FaultPlan(
            [FaultSpec("cluster.segment_worker.epoch", 3, kind="exit")]
        )
        with inject_faults(plan):
            chaotic = system.train(
                "linear", "train", segments=2, execution="processes", retry=RETRY
            )
        # The dying child cannot ship its fired-log entry (it is gone);
        # the supervision counters are where the death is recorded.
        assert chaotic.cluster.retry.faults >= 1
        assert chaotic.cluster.retry.retries >= 1
        _assert_sharded_parity(baseline, chaotic)

    def test_in_child_error_fault_retried_inside_worker(self):
        """kind="error" faults fire inside the child and are absorbed by
        the shipped retry policy without killing the process; the fired
        log entry ships back to the parent's injector."""
        system, _spec = _chaos_system("linear", epochs=4)
        baseline = system.train(
            "linear", "train", segments=2, execution="processes"
        )
        plan = FaultPlan.transient(("cluster.segment_worker.epoch", 2))
        with inject_faults(plan) as injector:
            chaotic = system.train(
                "linear", "train", segments=2, execution="processes", retry=RETRY
            )
        assert [(f.site, f.call) for f in injector.fired] == [
            ("cluster.segment_worker.epoch", 2)
        ]
        assert chaotic.cluster.retry.faults >= 1
        _assert_sharded_parity(baseline, chaotic)

    def test_exit_without_retry_is_fatal(self):
        """A dead worker without supervision propagates TransientError."""
        system, _spec = _chaos_system("linear", epochs=2)
        plan = FaultPlan(
            [FaultSpec("cluster.segment_worker.epoch", 1, kind="exit")]
        )
        with inject_faults(plan):
            with pytest.raises(TransientError, match="died"):
                system.train("linear", "train", segments=2, execution="processes")
