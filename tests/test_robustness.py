"""Robustness and failure-injection tests across the stack."""

import numpy as np
import pytest

from repro import dana
from repro.compiler import compile_strider
from repro.exceptions import (
    CompilerError,
    DSLError,
    HardwareError,
    ISAError,
    RDBMSError,
    ReproError,
    StriderError,
    TranslationError,
)
from repro.hw.strider import Strider
from repro.rdbms import Database, HeapPage, PageLayout, Schema
from repro.translator import translate


class TestExceptionHierarchy:
    def test_all_subsystem_errors_are_repro_errors(self):
        for exc in (RDBMSError, DSLError, TranslationError, CompilerError, ISAError, HardwareError):
            assert issubclass(exc, ReproError)

    def test_strider_error_is_hardware_error(self):
        assert issubclass(StriderError, HardwareError)

    def test_catchable_at_the_top_level(self):
        with pytest.raises(ReproError):
            Schema.training_schema(2).encode_row((1.0,))


class TestDanaAliasModule:
    def test_alias_exports_match_dsl(self):
        import repro.dana as dana_module
        import repro.dsl as dsl

        for name in ("model", "input", "output", "meta", "algo", "sigma", "sigmoid", "norm"):
            assert getattr(dana_module, name) is getattr(dsl, name)

    def test_paper_snippet_compiles(self):
        # Verbatim structure of the §4.3 snippet (with Python-legal dims).
        mo = dana.model([10])
        inp = dana.input([10])
        out = dana.output()
        lr = dana.meta(0.3)
        linearR = dana.algo(mo, inp, out)
        s = dana.sigma(mo * inp, 1)
        er = s - out
        grad = er * inp
        up = lr * grad
        mo_up = mo - up
        linearR.setModel(mo_up)
        merge_coef = dana.meta(8)
        linearR.merge(grad, merge_coef, "+")
        convergence_factor = dana.meta(0.01)
        n = dana.norm(grad, 1)
        linearR.setConvergence(n < convergence_factor)
        linearR.setEpochs(10)
        graph = translate(linearR)
        assert graph.convergence_node_id is not None
        assert len(graph.merge_node_ids) == 1


class TestCorruptedPages:
    def test_truncated_page_rejected_by_heap_page(self):
        layout = PageLayout(page_size=8192)
        with pytest.raises(RDBMSError):
            HeapPage.from_bytes(b"\x00" * 100, layout)

    def test_strider_on_zeroed_page_emits_nothing_harmful(self):
        # A zeroed page claims free_space_start == 0 < line-pointer start, so
        # the walk loop exits after its first (do-while) iteration without
        # reading out of bounds.
        layout = PageLayout(page_size=8192)
        schema = Schema.training_schema(4)
        compiled = compile_strider(layout, schema)
        result = Strider(compiled.program).process_page(bytes(8192))
        assert result.stats.tuples_emitted <= 1

    def test_strider_on_garbage_page_fails_safely(self):
        layout = PageLayout(page_size=1024)
        schema = Schema.training_schema(4)
        compiled = compile_strider(layout, schema)
        rng = np.random.default_rng(0)
        garbage = bytes(rng.integers(0, 256, size=1024, dtype=np.uint8))
        strider = Strider(compiled.program, max_instructions=100_000)
        # Either the walk terminates quickly or it raises a StriderError;
        # it must never hang or crash the interpreter.
        try:
            result = strider.process_page(garbage)
            assert result.stats.instructions_executed <= 100_000
        except StriderError:
            pass


class TestEmptyAndEdgeCaseTables:
    def test_empty_table_scan(self):
        db = Database(page_size=8192)
        schema = Schema.training_schema(3)
        db.create_table("empty", schema)
        assert db.execute("SELECT count(*) FROM empty").rows == [(0,)]
        assert db.table("empty").read_all(db.buffer_pool).shape == (0, 4)

    def test_single_tuple_table_trains(self):
        from repro.algorithms import Hyperparameters, LinearRegression
        from repro.core import DAnA

        spec = LinearRegression().build_spec(3, Hyperparameters(merge_coefficient=4, epochs=3))
        db = Database(page_size=8192)
        db.load_table("one", spec.schema, np.array([[1.0, 2.0, 3.0, 4.0]]))
        system = DAnA(db)
        system.register_udf("lr", spec, epochs=3)
        run = system.train("lr", "one")
        assert run.tuples_extracted == 1
        assert np.all(np.isfinite(run.models["mo"]))

    def test_wide_tuple_must_fit_page(self):
        db = Database(page_size=8192)
        schema = Schema.training_schema(5000)
        table = db.create_table("wide", schema)
        with pytest.raises(ReproError):
            table.bulk_load([np.zeros(5001).tolist()])


class TestDSLMisuse:
    def test_group_axis_out_of_range_detected_at_translation(self):
        mo, x, y = dana.model([4], name="mo"), dana.input([4], name="x"), dana.output(name="y")
        algo = dana.algo(mo, x, y)
        algo.setModel(mo - 0.1 * dana.sigma(mo * x, 3) * mo)
        algo.setEpochs(1)
        with pytest.raises(ReproError):
            translate(algo)

    def test_missing_terminator(self):
        mo, x, y = dana.model([4]), dana.input([4]), dana.output()
        algo = dana.algo(mo, x, y)
        algo.setModel(mo)
        with pytest.raises(DSLError):
            translate(algo)
