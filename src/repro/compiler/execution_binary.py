"""Execution binary: everything the RDBMS catalog stores for one UDF.

"The FPGA design, its schedule, operation map, and instructions are then
stored in the RDBMS catalog.  These components are executed when the query
calls for the corresponding UDF." (paper §6.2)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.compiler.hardware_generator import AcceleratorDesign
from repro.compiler.scheduler import ThreadSchedule
from repro.compiler.strider_compiler import StriderCompilationResult
from repro.translator.hdfg import HDFG, NodeKind


@dataclass
class OperationMapEntry:
    """Where one hDFG node's atomic operations execute."""

    node_id: int
    node_name: str
    kind: str
    element_count: int
    region: str


@dataclass
class ExecutionBinary:
    """Bundle of accelerator design + compiled schedules for one UDF."""

    udf_name: str
    algorithm: str
    design: AcceleratorDesign
    strider: StriderCompilationResult
    thread_schedule: ThreadSchedule
    graph: HDFG
    operation_map: list[OperationMapEntry] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        udf_name: str,
        algorithm: str,
        design: AcceleratorDesign,
        strider: StriderCompilationResult,
        thread_schedule: ThreadSchedule,
        graph: HDFG,
        metadata: dict[str, Any] | None = None,
    ) -> "ExecutionBinary":
        operation_map = [
            OperationMapEntry(
                node_id=node.node_id,
                node_name=node.name,
                kind=node.kind.value,
                element_count=node.element_count,
                region=node.region.value,
            )
            for node in graph.nodes()
            if not node.is_leaf and node.kind is not NodeKind.UPDATE
        ]
        return cls(
            udf_name=udf_name,
            algorithm=algorithm,
            design=design,
            strider=strider,
            thread_schedule=thread_schedule,
            graph=graph,
            operation_map=operation_map,
            metadata=dict(metadata or {}),
        )

    # ------------------------------------------------------------------ #
    # summary accessors used by reports and tests
    # ------------------------------------------------------------------ #
    @property
    def threads(self) -> int:
        return self.design.threads

    @property
    def update_rule_cycles(self) -> int:
        return self.thread_schedule.update_rule_cycles

    @property
    def instruction_footprint(self) -> int:
        return self.thread_schedule.program.instruction_footprint()

    def describe(self) -> dict[str, Any]:
        return {
            "udf": self.udf_name,
            "algorithm": self.algorithm,
            "threads": self.threads,
            "acs_per_thread": self.design.acs_per_thread,
            "num_striders": self.design.num_striders,
            "strider_instructions": self.strider.program.instruction_count(),
            "engine_instructions": self.instruction_footprint,
            "update_rule_cycles": self.update_rule_cycles,
            "post_merge_cycles": self.thread_schedule.post_merge_cycles,
            "operation_map_entries": len(self.operation_map),
        }
