"""Hardware generator: resource allocation and accelerator configuration.

"The hardware generator finalizes the parameters of the reconfigurable
architecture for the Striders and the execution engine. [...] Sizes of the
DBMS page, model, and a single training data record determine the amount of
memory utilized by each Strider.  [...] The remainder of the BRAM memory is
assigned to the page buffer to store as many pages as possible to maximize
the off-chip bandwidth utilization.  Once the number of resident pages is
determined, the hardware generator uses the FPGA's DSP information to
calculate the number of AUs which can be synthesized on the target FPGA."
(paper §6.1)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import ResourceError
from repro.hw.access_engine import AccessEngineConfig
from repro.hw.fpga import DEFAULT_FPGA, FPGASpec
from repro.isa.engine_isa import AUS_PER_CLUSTER
from repro.rdbms.page import PageLayout
from repro.rdbms.types import Schema
from repro.translator.hdfg import HDFG
from repro.compiler.design_space import DesignPoint, DesignSpaceExplorer, WorkloadShape
from repro.compiler.strider_compiler import StriderCompilationResult, compile_strider

MAX_PAGE_BUFFERS = 64          # practical cap on concurrently-resident pages
FLOAT_BYTES = 4                # on-chip values are single-precision floats


@dataclass
class BRAMAllocation:
    """How the on-chip BRAM budget is split."""

    model_bytes: int
    training_data_bytes: int
    instruction_bytes: int
    page_buffer_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.model_bytes
            + self.training_data_bytes
            + self.instruction_bytes
            + self.page_buffer_bytes
        )


@dataclass
class AcceleratorDesign:
    """Final accelerator configuration chosen by the hardware generator."""

    fpga: FPGASpec
    threads: int
    acs_per_thread: int
    aus_per_cluster: int
    num_striders: int
    page_size: int
    bram: BRAMAllocation
    design_point: DesignPoint
    candidates: list[DesignPoint] = field(default_factory=list)

    @property
    def total_acs(self) -> int:
        return self.threads * self.acs_per_thread

    @property
    def total_aus(self) -> int:
        return self.total_acs * self.aus_per_cluster

    @property
    def access_engine_config(self) -> AccessEngineConfig:
        return AccessEngineConfig(
            num_striders=self.num_striders,
            page_size=self.page_size,
            read_width_bytes=self.fpga.bram_read_width_bytes,
        )

    def summary(self) -> dict[str, float]:
        return {
            "threads": self.threads,
            "acs_per_thread": self.acs_per_thread,
            "total_aus": self.total_aus,
            "num_striders": self.num_striders,
            "page_buffer_bytes": self.bram.page_buffer_bytes,
            "model_bytes": self.bram.model_bytes,
            "update_rule_cycles": self.design_point.update_rule_cycles,
            "merge_cycles": self.design_point.merge_cycles,
            "post_merge_cycles": self.design_point.post_merge_cycles,
        }


class HardwareGenerator:
    """Sizes the access and execution engines for one UDF + dataset + FPGA."""

    def __init__(
        self,
        graph: HDFG,
        layout: PageLayout,
        schema: Schema,
        fpga: FPGASpec = DEFAULT_FPGA,
        merge_coefficient: int = 1,
        n_tuples: int = 1,
        max_threads: int | None = None,
    ) -> None:
        self.graph = graph
        self.layout = layout
        self.schema = schema
        self.fpga = fpga
        self.merge_coefficient = max(1, merge_coefficient)
        self.n_tuples = max(1, n_tuples)
        self.max_threads = max_threads
        self.strider_compilation: StriderCompilationResult = compile_strider(layout, schema)

    # ------------------------------------------------------------------ #
    # BRAM budgeting
    # ------------------------------------------------------------------ #
    def _model_bytes(self) -> int:
        model_elements = sum(
            self.graph.node(i).element_count for i in self.graph.model_node_ids
        )
        return model_elements * FLOAT_BYTES

    def allocate_bram(self, threads: int) -> BRAMAllocation:
        """Split the BRAM between model copies, staged data and page buffers."""
        model_bytes = self._model_bytes() * max(1, threads)
        # staged raw training data: one extracted tuple per thread (double buffered)
        training_bytes = 2 * threads * self.schema.row_width
        # instruction buffers for striders and clusters (fixed small overhead)
        instruction_bytes = 64 * 1024
        reserved = model_bytes + training_bytes + instruction_bytes
        if reserved >= self.fpga.bram_bytes:
            raise ResourceError(
                f"model and staging storage ({reserved} bytes) exceed the "
                f"{self.fpga.bram_bytes}-byte BRAM of {self.fpga.name}"
            )
        remaining = self.fpga.bram_bytes - reserved
        num_pages = min(MAX_PAGE_BUFFERS, max(1, remaining // self.layout.page_size))
        return BRAMAllocation(
            model_bytes=model_bytes,
            training_data_bytes=training_bytes,
            instruction_bytes=instruction_bytes,
            page_buffer_bytes=num_pages * self.layout.page_size,
        )

    def num_page_buffers(self, threads: int) -> int:
        allocation = self.allocate_bram(threads)
        return max(1, allocation.page_buffer_bytes // self.layout.page_size)

    # ------------------------------------------------------------------ #
    # design generation
    # ------------------------------------------------------------------ #
    def workload_shape(self) -> WorkloadShape:
        tuples_per_page = max(1, self.layout.tuples_per_page(self.schema))
        return WorkloadShape(
            n_tuples=self.n_tuples,
            tuples_per_page=tuples_per_page,
            page_size=self.layout.page_size,
            tuple_bytes=self.schema.row_width,
        )

    def strider_cycles_per_page(self) -> float:
        tuples_per_page = max(1, self.layout.tuples_per_page(self.schema))
        comp = self.strider_compilation
        tuple_bytes = self.schema.row_width + self.layout.tuple_header_size
        words = max(1, math.ceil(tuple_bytes / self.fpga.bram_read_width_bytes))
        payload_words = max(
            1, math.ceil(self.schema.row_width / self.fpga.bram_read_width_bytes)
        )
        per_tuple = (comp.loop_instructions - 2) + words + payload_words
        return comp.header_instructions + per_tuple * tuples_per_page

    def generate(self) -> AcceleratorDesign:
        """Choose the best design point and return the accelerator design."""
        # Page buffers are sized with a single-thread model reservation first;
        # the final thread count only changes the (small) model replication.
        provisional_buffers = self.num_page_buffers(threads=1)
        explorer = DesignSpaceExplorer(
            graph=self.graph,
            fpga=self.fpga,
            workload=self.workload_shape(),
            merge_coefficient=(
                min(self.merge_coefficient, self.max_threads)
                if self.max_threads
                else self.merge_coefficient
            ),
            strider_cycles_per_page=self.strider_cycles_per_page(),
            num_striders=provisional_buffers,
        )
        candidates = explorer.explore()
        best = explorer.best()
        bram = self.allocate_bram(best.threads)
        num_striders = max(1, bram.page_buffer_bytes // self.layout.page_size)
        return AcceleratorDesign(
            fpga=self.fpga,
            threads=best.threads,
            acs_per_thread=best.acs_per_thread,
            aus_per_cluster=AUS_PER_CLUSTER,
            num_striders=num_striders,
            page_size=self.layout.page_size,
            bram=bram,
            design_point=best,
            candidates=candidates,
        )
