"""Design-space exploration for the hardware generator.

"To decide the allocation of resources to each thread vs. number of
threads, we equip the hardware generator with a performance estimation tool
that uses the static schedule of the operations for each design point to
estimate its relative performance.  It chooses the smallest and
best-performing design point which strikes a balance between the number of
cycles for data processing and transfer." (paper §6.1)

A design point fixes the number of execution-engine threads (bounded by the
merge coefficient) and therefore the number of Analytic Clusters available
to each thread.  For every candidate the estimator combines:

* the compute cycles per epoch — update-rule schedule length per tuple,
  tree-bus merge cost and post-merge schedule length per batch;
* the data cycles per epoch — Strider page-walking cycles (parallel across
  page buffers) and AXI transfer cycles.

Estimation is viable because the hDFG is static, there is no hardware
managed cache and the architecture is fixed during execution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ResourceError
from repro.hw.fpga import FPGASpec
from repro.isa.engine_isa import AUS_PER_CLUSTER
from repro.translator.hdfg import HDFG, Region
from repro.compiler.scheduler import estimate_region_cycles


@dataclass(frozen=True)
class WorkloadShape:
    """The dataset statistics the estimator needs (from the RDBMS catalog)."""

    n_tuples: int
    tuples_per_page: int
    page_size: int
    tuple_bytes: int

    @property
    def n_pages(self) -> int:
        return max(1, math.ceil(self.n_tuples / max(1, self.tuples_per_page)))


@dataclass(frozen=True)
class DesignPoint:
    """One candidate hardware configuration and its estimated performance."""

    threads: int
    acs_per_thread: int
    num_striders: int
    update_rule_cycles: int
    merge_cycles: int
    post_merge_cycles: int
    compute_cycles_per_epoch: float
    data_cycles_per_epoch: float

    @property
    def total_aus(self) -> int:
        return self.threads * self.acs_per_thread * AUS_PER_CLUSTER

    @property
    def cycles_per_epoch(self) -> float:
        """Access and execution engines are interleaved, so the slower wins."""
        return max(self.compute_cycles_per_epoch, self.data_cycles_per_epoch)

    @property
    def is_bandwidth_bound(self) -> bool:
        return self.data_cycles_per_epoch > self.compute_cycles_per_epoch


class DesignSpaceExplorer:
    """Enumerates thread-count candidates and picks the best design point."""

    def __init__(
        self,
        graph: HDFG,
        fpga: FPGASpec,
        workload: WorkloadShape,
        merge_coefficient: int,
        strider_cycles_per_page: float,
        num_striders: int,
        aus_per_cluster: int = AUS_PER_CLUSTER,
    ) -> None:
        self.graph = graph
        self.fpga = fpga
        self.workload = workload
        self.merge_coefficient = max(1, merge_coefficient)
        self.strider_cycles_per_page = strider_cycles_per_page
        self.num_striders = max(1, num_striders)
        self.aus_per_cluster = aus_per_cluster

    # ------------------------------------------------------------------ #
    # candidate enumeration
    # ------------------------------------------------------------------ #
    def candidate_thread_counts(self) -> list[int]:
        total_acs = self.total_clusters()
        limit = min(self.merge_coefficient, total_acs)
        candidates = []
        t = 1
        while t <= limit:
            candidates.append(t)
            t *= 2
        if limit not in candidates:
            candidates.append(limit)
        return candidates

    def total_clusters(self) -> int:
        total_aus = self.fpga.max_analytic_units()
        total_acs = total_aus // self.aus_per_cluster
        if total_acs < 1:
            raise ResourceError(
                f"{self.fpga.name} cannot fit a single analytic cluster"
            )
        return total_acs

    # ------------------------------------------------------------------ #
    # estimation
    # ------------------------------------------------------------------ #
    def evaluate(self, threads: int) -> DesignPoint:
        total_acs = self.total_clusters()
        acs_per_thread = max(1, total_acs // threads)
        update_cycles = estimate_region_cycles(
            self.graph, Region.UPDATE_RULE, acs_per_thread, self.aus_per_cluster
        )
        post_merge_cycles = estimate_region_cycles(
            self.graph, Region.POST_MERGE, acs_per_thread, self.aus_per_cluster
        )
        merge_elements = self._merge_element_count()
        merge_levels = math.ceil(math.log2(threads)) if threads > 1 else 0
        merge_cycles = merge_levels * math.ceil(merge_elements / self.aus_per_cluster)

        batches = math.ceil(self.workload.n_tuples / threads)
        compute = batches * (update_cycles + merge_cycles + post_merge_cycles)

        pages = self.workload.n_pages
        strider_batches = math.ceil(pages / self.num_striders)
        axi_cycles = pages * self.workload.page_size / max(self.fpga.axi_bytes_per_cycle, 1e-9)
        data = strider_batches * self.strider_cycles_per_page + axi_cycles

        return DesignPoint(
            threads=threads,
            acs_per_thread=acs_per_thread,
            num_striders=self.num_striders,
            update_rule_cycles=update_cycles,
            merge_cycles=merge_cycles,
            post_merge_cycles=post_merge_cycles,
            compute_cycles_per_epoch=float(compute),
            data_cycles_per_epoch=float(data),
        )

    def explore(self) -> list[DesignPoint]:
        """Evaluate every candidate thread count."""
        return [self.evaluate(t) for t in self.candidate_thread_counts()]

    def best(self) -> DesignPoint:
        """The smallest design point within 1% of the best estimated runtime."""
        points = self.explore()
        best_cycles = min(p.cycles_per_epoch for p in points)
        tolerant = [p for p in points if p.cycles_per_epoch <= best_cycles * 1.01]
        return min(tolerant, key=lambda p: (p.threads, p.cycles_per_epoch))

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _merge_element_count(self) -> int:
        if not self.graph.merge_node_ids:
            return 0
        return max(self.graph.node(i).element_count for i in self.graph.merge_node_ids)
