"""DAnA back end: Strider compiler, scheduler, hardware generator."""

from repro.compiler.design_space import DesignPoint, DesignSpaceExplorer, WorkloadShape
from repro.compiler.execution_binary import ExecutionBinary, OperationMapEntry
from repro.compiler.hardware_generator import (
    AcceleratorDesign,
    BRAMAllocation,
    HardwareGenerator,
)
from repro.compiler.scheduler import (
    AddressMap,
    ScheduleStats,
    Scheduler,
    SubNodeExpander,
    SubOperation,
    ThreadSchedule,
    estimate_region_cycles,
)
from repro.compiler.strider_compiler import (
    StriderCompilationResult,
    StriderCompiler,
    compile_strider,
)

__all__ = [
    "AcceleratorDesign",
    "AddressMap",
    "BRAMAllocation",
    "DesignPoint",
    "DesignSpaceExplorer",
    "ExecutionBinary",
    "HardwareGenerator",
    "OperationMapEntry",
    "ScheduleStats",
    "Scheduler",
    "StriderCompilationResult",
    "StriderCompiler",
    "SubNodeExpander",
    "SubOperation",
    "ThreadSchedule",
    "WorkloadShape",
    "compile_strider",
    "estimate_region_cycles",
]
