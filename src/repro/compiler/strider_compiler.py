"""Strider compiler: page layout + table schema → Strider program.

"The compiler converts the database page configuration into a set of
Strider instructions that process the page and tuple headers and transform
user data into a floating point format" (paper §3/§6.2).  Given the
:class:`~repro.rdbms.page.PageLayout` of the target RDBMS and the table
schema, this module emits the 22-bit instruction sequence each Strider
runs, mirroring the assembly listing of §5.1.2:

1. process the page header (page size, free-space bounds, tuple count);
2. process the tuple pointers (line pointers);
3. loop over every tuple: read its bytes, cleanse the tuple header, emit
   the raw attribute payload, advance to the next pointer, and exit the
   loop once the pointer cursor reaches the free space.

Constants that do not fit in a 6-bit immediate (the line-pointer start
offset, large header sizes) are placed in the program's constant pool and
shipped to configuration registers over the configuration-data channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import CompilerError
from repro.isa.strider_isa import (
    Operand,
    StriderInstruction,
    StriderOpcode,
    StriderProgram,
    cr,
    imm,
    tr,
)
from repro.rdbms.page import PageLayout
from repro.rdbms.types import Schema

# Configuration-register allocation used by generated programs.
CR_PAGE_SIZE = 0
CR_FREE_START = 1
CR_FREE_END = 2
CR_TUPLE_COUNT = 3
CR_LINE_POINTER_START = 4
CR_LINE_POINTER_SIZE = 5
CR_TUPLE_HEADER_SIZE = 6
CR_TUPLE_PAYLOAD_SIZE = 7

# Temporary-register allocation.
TR_CURSOR = 0        # line-pointer cursor
TR_POINTER = 1       # raw line-pointer word
TR_TUPLE_OFFSET = 2  # byte offset of the current tuple
TR_TUPLE_LENGTH = 3  # byte length of the current tuple
TR_SCRATCH = 4


def _operand_for(value: int, register: int) -> tuple[Operand, dict[int, int]]:
    """Use an immediate when the value fits, otherwise a constant register."""
    if 0 <= value < 32:
        return imm(value), {}
    return cr(register), {register: value}


@dataclass(frozen=True)
class StriderCompilationResult:
    """Program plus the per-page statistics the performance model needs."""

    program: StriderProgram
    header_instructions: int
    loop_instructions: int
    tuple_payload_bytes: int

    def instructions_for_page(self, tuples_on_page: int) -> int:
        """Dynamic instruction count for a page holding ``tuples_on_page`` rows."""
        return self.header_instructions + self.loop_instructions * max(1, tuples_on_page)


class StriderCompiler:
    """Generates Strider programs for a given RDBMS page layout."""

    def __init__(self, layout: PageLayout, schema: Schema) -> None:
        self.layout = layout
        self.schema = schema

    def compile(self) -> StriderCompilationResult:
        """Emit the page-walking program for this layout and schema."""
        layout = self.layout
        constants: dict[int, int] = {
            CR_LINE_POINTER_START: layout.line_pointer_start,
            CR_LINE_POINTER_SIZE: layout.line_pointer_size,
            CR_TUPLE_HEADER_SIZE: layout.tuple_header_size,
            CR_TUPLE_PAYLOAD_SIZE: self.schema.row_width,
        }
        instructions: list[StriderInstruction] = []

        # -------------------------------------------------------------- #
        # page-header processing
        # -------------------------------------------------------------- #
        header = [
            StriderInstruction(
                StriderOpcode.READB,
                imm(layout.page_size_offset),
                imm(layout.page_size_width),
                cr(CR_PAGE_SIZE),
            ),
            StriderInstruction(
                StriderOpcode.READB,
                imm(layout.free_start_offset),
                imm(layout.free_start_width),
                cr(CR_FREE_START),
            ),
            StriderInstruction(
                StriderOpcode.READB,
                imm(layout.free_end_offset),
                imm(layout.free_end_width),
                cr(CR_FREE_END),
            ),
            StriderInstruction(
                StriderOpcode.READB,
                imm(layout.tuple_count_offset),
                imm(layout.tuple_count_width),
                cr(CR_TUPLE_COUNT),
            ),
            # cursor <- first line pointer
            StriderInstruction(
                StriderOpcode.AD, tr(TR_CURSOR), cr(CR_LINE_POINTER_START), imm(0)
            ),
        ]
        instructions.extend(header)

        # -------------------------------------------------------------- #
        # tuple-pointer processing + tuple extraction loop
        # -------------------------------------------------------------- #
        strip_operand, extra = _operand_for(layout.tuple_header_size, CR_TUPLE_HEADER_SIZE)
        constants.update(extra)
        lp_size_operand, extra = _operand_for(layout.line_pointer_size, CR_LINE_POINTER_SIZE)
        constants.update(extra)
        if layout.line_pointer_size > 8:
            raise CompilerError("line pointers wider than 8 bytes are not supported")

        loop = [
            StriderInstruction(StriderOpcode.BENTR),
            # read the current line pointer into the staging register
            StriderInstruction(
                StriderOpcode.READB, tr(TR_CURSOR), lp_size_operand, tr(TR_POINTER)
            ),
            # tuple byte-offset and byte-length from the pointer
            StriderInstruction(
                StriderOpcode.EXTRB, imm(0), imm(2), tr(TR_TUPLE_OFFSET)
            ),
            StriderInstruction(
                StriderOpcode.EXTRB, imm(2), imm(2), tr(TR_TUPLE_LENGTH)
            ),
            # read the whole tuple (header + payload) into the staging register
            StriderInstruction(
                StriderOpcode.READB,
                tr(TR_TUPLE_OFFSET),
                tr(TR_TUPLE_LENGTH),
                tr(TR_SCRATCH),
            ),
            # cleanse: strip the tuple header and emit the payload downstream
            StriderInstruction(StriderOpcode.CLN, strip_operand, imm(0), imm(2)),
            # advance the cursor to the next line pointer
            StriderInstruction(
                StriderOpcode.AD, tr(TR_CURSOR), tr(TR_CURSOR), lp_size_operand
            ),
            # exit once the cursor reaches the start of the free space
            StriderInstruction(
                StriderOpcode.BEXIT, imm(1), tr(TR_CURSOR), cr(CR_FREE_START)
            ),
        ]
        instructions.extend(loop)

        program = StriderProgram(
            instructions=instructions,
            constants=constants,
            description=(
                f"page walk for {self.layout.page_size}-byte pages, "
                f"{self.schema.row_width}-byte tuples"
            ),
        )
        # bentr is a marker and does not repeat per tuple, so the per-tuple
        # dynamic count excludes it.
        loop_dynamic = len(loop) - 1
        return StriderCompilationResult(
            program=program,
            header_instructions=len(header),
            loop_instructions=loop_dynamic,
            tuple_payload_bytes=self.schema.row_width,
        )


def compile_strider(layout: PageLayout, schema: Schema) -> StriderCompilationResult:
    """Convenience wrapper for :class:`StriderCompiler`."""
    return StriderCompiler(layout, schema).compile()
