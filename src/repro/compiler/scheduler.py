"""Static scheduler: hDFG sub-nodes → selective-SIMD engine schedule.

"The compiler schedules, maps, and generates the micro-instructions for
both ACs and AUs for each sub-node in the hDFG.  For each node which is
ready, i.e., all its predecessors have been scheduled, the compiler tries
to place that operation with the goal to improve throughput." (paper §6.2)

The scheduler decomposes every hDFG node into atomic **sub-operations**
(one scalar ALU operation each), tracks the data dependencies between them
through a symbolic address space, and list-schedules them step by step onto
the Analytic Clusters of one thread:

* elementary / non-linear nodes spread their elements across as many AUs as
  are available (they are embarrassingly parallel);
* group operations are decomposed into their inner products plus a pairwise
  reduction tree, which bounds their critical path by ``ceil(log2(K))``;
* in any one step an AC issues a single operation (selective SIMD), so
  ready sub-operations are packed into clusters by operator.

The resulting :class:`~repro.isa.engine_isa.EngineProgram` is both
executable (the micro-interpreter in the execution-engine simulator runs it
against a thread's scratchpad) and the source of the cycle counts used by
the performance model.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import SchedulingError
from repro.dsl.operations import GROUP_REDUCE_OP, Operator
from repro.isa.engine_isa import (
    AUS_PER_CLUSTER,
    ACInstruction,
    AUInstruction,
    AUOperand,
    DestKind,
    EngineProgram,
    EngineStep,
    SourceKind,
)
from repro.translator.hdfg import HDFG, HDFGNode, NodeKind, Region

# ---------------------------------------------------------------------- #
# symbolic references and the address map
# ---------------------------------------------------------------------- #
Ref = tuple  # ("node", node_id, element) | ("tmp", node_id, index) | ("imm", value)


def node_ref(node_id: int, element: int) -> Ref:
    return ("node", node_id, element)


def tmp_ref(node_id: int, index: int) -> Ref:
    return ("tmp", node_id, index)


def imm_ref(value: float) -> Ref:
    return ("imm", float(value))


class AddressMap:
    """Allocates scratchpad addresses for symbolic value references."""

    def __init__(self) -> None:
        self._addresses: dict[Ref, int] = {}

    def address_of(self, ref: Ref) -> int:
        if ref[0] == "imm":
            raise SchedulingError("immediates have no scratchpad address")
        if ref not in self._addresses:
            self._addresses[ref] = len(self._addresses)
        return self._addresses[ref]

    def __len__(self) -> int:
        return len(self._addresses)

    def known(self, ref: Ref) -> bool:
        return ref in self._addresses


@dataclass
class SubOperation:
    """One atomic scalar operation to be placed on one AU for one cycle."""

    op: Operator
    sources: tuple[Ref, ...]
    dest: Ref
    node_id: int
    element_index: int = 0


# ---------------------------------------------------------------------- #
# element-index mapping helpers
# ---------------------------------------------------------------------- #
def _ravel(multi: Sequence[int], dims: tuple[int, ...]) -> int:
    if not dims:
        return 0
    return int(np.ravel_multi_index(tuple(multi), dims))


def _unravel(index: int, dims: tuple[int, ...]) -> tuple[int, ...]:
    if not dims:
        return ()
    return tuple(int(v) for v in np.unravel_index(index, dims))


def broadcast_source_index(out_index: int, out_dims: tuple[int, ...], src_dims: tuple[int, ...]) -> int:
    """Element of a (possibly replicated) source feeding output ``out_index``."""
    if not src_dims:
        return 0
    multi = _unravel(out_index, out_dims)
    suffix = multi[len(out_dims) - len(src_dims):]
    return _ravel(suffix, src_dims)


def _insert_axis(multi: tuple[int, ...], axis0: int, value: int) -> tuple[int, ...]:
    return multi[:axis0] + (value,) + multi[axis0:]


# ---------------------------------------------------------------------- #
# sub-operation generation
# ---------------------------------------------------------------------- #
class SubNodeExpander:
    """Decomposes hDFG nodes into atomic sub-operations."""

    def __init__(self, graph: HDFG) -> None:
        self.graph = graph

    def expand(self, node: HDFGNode) -> list[SubOperation]:
        if node.is_leaf or node.kind is NodeKind.UPDATE:
            return []
        if node.kind is NodeKind.PRIMARY:
            return self._expand_primary(node)
        if node.kind is NodeKind.NONLINEAR:
            return self._expand_nonlinear(node)
        if node.kind is NodeKind.GROUP:
            return self._expand_group(node)
        if node.kind is NodeKind.GATHER:
            return self._expand_gather(node)
        if node.kind is NodeKind.MERGE:
            return []  # merging happens on the tree bus, outside the thread
        raise SchedulingError(f"cannot expand node of kind {node.kind}")

    # -- primary / non-linear ------------------------------------------- #
    def _source_ref(self, src_node: HDFGNode, element: int) -> Ref:
        if src_node.kind is NodeKind.CONSTANT:
            return imm_ref(src_node.constant_value)
        return node_ref(src_node.node_id, element)

    def _expand_primary(self, node: HDFGNode) -> list[SubOperation]:
        left = self.graph.node(node.inputs[0])
        right = self.graph.node(node.inputs[1])
        subs = []
        for i in range(node.element_count):
            li = broadcast_source_index(i, node.dims, left.dims)
            ri = broadcast_source_index(i, node.dims, right.dims)
            subs.append(
                SubOperation(
                    op=node.op,
                    sources=(self._source_ref(left, li), self._source_ref(right, ri)),
                    dest=node_ref(node.node_id, i),
                    node_id=node.node_id,
                    element_index=i,
                )
            )
        return subs

    def _expand_nonlinear(self, node: HDFGNode) -> list[SubOperation]:
        operand = self.graph.node(node.inputs[0])
        subs = []
        for i in range(node.element_count):
            si = broadcast_source_index(i, node.dims, operand.dims)
            subs.append(
                SubOperation(
                    op=node.op,
                    sources=(self._source_ref(operand, si),),
                    dest=node_ref(node.node_id, i),
                    node_id=node.node_id,
                    element_index=i,
                )
            )
        return subs

    def _expand_gather(self, node: HDFGNode) -> list[SubOperation]:
        # The gathered row is staged by the engine's address-generation phase
        # into dedicated scratchpad locations; the sub-operations only move it
        # into the node's output slots (one single-cycle op per element).
        subs = []
        for i in range(node.element_count):
            subs.append(
                SubOperation(
                    op=Operator.ADD,
                    sources=(("gather", node.node_id, i), imm_ref(0.0)),
                    dest=node_ref(node.node_id, i),
                    node_id=node.node_id,
                    element_index=i,
                )
            )
        return subs

    # -- group operations ------------------------------------------------ #
    def _expand_group(self, node: HDFGNode) -> list[SubOperation]:
        reduce_op = GROUP_REDUCE_OP[node.op]
        axis0 = node.axis - 1
        subs: list[SubOperation] = []
        tmp_counter = 0

        def new_tmp() -> Ref:
            nonlocal tmp_counter
            ref = tmp_ref(node.node_id, tmp_counter)
            tmp_counter += 1
            return ref

        inputs = [self.graph.node(i) for i in node.inputs]
        if len(inputs) == 2 and node.inner_op is not None:
            left, right = inputs
            contracted = left.dims[axis0] if left.dims else right.dims[axis0]
        else:
            (operand,) = inputs
            contracted = operand.dims[axis0]
        out_count = max(1, node.element_count)

        for o in range(out_count):
            out_multi = _unravel(o, node.dims)
            partials: list[Ref] = []
            for k in range(contracted):
                if len(inputs) == 2 and node.inner_op is not None:
                    left, right = inputs
                    li, ri = self._group_input_indices(node, left, right, out_multi, k)
                    value_ref = new_tmp()
                    subs.append(
                        SubOperation(
                            op=node.inner_op,
                            sources=(
                                self._source_ref(left, li),
                                self._source_ref(right, ri),
                            ),
                            dest=value_ref,
                            node_id=node.node_id,
                            element_index=o,
                        )
                    )
                else:
                    (operand,) = inputs
                    src_multi = _insert_axis(out_multi, axis0, k)
                    src_index = _ravel(src_multi, operand.dims)
                    value_ref = self._source_ref(operand, src_index)
                if node.op is Operator.NORM:
                    squared = new_tmp()
                    subs.append(
                        SubOperation(
                            op=Operator.MUL,
                            sources=(value_ref, value_ref),
                            dest=squared,
                            node_id=node.node_id,
                            element_index=o,
                        )
                    )
                    value_ref = squared
                partials.append(value_ref)
            # pairwise reduction tree
            while len(partials) > 1:
                nxt: list[Ref] = []
                for i in range(0, len(partials) - 1, 2):
                    dest = new_tmp()
                    subs.append(
                        SubOperation(
                            op=reduce_op,
                            sources=(partials[i], partials[i + 1]),
                            dest=dest,
                            node_id=node.node_id,
                            element_index=o,
                        )
                    )
                    nxt.append(dest)
                if len(partials) % 2 == 1:
                    nxt.append(partials[-1])
                partials = nxt
            final_ref = partials[0]
            if node.op is Operator.NORM:
                subs.append(
                    SubOperation(
                        op=Operator.SQRT,
                        sources=(final_ref,),
                        dest=node_ref(node.node_id, o),
                        node_id=node.node_id,
                        element_index=o,
                    )
                )
            else:
                subs.append(
                    SubOperation(
                        op=Operator.ADD,
                        sources=(final_ref, imm_ref(0.0)),
                        dest=node_ref(node.node_id, o),
                        node_id=node.node_id,
                        element_index=o,
                    )
                )
        return subs

    def _group_input_indices(
        self,
        node: HDFGNode,
        left: HDFGNode,
        right: HDFGNode,
        out_multi: tuple[int, ...],
        k: int,
    ) -> tuple[int, int]:
        axis0 = node.axis - 1
        if not left.dims:
            return 0, _ravel(_insert_axis(out_multi, axis0, k), right.dims)
        if not right.dims:
            return _ravel(_insert_axis(out_multi, axis0, k), left.dims), 0
        if left.dims == right.dims:
            src_multi = _insert_axis(out_multi, axis0, k)
            index = _ravel(src_multi, left.dims)
            return index, index
        left_rest_rank = len(left.dims) - 1
        left_multi = _insert_axis(out_multi[:left_rest_rank], axis0, k)
        right_multi = _insert_axis(out_multi[left_rest_rank:], axis0, k)
        return _ravel(left_multi, left.dims), _ravel(right_multi, right.dims)


# ---------------------------------------------------------------------- #
# list scheduler
# ---------------------------------------------------------------------- #
@dataclass
class ScheduleStats:
    """Summary of one region's static schedule."""

    steps: int = 0
    cycles: int = 0
    operations: int = 0
    average_au_utilization: float = 0.0


@dataclass
class ThreadSchedule:
    """Complete compiled schedule for a single execution-engine thread."""

    program: EngineProgram
    address_map: AddressMap
    stats: dict[Region, ScheduleStats] = field(default_factory=dict)
    aus_per_thread: int = AUS_PER_CLUSTER
    acs_per_thread: int = 1

    @property
    def update_rule_cycles(self) -> int:
        return self.program.update_rule_cycles

    @property
    def post_merge_cycles(self) -> int:
        return self.program.post_merge_cycles

    @property
    def convergence_cycles(self) -> int:
        return self.program.convergence_cycles


class Scheduler:
    """List scheduler mapping hDFG sub-operations onto one thread's ACs."""

    def __init__(self, graph: HDFG, acs_per_thread: int, aus_per_cluster: int = AUS_PER_CLUSTER) -> None:
        if acs_per_thread < 1:
            raise SchedulingError("each thread needs at least one analytic cluster")
        self.graph = graph
        self.acs_per_thread = acs_per_thread
        self.aus_per_cluster = aus_per_cluster
        self.expander = SubNodeExpander(graph)
        self.address_map = AddressMap()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def schedule(self) -> ThreadSchedule:
        """Schedule all three regions and return the thread schedule."""
        program = EngineProgram()
        stats: dict[Region, ScheduleStats] = {}
        region_steps = {
            Region.UPDATE_RULE: program.update_rule_steps,
            Region.POST_MERGE: program.post_merge_steps,
            Region.CONVERGENCE: program.convergence_steps,
        }
        for region, steps in region_steps.items():
            region_stats = self._schedule_region(region, steps)
            stats[region] = region_stats
        return ThreadSchedule(
            program=program,
            address_map=self.address_map,
            stats=stats,
            aus_per_thread=self.acs_per_thread * self.aus_per_cluster,
            acs_per_thread=self.acs_per_thread,
        )

    # ------------------------------------------------------------------ #
    # region scheduling
    # ------------------------------------------------------------------ #
    def _schedule_region(self, region: Region, steps: list[EngineStep]) -> ScheduleStats:
        sub_ops: list[SubOperation] = []
        for node in self.graph.compute_nodes([region]):
            sub_ops.extend(self.expander.expand(node))
        if not sub_ops:
            return ScheduleStats()

        producers: dict[Ref, int] = {}
        for idx, sub in enumerate(sub_ops):
            producers[sub.dest] = idx

        # dependency edges between sub-operations within this region
        dependents: dict[int, list[int]] = defaultdict(list)
        remaining_deps = [0] * len(sub_ops)
        for idx, sub in enumerate(sub_ops):
            for src in sub.sources:
                if src[0] == "imm":
                    continue
                producer = producers.get(src)
                if producer is not None and producer != idx:
                    dependents[producer].append(idx)
                    remaining_deps[idx] += 1

        ready = [idx for idx, deps in enumerate(remaining_deps) if deps == 0]
        scheduled_count = 0
        total_slots = 0
        step_index = 0
        total_cycles = 0
        total_aus = self.acs_per_thread * self.aus_per_cluster

        while ready:
            # pack ready sub-operations into clusters: one operator per AC
            by_op: dict[Operator, list[int]] = defaultdict(list)
            for idx in ready:
                by_op[sub_ops[idx].op].append(idx)
            placed: list[int] = []
            cluster_instructions: list[ACInstruction] = []
            cluster_id = 0
            for op, indices in sorted(by_op.items(), key=lambda kv: (-len(kv[1]), kv[0].value)):
                pos = 0
                while pos < len(indices) and cluster_id < self.acs_per_thread:
                    chunk = indices[pos : pos + self.aus_per_cluster]
                    instruction = ACInstruction(cluster_id=cluster_id, operation=op)
                    for au_index, sub_idx in enumerate(chunk):
                        sub = sub_ops[sub_idx]
                        instruction.add_slot(self._make_slot(sub, au_index))
                        placed.append(sub_idx)
                    cluster_instructions.append(instruction)
                    cluster_id += 1
                    pos += len(chunk)
                if cluster_id >= self.acs_per_thread:
                    break
            if not placed:
                raise SchedulingError("scheduler made no progress; dependency cycle?")
            step = EngineStep(step=step_index, cluster_instructions=cluster_instructions)
            steps.append(step)
            total_cycles += step.latency
            total_slots += total_aus
            scheduled_count += len(placed)
            step_index += 1

            placed_set = set(placed)
            ready = [idx for idx in ready if idx not in placed_set]
            for idx in placed:
                for dependent in dependents[idx]:
                    remaining_deps[dependent] -= 1
                    if remaining_deps[dependent] == 0:
                        ready.append(dependent)

        if scheduled_count != len(sub_ops):
            raise SchedulingError(
                f"{len(sub_ops) - scheduled_count} sub-operations could not be scheduled"
            )
        utilization = scheduled_count / total_slots if total_slots else 0.0
        return ScheduleStats(
            steps=step_index,
            cycles=total_cycles,
            operations=scheduled_count,
            average_au_utilization=utilization,
        )

    # ------------------------------------------------------------------ #
    # micro-instruction emission
    # ------------------------------------------------------------------ #
    def _make_slot(self, sub: SubOperation, au_index: int) -> AUInstruction:
        operands = []
        for src in sub.sources:
            if src[0] == "imm":
                operands.append(AUOperand(SourceKind.IMMEDIATE, value=float(src[1])))
            else:
                operands.append(
                    AUOperand(SourceKind.DATA_MEMORY, address=self.address_map.address_of(src))
                )
        while len(operands) < 2:
            operands.append(AUOperand(SourceKind.NONE))
        dest_address = self.address_map.address_of(sub.dest)
        return AUInstruction(
            au_index=au_index,
            src_a=operands[0],
            src_b=operands[1],
            dest_kind=DestKind.DATA_MEMORY,
            dest_address=dest_address,
            node_id=sub.node_id,
            element_index=sub.element_index,
        )


def estimate_region_cycles(
    graph: HDFG, region: Region, acs_per_thread: int, aus_per_cluster: int = AUS_PER_CLUSTER
) -> int:
    """Fast analytic estimate of a region's schedule length.

    Used by the hardware generator's design-space exploration, where running
    the full list scheduler for every candidate design would be wasteful.
    The estimate combines the throughput bound (total sub-operations divided
    by the available AUs) with the dependence bound (critical-path depth).
    """
    total_aus = max(1, acs_per_thread * aus_per_cluster)
    sub_nodes = graph.total_sub_nodes([region])
    depth = graph.critical_path_depth([region])
    throughput_bound = math.ceil(sub_nodes / total_aus)
    return max(throughput_bound, depth)
