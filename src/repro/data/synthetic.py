"""Synthetic dataset generators.

The paper evaluates on UCI datasets (Remote Sensing, WLAN, Patient, Blog
Feedback), Netflix, and synthetic nominal/extensive datasets.  None of the
raw files ship with this reproduction, so every dataset is generated
synthetically with the *shape* of the original (feature count, tuple count,
label type, model topology).  Learning behaviour — the only thing the
runtime comparisons depend on — is preserved because the generators plant a
ground-truth model and label the data with it (plus noise).
"""

from __future__ import annotations

import numpy as np


def generate_regression(
    n_tuples: int,
    n_features: int,
    noise: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """Dense regression data: columns ``x0..x{k-1}, y`` with a linear target."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_tuples, n_features))
    w = rng.normal(scale=1.0 / np.sqrt(n_features), size=n_features)
    y = X @ w + noise * rng.normal(size=n_tuples)
    return np.hstack([X, y[:, None]])


def generate_classification(
    n_tuples: int,
    n_features: int,
    labels: tuple[float, float] = (0.0, 1.0),
    separation: float = 1.0,
    seed: int = 0,
) -> np.ndarray:
    """Dense binary-classification data with linearly separable-ish classes.

    ``labels`` selects the label encoding: ``(0, 1)`` for logistic
    regression, ``(-1, 1)`` for SVM.
    """
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_tuples, n_features))
    w = rng.normal(scale=1.0 / np.sqrt(n_features), size=n_features)
    logits = separation * (X @ w) + 0.3 * rng.normal(size=n_tuples)
    y = np.where(logits > 0.0, labels[1], labels[0])
    return np.hstack([X, y[:, None]])


def generate_ratings(
    n_rows: int,
    n_cols: int,
    rank: int = 10,
    density: float = 0.3,
    noise: float = 0.05,
    seed: int = 0,
    n_ratings: int | None = None,
) -> np.ndarray:
    """Sparse rating triples ``(row, col, value)`` from a planted low-rank matrix.

    ``n_ratings`` gives the exact number of rating tuples to emit; when it is
    omitted the count is derived from ``density``.
    """
    rng = np.random.default_rng(seed)
    left = rng.normal(scale=1.0 / np.sqrt(rank), size=(n_rows, rank))
    right = rng.normal(scale=1.0 / np.sqrt(rank), size=(n_cols, rank))
    if n_ratings is None:
        n_ratings = max(1, int(n_rows * n_cols * density))
    n_ratings = max(1, min(n_ratings, n_rows * n_cols))
    rows = rng.integers(0, n_rows, size=n_ratings)
    cols = rng.integers(0, n_cols, size=n_ratings)
    values = np.sum(left[rows] * right[cols], axis=1) + noise * rng.normal(size=n_ratings)
    return np.column_stack([rows.astype(float), cols.astype(float), values])


def generate_for_algorithm(
    algorithm_key: str,
    n_tuples: int,
    n_features: int,
    model_topology: tuple[int, ...] = (),
    seed: int = 0,
) -> np.ndarray:
    """Generate a dataset with the right schema for one algorithm."""
    if algorithm_key == "linear":
        return generate_regression(n_tuples, n_features, seed=seed)
    if algorithm_key == "logistic":
        return generate_classification(n_tuples, n_features, labels=(0.0, 1.0), seed=seed)
    if algorithm_key == "svm":
        return generate_classification(n_tuples, n_features, labels=(-1.0, 1.0), seed=seed)
    if algorithm_key == "lrmf":
        n_rows = model_topology[0] if model_topology else 32
        n_cols = model_topology[1] if len(model_topology) > 1 else 32
        rank = model_topology[2] if len(model_topology) > 2 else 10
        return generate_ratings(n_rows, n_cols, rank=rank, seed=seed, n_ratings=n_tuples)
    raise ValueError(f"unknown algorithm key {algorithm_key!r}")
