"""Datasets: synthetic generators and the Table 3 workload registry."""

from repro.data.synthetic import (
    generate_classification,
    generate_for_algorithm,
    generate_ratings,
    generate_regression,
)
from repro.data.workloads import (
    WORKLOADS,
    Workload,
    get_workload,
    real_workloads,
    synthetic_extensive_workloads,
    synthetic_nominal_workloads,
    workload_names,
)

__all__ = [
    "WORKLOADS",
    "Workload",
    "generate_classification",
    "generate_for_algorithm",
    "generate_ratings",
    "generate_regression",
    "get_workload",
    "real_workloads",
    "synthetic_extensive_workloads",
    "synthetic_nominal_workloads",
    "workload_names",
]
