"""Workload registry: the 14 datasets/models of the paper's Table 3.

Every workload carries two sizes:

* **paper scale** — the tuple counts, page counts and sizes as listed in
  Table 3; these drive the analytical performance model that regenerates
  the paper's figures (who wins and by how much depends on the data volume
  and the per-tuple compute, not on the actual feature values);
* **functional scale** — a laptop-sized version of the same dataset
  (identical schema and algorithm, fewer tuples and, for the extreme
  synthetic workloads, proportionally fewer features) that is actually
  materialised, loaded into the miniature RDBMS and trained on during
  examples and integration tests.

For the LRMF workloads Table 3 lists one tuple per matrix row (each tuple
is that row's dense rating vector), which is why, e.g., Netflix shows 6,040
tuples across 3,068 pages: the per-tuple payload is ``n_cols`` ratings.
The performance model accounts for this with ``ratings_per_tuple``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.data.synthetic import generate_for_algorithm

FLOAT_BYTES = 4
TUPLE_OVERHEAD_BYTES = 12        # 8-byte tuple header + 4-byte line pointer
PAGE_SIZE = 32 * 1024


@dataclass(frozen=True)
class Workload:
    """One row of Table 3, plus the scaled-down functional configuration."""

    name: str
    algorithm_key: str
    model_topology: tuple[int, ...]
    paper_tuples: int
    paper_pages: int
    paper_size_mb: float
    category: str                   # "real", "sn" (synthetic nominal), "se" (synthetic extensive)
    func_tuples: int
    func_features: int
    func_topology: tuple[int, ...] = ()
    default_epochs: int = 10
    learning_rate: float = 0.05
    merge_coefficient: int = 16
    notes: str = ""
    extras: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # paper-scale derived quantities (performance model inputs)
    # ------------------------------------------------------------------ #
    @property
    def is_synthetic(self) -> bool:
        return self.category in ("sn", "se")

    @property
    def n_features(self) -> int:
        """Width of the model for the dense algorithms; rank for LRMF."""
        if self.algorithm_key == "lrmf":
            return self.model_topology[2] if len(self.model_topology) > 2 else 10
        return self.model_topology[0]

    @property
    def ratings_per_tuple(self) -> int:
        """For LRMF: how many ratings one stored tuple (a matrix row) carries."""
        if self.algorithm_key != "lrmf":
            return 1
        per_tuple_bytes = (
            self.paper_size_mb * 1024 * 1024 / max(1, self.paper_tuples)
            - TUPLE_OVERHEAD_BYTES
        )
        return max(1, int(per_tuple_bytes // FLOAT_BYTES))

    @property
    def tuple_bytes(self) -> int:
        """On-page payload bytes of one stored tuple at paper scale."""
        if self.algorithm_key == "lrmf":
            return self.ratings_per_tuple * FLOAT_BYTES
        return (self.model_topology[0] + 1) * FLOAT_BYTES

    @property
    def paper_size_bytes(self) -> float:
        return self.paper_size_mb * 1024 * 1024

    @property
    def tuples_per_page(self) -> float:
        return max(1.0, self.paper_tuples / max(1, self.paper_pages))

    @property
    def model_elements(self) -> int:
        if self.algorithm_key == "lrmf":
            rows, cols, rank = (
                self.model_topology[0],
                self.model_topology[1],
                self.model_topology[2] if len(self.model_topology) > 2 else 10,
            )
            return (rows + cols) * rank
        return self.model_topology[0]

    # ------------------------------------------------------------------ #
    # functional-scale dataset generation
    # ------------------------------------------------------------------ #
    def functional_topology(self) -> tuple[int, ...]:
        if self.func_topology:
            return self.func_topology
        if self.algorithm_key == "lrmf":
            return (32, 24, 8)
        return (self.func_features,)

    def generate(self, seed: int = 0) -> np.ndarray:
        """Materialise the functional-scale dataset as a NumPy array."""
        return generate_for_algorithm(
            self.algorithm_key,
            n_tuples=self.func_tuples,
            n_features=self.func_features,
            model_topology=self.functional_topology(),
            seed=seed,
        )


def _w(**kwargs) -> Workload:
    return Workload(**kwargs)


# The 14 workloads of Table 3.  Functional sizes keep the same algorithm and
# schema family but are shrunk so that integration tests and examples finish
# in seconds.
WORKLOADS: tuple[Workload, ...] = (
    _w(
        name="Remote Sensing LR",
        algorithm_key="logistic",
        model_topology=(54,),
        paper_tuples=581_102,
        paper_pages=4_924,
        paper_size_mb=154,
        category="real",
        func_tuples=2_000,
        func_features=54,
        default_epochs=20,
        notes="UCI covertype-style classification dataset",
    ),
    _w(
        name="WLAN",
        algorithm_key="logistic",
        model_topology=(520,),
        paper_tuples=19_937,
        paper_pages=1_330,
        paper_size_mb=42,
        category="real",
        func_tuples=1_000,
        func_features=120,
        default_epochs=20,
        notes="indoor-localisation fingerprints (wide, sparse-ish)",
    ),
    _w(
        name="Remote Sensing SVM",
        algorithm_key="svm",
        model_topology=(54,),
        paper_tuples=581_102,
        paper_pages=4_924,
        paper_size_mb=154,
        category="real",
        func_tuples=2_000,
        func_features=54,
        default_epochs=20,
    ),
    _w(
        name="Netflix",
        algorithm_key="lrmf",
        model_topology=(6_040, 3_952, 10),
        paper_tuples=6_040,
        paper_pages=3_068,
        paper_size_mb=96,
        category="real",
        func_tuples=1_500,
        func_features=10,
        func_topology=(48, 36, 8),
        default_epochs=10,
        notes="movie-recommendation rating matrix",
    ),
    _w(
        name="Patient",
        algorithm_key="linear",
        model_topology=(384,),
        paper_tuples=53_500,
        paper_pages=1_941,
        paper_size_mb=61,
        category="real",
        func_tuples=1_500,
        func_features=96,
        default_epochs=20,
    ),
    _w(
        name="Blog Feedback",
        algorithm_key="linear",
        model_topology=(280,),
        paper_tuples=52_397,
        paper_pages=2_675,
        paper_size_mb=84,
        category="real",
        func_tuples=1_500,
        func_features=80,
        default_epochs=20,
    ),
    _w(
        name="S/N Logistic",
        algorithm_key="logistic",
        model_topology=(2_000,),
        paper_tuples=387_944,
        paper_pages=96_986,
        paper_size_mb=3_031,
        category="sn",
        func_tuples=800,
        func_features=200,
        default_epochs=5,
    ),
    _w(
        name="S/N SVM",
        algorithm_key="svm",
        model_topology=(1_740,),
        paper_tuples=678_392,
        paper_pages=169_598,
        paper_size_mb=5_300,
        category="sn",
        func_tuples=800,
        func_features=174,
        default_epochs=5,
    ),
    _w(
        name="S/N LRMF",
        algorithm_key="lrmf",
        model_topology=(19_880, 19_880, 10),
        paper_tuples=19_880,
        paper_pages=50_784,
        paper_size_mb=1_587,
        category="sn",
        func_tuples=1_200,
        func_features=10,
        func_topology=(40, 40, 8),
        default_epochs=5,
    ),
    _w(
        name="S/N Linear",
        algorithm_key="linear",
        model_topology=(8_000,),
        paper_tuples=130_503,
        paper_pages=130_503,
        paper_size_mb=4_078,
        category="sn",
        func_tuples=600,
        func_features=400,
        default_epochs=5,
    ),
    _w(
        name="S/E Logistic",
        algorithm_key="logistic",
        model_topology=(6_033,),
        paper_tuples=1_044_024,
        paper_pages=809_339,
        paper_size_mb=25_292,
        category="se",
        func_tuples=600,
        func_features=300,
        default_epochs=3,
    ),
    _w(
        name="S/E SVM",
        algorithm_key="svm",
        model_topology=(7_129,),
        paper_tuples=1_356_784,
        paper_pages=1_242_871,
        paper_size_mb=38_840,
        category="se",
        func_tuples=600,
        func_features=300,
        default_epochs=3,
    ),
    _w(
        name="S/E LRMF",
        algorithm_key="lrmf",
        model_topology=(28_002, 45_064, 10),
        paper_tuples=45_064,
        paper_pages=162_146,
        paper_size_mb=5_067,
        category="se",
        func_tuples=1_500,
        func_features=10,
        func_topology=(48, 40, 8),
        default_epochs=3,
    ),
    _w(
        name="S/E Linear",
        algorithm_key="linear",
        model_topology=(8_000,),
        paper_tuples=1_000_000,
        paper_pages=1_027_961,
        paper_size_mb=32_124,
        category="se",
        func_tuples=600,
        func_features=400,
        default_epochs=3,
    ),
)

_BY_NAME = {w.name.lower(): w for w in WORKLOADS}


def workload_names(category: str | None = None) -> list[str]:
    """Names of all workloads, optionally filtered by category."""
    return [w.name for w in WORKLOADS if category is None or w.category == category]


def get_workload(name: str) -> Workload:
    """Look up one workload by its Table 3 name (case-insensitive)."""
    try:
        return _BY_NAME[name.strip().lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {workload_names()}"
        ) from None


def real_workloads() -> list[Workload]:
    return [w for w in WORKLOADS if w.category == "real"]


def synthetic_nominal_workloads() -> list[Workload]:
    return [w for w in WORKLOADS if w.category == "sn"]


def synthetic_extensive_workloads() -> list[Workload]:
    return [w for w in WORKLOADS if w.category == "se"]
