"""Calibrated cost constants for the end-to-end runtime model.

The reproduction runs on a laptop-scale functional simulator, so absolute
runtimes of the paper's testbed (4-core i7-6700 + SSD for the software
systems, a VU9P FPGA for DAnA) are modelled analytically.  The constants
below are calibrated against the absolute runtimes of Table 5 and the
hardware of §7 ("Experimental setup"); they are deliberately simple —
an effective throughput plus a per-item overhead per subsystem — because
the paper's comparisons depend on *ratios* between systems, not on exact
magnitudes.

Everything is exposed as one dataclass so benchmarks can run sensitivity
studies (e.g. Figure 14's bandwidth sweep) by replacing a single field.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CPUCostModel:
    """Single-node CPU execution (PostgreSQL + MADlib style UDFs)."""

    #: effective floating-point throughput of the interpreted / UDF-based
    #: per-tuple execution path (GFLOP/s).  MADlib pays per-tuple function
    #: call and de-serialisation costs, so this is far below peak.
    effective_gflops: float = 0.9
    #: effective throughput when the algorithm's inner loop is easily
    #: vectorised by the compiler (the paper's linear-regression workloads).
    vectorized_gflops: float = 6.5
    #: fixed per-tuple overhead of the executor + UDF call (seconds).
    per_tuple_overhead_s: float = 3.5e-7
    #: per-page overhead of the buffer-pool/heap access path (seconds).
    per_page_overhead_s: float = 2.0e-6
    #: fixed per-query overhead (parse/plan/aggregate setup, seconds).
    per_query_overhead_s: float = 0.05


@dataclass(frozen=True)
class GreenplumCostModel:
    """Scale-out (segment-parallel) MADlib execution on one machine."""

    #: physical cores of the testbed (i7-6700: 4 cores / 8 threads).
    physical_cores: int = 4
    #: efficiency of parallelising the per-epoch work across segments.
    parallel_efficiency: float = 0.45
    #: per-segment per-epoch coordination overhead (seconds).
    per_segment_epoch_overhead_s: float = 0.002
    #: fixed per-query overhead (dispatcher, motion setup, seconds).
    per_query_overhead_s: float = 0.45


@dataclass(frozen=True)
class StorageCostModel:
    """Cold-cache I/O: reading training pages from the SSD."""

    #: sequential read bandwidth of the SATA SSD (bytes/second).
    disk_bandwidth_bytes: float = 520e6
    #: per-page request overhead (seconds).
    per_page_seek_s: float = 2.0e-6


@dataclass(frozen=True)
class ExternalLibraryCostModel:
    """Out-of-RDBMS libraries (Liblinear / DimmWitted)."""

    #: COPY-to-file export bandwidth out of PostgreSQL (bytes/second).
    export_bandwidth_bytes: float = 95e6
    #: parsing/reformatting bandwidth into the library's format (bytes/s).
    transform_bandwidth_bytes: float = 1.6e9
    #: multi-core compute throughput for algorithms the library vectorises
    #: well (GFLOP/s across up to 16 threads on 4 cores).
    compute_gflops: float = 11.0
    #: throughput for solvers that fight the storage layout (the paper finds
    #: Liblinear/DimmWitted SVM far slower than MADlib's in-database SVM).
    svm_compute_gflops: float = 0.045
    #: per-tuple overhead of the library's data structures (seconds).
    per_tuple_overhead_s: float = 6.0e-8


@dataclass(frozen=True)
class DAnACostModel:
    """DAnA-specific constants that are not derived from the FPGA spec."""

    #: per-query overhead: catalog lookup, configuration-data shipping,
    #: execution-engine programming (seconds).
    per_query_overhead_s: float = 0.03
    #: CPU cost of extracting + transforming ONE tuple when Striders are
    #: disabled and the CPU feeds the execution engine (seconds/tuple).
    cpu_extract_per_tuple_s: float = 1.5e-7
    #: fraction of the per-epoch data movement that cannot be overlapped
    #: with compute (pipeline fill, handshakes).
    non_overlap_fraction: float = 0.05
    #: number of ALUs attached to the cross-thread tree bus.
    tree_bus_alus: int = 64


@dataclass(frozen=True)
class CostModel:
    """Bundle of every calibrated constant used by the runtime models."""

    cpu: CPUCostModel = CPUCostModel()
    greenplum: GreenplumCostModel = GreenplumCostModel()
    storage: StorageCostModel = StorageCostModel()
    external: ExternalLibraryCostModel = ExternalLibraryCostModel()
    dana: DAnACostModel = DAnACostModel()

    def with_storage_bandwidth(self, bandwidth_bytes: float) -> "CostModel":
        """This model with the disk bandwidth replaced (sweep helper)."""
        return replace(self, storage=replace(self.storage, disk_bandwidth_bytes=bandwidth_bytes))

    def with_cpu_gflops(self, gflops: float) -> "CostModel":
        """This model with the effective CPU GFLOPS replaced (sweep helper)."""
        return replace(self, cpu=replace(self.cpu, effective_gflops=gflops))


DEFAULT_COST_MODEL = CostModel()
