"""Analytical performance models that regenerate the paper's figures."""

from repro.perf.calibration import DEFAULT_EPOCHS, PAPER_EPOCHS, epochs_for
from repro.perf.cost_model import (
    CostModel,
    CPUCostModel,
    DAnACostModel,
    DEFAULT_COST_MODEL,
    ExternalLibraryCostModel,
    GreenplumCostModel,
    StorageCostModel,
)
from repro.perf.cpu_model import ExternalLibraryModel, GreenplumModel, MADlibPostgresModel
from repro.perf.fpga_model import DAnAModel, EpochCost, TABLAModel
from repro.perf.io_model import IOEstimate, IOModel
from repro.perf.plan_cost import (
    IPC_MESSAGE_OVERHEAD_BYTES,
    page_tuple_counts,
    predict_score_cost,
    predict_train_cost,
    predicted_merges,
    worker_limit,
)
from repro.perf.report import RuntimeBreakdown, format_seconds, geomean, speedup_table
from repro.perf.segment_model import (
    DEFAULT_IPC_BANDWIDTH_BYTES_PER_S,
    DEFAULT_IPC_ROUND_TRIP_S,
    SegmentScalingModel,
    ShardedRunCost,
    measured_segment_sweep,
)
from repro.perf.serving_model import ScoreRunCost, measured_serving_sweep

__all__ = [
    "CPUCostModel",
    "CostModel",
    "DAnACostModel",
    "DAnAModel",
    "DEFAULT_COST_MODEL",
    "DEFAULT_EPOCHS",
    "DEFAULT_IPC_BANDWIDTH_BYTES_PER_S",
    "DEFAULT_IPC_ROUND_TRIP_S",
    "EpochCost",
    "ExternalLibraryCostModel",
    "ExternalLibraryModel",
    "GreenplumCostModel",
    "GreenplumModel",
    "IOEstimate",
    "IOModel",
    "IPC_MESSAGE_OVERHEAD_BYTES",
    "MADlibPostgresModel",
    "PAPER_EPOCHS",
    "RuntimeBreakdown",
    "ScoreRunCost",
    "SegmentScalingModel",
    "ShardedRunCost",
    "StorageCostModel",
    "measured_segment_sweep",
    "measured_serving_sweep",
    "TABLAModel",
    "epochs_for",
    "format_seconds",
    "geomean",
    "page_tuple_counts",
    "predict_score_cost",
    "predict_train_cost",
    "predicted_merges",
    "speedup_table",
    "worker_limit",
]
