"""Runtime breakdowns and comparison helpers shared by every system model."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping


@dataclass(frozen=True)
class RuntimeBreakdown:
    """End-to-end runtime of one system on one workload, split by phase.

    All values are seconds.  ``io`` is time spent reading training pages
    from storage, ``data_movement`` is time moving/transforming data between
    the storage engine and the compute substrate (AXI transfers, data
    export, CPU tuple extraction), ``compute`` is the analytics computation
    itself, and ``overhead`` covers per-query fixed costs.
    """

    system: str
    workload: str
    io: float = 0.0
    data_movement: float = 0.0
    compute: float = 0.0
    overhead: float = 0.0
    detail: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        """End-to-end seconds: I/O + data movement + compute + overhead."""
        return self.io + self.data_movement + self.compute + self.overhead

    def speedup_over(self, baseline: "RuntimeBreakdown") -> float:
        """How many times faster this system is than ``baseline``."""
        if self.total <= 0:
            return math.inf
        return baseline.total / self.total

    def as_dict(self) -> dict:
        """JSON-friendly row for benchmark reports."""
        return {
            "system": self.system,
            "workload": self.workload,
            "io_s": self.io,
            "data_movement_s": self.data_movement,
            "compute_s": self.compute,
            "overhead_s": self.overhead,
            "total_s": self.total,
        }


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, the aggregation used by every figure in the paper."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup_table(
    baselines: Mapping[str, RuntimeBreakdown],
    candidates: Mapping[str, RuntimeBreakdown],
) -> dict[str, float]:
    """Per-workload speedups of ``candidates`` over ``baselines`` (same keys)."""
    table = {}
    for name, baseline in baselines.items():
        if name in candidates:
            table[name] = candidates[name].speedup_over(baseline)
    return table


def format_seconds(seconds: float) -> str:
    """Human-readable runtime, in the style of the paper's Table 5."""
    if seconds < 60:
        whole = int(seconds)
        millis = int(round((seconds - whole) * 1000))
        return f"{whole}s {millis}ms"
    if seconds < 3600:
        minutes = int(seconds // 60)
        secs = int(round(seconds - minutes * 60))
        return f"{minutes}m {secs}s"
    hours = int(seconds // 3600)
    minutes = int((seconds - hours * 3600) // 60)
    secs = int(round(seconds - hours * 3600 - minutes * 60))
    return f"{hours}h {minutes}m {secs}s"
