"""FPGA-side runtime models: DAnA, DAnA-without-Striders and TABLA.

The model drives the same hardware-generation pipeline the functional
simulator uses (DSL → hDFG → hardware generator → design point) with the
*paper-scale* dataset statistics, and converts the resulting cycle counts
into seconds at the FPGA frequency:

* **compute** — update-rule schedule length per batch, tree-bus merge cost
  and post-merge schedule length, times the number of batches per epoch;
* **data** — Strider page-walking cycles (parallel across the page buffers)
  plus AXI transfer cycles for the pages shipped from the buffer pool;
* access and execution engines are interleaved, so one epoch costs the
  maximum of the two (plus a small non-overlappable fraction);
* with Striders disabled the CPU extracts and transforms every tuple and
  the transformation cannot be overlapped with the accelerator, which is
  exactly the ablation of Figure 11;
* TABLA is modelled as a single-threaded accelerator fed by the CPU, the
  configuration the paper compares against in Figure 16.

LRMF needs one special case: Table 3 stores one tuple per matrix row (a
dense vector of ratings), and the factor-update chain through the shared
column factors limits how much of that row can be processed in parallel.
The model caps the usable lanes at ``16 × rank``, which reproduces the
paper's observations that LRMF neither scales with threads (Figure 12) nor
with bandwidth (Figure 14).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.algorithms import get_algorithm
from repro.algorithms.base import Hyperparameters
from repro.compiler.hardware_generator import AcceleratorDesign, HardwareGenerator
from repro.data.workloads import Workload
from repro.hw.fpga import DEFAULT_FPGA, FPGASpec
from repro.perf.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.perf.io_model import IOModel
from repro.perf.report import RuntimeBreakdown
from repro.rdbms.page import PageLayout
from repro.rdbms.types import ColumnType, Schema


@dataclass
class EpochCost:
    """Per-epoch cycle/second accounting for one DAnA configuration."""

    compute_seconds: float
    data_seconds: float
    cpu_extract_seconds: float = 0.0
    detail: dict = field(default_factory=dict)

    def engine_seconds(self, non_overlap_fraction: float, overlapped: bool) -> float:
        """Wall seconds per epoch, with or without compute/data overlap."""
        if overlapped:
            base = max(self.compute_seconds, self.data_seconds)
            extra = non_overlap_fraction * min(self.compute_seconds, self.data_seconds)
            return base + extra + self.cpu_extract_seconds
        return self.compute_seconds + self.data_seconds + self.cpu_extract_seconds


class DAnAModel:
    """End-to-end runtime model of DAnA-enhanced PostgreSQL."""

    system_name = "DAnA+PostgreSQL"

    def __init__(
        self,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        fpga: FPGASpec = DEFAULT_FPGA,
        merge_coefficient: int = 16,
        use_striders: bool = True,
        max_threads: int | None = None,
        system_name: str | None = None,
    ) -> None:
        self.cost_model = cost_model
        self.fpga = fpga
        self.merge_coefficient = merge_coefficient
        self.use_striders = use_striders
        self.max_threads = max_threads
        self.io_model = IOModel(cost_model)
        if system_name:
            self.system_name = system_name
        self._design_cache: dict[tuple, tuple[AcceleratorDesign, object]] = {}

    # ------------------------------------------------------------------ #
    # hardware generation at paper scale
    # ------------------------------------------------------------------ #
    def _paper_schema(self, workload: Workload) -> Schema:
        if workload.algorithm_key == "lrmf":
            return Schema.lrmf_schema()
        return Schema.training_schema(workload.model_topology[0], ColumnType.FLOAT4)

    def design_for(self, workload: Workload) -> tuple[AcceleratorDesign, object]:
        """Generate (and cache) the accelerator design for one workload."""
        key = (
            workload.name,
            self.merge_coefficient,
            self.max_threads,
            self.fpga.dsp_slices,
            round(self.fpga.axi_bandwidth_gbps, 6),
        )
        if key in self._design_cache:
            return self._design_cache[key]
        algorithm = get_algorithm(workload.algorithm_key)
        hyper = Hyperparameters(merge_coefficient=self.merge_coefficient)
        if workload.algorithm_key == "lrmf":
            # LRMF has no merge function (row-addressed Hogwild updates), so
            # a single thread with the full AC allocation is the design the
            # hardware generator would settle on; the functional topology is
            # irrelevant for timing, so a small stand-in builds instantly.
            hyper = Hyperparameters(merge_coefficient=1)
            spec = algorithm.build_spec(workload.n_features, hyper, (64, 64, workload.n_features))
        else:
            spec = algorithm.build_spec(workload.model_topology[0], hyper)
        from repro.translator import translate

        graph = translate(spec.algo)
        layout = PageLayout(page_size=32 * 1024)
        effective_merge = 1 if workload.algorithm_key == "lrmf" else self.merge_coefficient
        generator = HardwareGenerator(
            graph,
            layout,
            spec.schema,
            self.fpga,
            merge_coefficient=effective_merge,
            n_tuples=workload.paper_tuples,
            max_threads=self.max_threads,
        )
        design = generator.generate()
        self._design_cache[key] = (design, graph)
        return design, graph

    # ------------------------------------------------------------------ #
    # per-epoch cost
    # ------------------------------------------------------------------ #
    def epoch_cost(self, workload: Workload) -> EpochCost:
        """Compute/data/extract seconds for one epoch of this workload."""
        design, _graph = self.design_for(workload)
        frequency = self.fpga.frequency_hz
        point = design.design_point

        threads = design.threads
        if workload.algorithm_key == "lrmf":
            compute_cycles = self._lrmf_compute_cycles(workload, design)
        else:
            batches = math.ceil(workload.paper_tuples / threads)
            merge_cycles = point.merge_cycles
            compute_cycles = batches * (
                point.update_rule_cycles + merge_cycles + point.post_merge_cycles
            )
        compute_seconds = compute_cycles / frequency

        pages = workload.paper_pages
        strider_cycles_per_page = self._strider_cycles_per_page(workload)
        strider_batches = math.ceil(pages / max(1, design.num_striders))
        strider_seconds = strider_batches * strider_cycles_per_page / frequency
        axi_seconds = workload.paper_size_bytes / self.fpga.axi_bytes_per_second
        data_seconds = max(strider_seconds, axi_seconds) if self.use_striders else axi_seconds

        cpu_extract_seconds = 0.0
        if not self.use_striders:
            cpu_extract_seconds = (
                workload.paper_tuples * self.cost_model.dana.cpu_extract_per_tuple_s
            )
        return EpochCost(
            compute_seconds=compute_seconds,
            data_seconds=data_seconds,
            cpu_extract_seconds=cpu_extract_seconds,
            detail={
                "threads": threads,
                "update_rule_cycles": point.update_rule_cycles,
                "merge_cycles": point.merge_cycles,
                "post_merge_cycles": point.post_merge_cycles,
                "strider_seconds": strider_seconds,
                "axi_seconds": axi_seconds,
                "num_striders": design.num_striders,
            },
        )

    def _lrmf_compute_cycles(self, workload: Workload, design: AcceleratorDesign) -> float:
        rank = workload.n_features
        algorithm = get_algorithm("lrmf")
        flops_per_rating = algorithm.flops_per_tuple(rank)
        lanes = min(design.acs_per_thread * design.aus_per_cluster, 16 * rank)
        cycles_per_tuple = workload.ratings_per_tuple * flops_per_rating / max(1, lanes)
        return workload.paper_tuples * cycles_per_tuple

    def _strider_cycles_per_page(self, workload: Workload) -> float:
        read_width = self.fpga.bram_read_width_bytes
        tuple_bytes = workload.tuple_bytes + 12
        words = max(1, math.ceil(tuple_bytes / read_width))
        payload_words = max(1, math.ceil(workload.tuple_bytes / read_width))
        per_tuple = 4 + words + payload_words
        return 6 + per_tuple * workload.tuples_per_page

    # ------------------------------------------------------------------ #
    # end-to-end estimate
    # ------------------------------------------------------------------ #
    def estimate(self, workload: Workload, epochs: int, warm_cache: bool = True) -> RuntimeBreakdown:
        """End-to-end runtime breakdown on the modelled accelerator."""
        cost = self.epoch_cost(workload)
        dana = self.cost_model.dana
        per_epoch = cost.engine_seconds(dana.non_overlap_fraction, overlapped=self.use_striders)
        engine_total = epochs * per_epoch
        io = self.io_model.total_io_seconds(workload, warm_cache, epochs)
        compute_share = epochs * cost.compute_seconds
        data_share = max(0.0, engine_total - compute_share)
        return RuntimeBreakdown(
            system=self.system_name,
            workload=workload.name,
            io=io,
            data_movement=data_share,
            compute=compute_share,
            overhead=dana.per_query_overhead_s,
            detail={
                "epochs": epochs,
                "per_epoch_s": per_epoch,
                "use_striders": self.use_striders,
                **cost.detail,
            },
        )

    # ------------------------------------------------------------------ #
    # sensitivity-study constructors
    # ------------------------------------------------------------------ #
    def with_bandwidth_scale(self, scale: float) -> "DAnAModel":
        """This model with AXI bandwidth scaled (Figure 14 sweep helper)."""
        return DAnAModel(
            cost_model=self.cost_model,
            fpga=self.fpga.with_bandwidth_scale(scale),
            merge_coefficient=self.merge_coefficient,
            use_striders=self.use_striders,
            max_threads=self.max_threads,
            system_name=self.system_name,
        )

    def with_merge_coefficient(self, merge_coefficient: int) -> "DAnAModel":
        """This model with the merge coefficient replaced (ablation helper)."""
        return DAnAModel(
            cost_model=self.cost_model,
            fpga=self.fpga,
            merge_coefficient=merge_coefficient,
            use_striders=self.use_striders,
            max_threads=self.max_threads,
            system_name=self.system_name,
        )

    def without_striders(self) -> "DAnAModel":
        """The Figure 11 ablation: same design, CPU-side extraction."""
        return DAnAModel(
            cost_model=self.cost_model,
            fpga=self.fpga,
            merge_coefficient=self.merge_coefficient,
            use_striders=False,
            max_threads=self.max_threads,
            system_name="DAnA w/o Striders",
        )


class TABLAModel(DAnAModel):
    """TABLA-style single-threaded accelerator without database integration.

    TABLA generates a high-quality single-threaded design for the same
    update rules, but it is fed by the CPU (no Striders walking the buffer
    pool) and cannot run multiple update-rule threads, which is exactly the
    gap Figure 16 quantifies.
    """

    system_name = "TABLA"

    def __init__(
        self,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        fpga: FPGASpec = DEFAULT_FPGA,
    ) -> None:
        super().__init__(
            cost_model=cost_model,
            fpga=fpga,
            merge_coefficient=1,
            use_striders=False,
            max_threads=1,
            system_name="TABLA",
        )
