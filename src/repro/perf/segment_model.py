"""Segment-sweep cost model hooked to measured sharded-run counters.

The analytical Greenplum model (:class:`~repro.perf.cpu_model.GreenplumModel`)
regenerates Figure 13 from calibrated constants.  This module is its
functional twin for the sharded DAnA subsystem: it converts the *measured*
schedule-derived counters of a :class:`~repro.cluster.sharded.ShardedRunResult`
into modelled wall-clock seconds on the FPGA (segments run concurrently, so
the critical path is the slowest segment plus the serial cross-segment
merge), and predicts how a measured single-segment run would scale to other
segment counts — with the cross-segment merge cost taken from the same
:class:`~repro.hw.tree_bus.TreeBus` cycle model the engines use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, TYPE_CHECKING

from repro.hw.fpga import DEFAULT_FPGA, FPGASpec
from repro.hw.tree_bus import TreeBus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.sharded import ShardedRunResult

#: modelled pipe throughput for pickled worker payloads.  Unix-pipe copies
#: of the small (KB-scale) state dicts land around a few GB/s on commodity
#: hosts; like the Greenplum model's constants this is a calibration knob,
#: not a measurement.
DEFAULT_IPC_BANDWIDTH_BYTES_PER_S = 2e9
#: modelled latency of one blocking send/recv pair on a worker pipe
#: (syscall + scheduler wakeup on both sides).
DEFAULT_IPC_ROUND_TRIP_S = 50e-6


@dataclass(frozen=True)
class ShardedRunCost:
    """Critical-path cycle decomposition of one measured sharded run."""

    segments: int
    epochs_run: int
    #: the slowest segment's AXI + Strider + engine cycles (the single
    #: per-segment cost definition lives on ``SegmentReport.cycles``).
    critical_segment_cycles: int
    cross_merge_cycles: int
    model_elements: int
    #: per-segment stage split for the pipelined book-keeping: extraction
    #: (AXI + Strider) vs execution-engine cycles, in segment order.
    segment_access_cycles: tuple[int, ...] = ()
    segment_engine_cycles: tuple[int, ...] = ()
    #: the run's synchronization policy and merge count (drive how much of
    #: the cross-segment merge the pipelined path can hide).
    sync: str = "bulk_synchronous"
    merges_performed: int = 0
    #: host-side IPC the run paid to ship state over worker pipes.  Both
    #: are zero for lockstep/threads runs (everything stays in one address
    #: space); ``execution="processes"`` books pickled model/stat payloads
    #: here via :class:`~repro.cluster.process_pool.IPCStats`.
    ipc_bytes: int = 0
    ipc_round_trips: int = 0

    @classmethod
    def from_run(cls, run: "ShardedRunResult") -> "ShardedRunCost":
        """Lift the measured per-segment counters into a cost summary."""
        elements = sum(int(v.size) for v in run.models.values())
        return cls(
            segments=run.cluster.segments,
            epochs_run=run.epochs_run,
            critical_segment_cycles=max(
                (seg.cycles for seg in run.segments), default=0
            ),
            cross_merge_cycles=run.cluster.cross_merge_cycles,
            model_elements=elements,
            segment_access_cycles=tuple(seg.access_cycles for seg in run.segments),
            segment_engine_cycles=tuple(seg.engine_cycles for seg in run.segments),
            sync=run.cluster.sync,
            merges_performed=run.cluster.merges_performed,
            ipc_bytes=run.cluster.ipc.bytes_shipped,
            ipc_round_trips=run.cluster.ipc.round_trips,
        )

    @property
    def critical_path_cycles(self) -> int:
        """Same quantity as ``ShardedRunResult.critical_path_cycles``."""
        return self.critical_segment_cycles + self.cross_merge_cycles

    @property
    def pipelined_critical_path_cycles(self) -> int:
        """Critical path when the epoch runtime pipelines its stages.

        Streaming extraction overlaps the Strider page walk with engine
        compute, so a pipelined segment books ``max(extract, exec)`` per
        stage instead of their sum (the serial book-keeping of
        :attr:`critical_path_cycles`).  The cross-segment merge stays
        serial under ``bulk_synchronous``/``stale_synchronous``; with
        ``async_merge`` every merge but the run's final drain merge hides
        under the next epoch's first batches, so only one merge's cycles
        remain exposed.
        """
        if not self.segment_access_cycles and not self.segment_engine_cycles:
            slowest = 0
        else:
            slowest = max(
                max(access, engine)
                for access, engine in zip(
                    self.segment_access_cycles or (0,) * len(self.segment_engine_cycles),
                    self.segment_engine_cycles or (0,) * len(self.segment_access_cycles),
                )
            )
        merge = self.cross_merge_cycles
        if self.sync == "async_merge" and self.merges_performed > 1:
            merge = math.ceil(merge / self.merges_performed)
        return slowest + merge

    @property
    def pipeline_speedup(self) -> float:
        """Modelled serial / pipelined critical-path ratio (>= 1.0)."""
        return self.critical_path_cycles / max(1, self.pipelined_critical_path_cycles)

    def seconds(self, fpga: FPGASpec = DEFAULT_FPGA) -> float:
        """Modelled wall-clock of the run at the FPGA's clock."""
        return self.critical_path_cycles * fpga.cycle_time_s

    def pipelined_seconds(self, fpga: FPGASpec = DEFAULT_FPGA) -> float:
        """Modelled wall-clock of the pipelined run at the FPGA's clock."""
        return self.pipelined_critical_path_cycles * fpga.cycle_time_s

    def ipc_overhead_seconds(
        self,
        bandwidth_bytes_per_s: float = DEFAULT_IPC_BANDWIDTH_BYTES_PER_S,
        round_trip_s: float = DEFAULT_IPC_ROUND_TRIP_S,
    ) -> float:
        """Modelled host-side cost of the run's worker-pipe traffic.

        Charges every shipped byte against a pipe bandwidth and every
        blocking send/recv pair a fixed round-trip latency.  Zero for
        lockstep/threads runs, so adding this term keeps the three
        execution strategies comparable on one axis.
        """
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("IPC bandwidth must be positive")
        return (
            self.ipc_bytes / bandwidth_bytes_per_s
            + self.ipc_round_trips * round_trip_s
        )

    def total_seconds(
        self,
        fpga: FPGASpec = DEFAULT_FPGA,
        bandwidth_bytes_per_s: float = DEFAULT_IPC_BANDWIDTH_BYTES_PER_S,
        round_trip_s: float = DEFAULT_IPC_ROUND_TRIP_S,
    ) -> float:
        """Modelled wall-clock including host-side IPC overhead.

        ``seconds()`` is the device-only critical path; a process-parallel
        run additionally serialises state over pipes each window, and this
        is where that term is booked.
        """
        return self.seconds(fpga) + self.ipc_overhead_seconds(
            bandwidth_bytes_per_s, round_trip_s
        )


class SegmentScalingModel:
    """Predicts sharded critical-path cycles from one measured run.

    Per-segment work (engine + access) scales with the partition size,
    i.e. ``1/segments`` of the measured single-segment cycles; the
    cross-segment merge adds ``ceil(log2(segments))`` tree-bus levels per
    model merge per epoch, priced by the same :class:`TreeBus` cycle model
    that the execution engines use for their thread merges.
    """

    def __init__(self, base: ShardedRunCost, tree_bus_alus: int = 8) -> None:
        if base.segments != 1:
            raise ValueError(
                "the scaling model extrapolates from a 1-segment measurement"
            )
        self.base = base
        self.bus = TreeBus(alu_count=tree_bus_alus)

    def predict_cycles(self, segments: int) -> int:
        """Predicted critical-path cycles at ``segments`` from the 1-segment base."""
        if segments < 1:
            raise ValueError("segment counts start at 1")
        per_segment = self.base.critical_segment_cycles / segments
        merge = (
            self.base.epochs_run
            * self.bus.merge_cycles(segments, self.base.model_elements)
        )
        return int(round(per_segment + merge))

    def sweep(self, segment_counts: Iterable[int]) -> list[dict]:
        """Predicted cycles/speedup rows across ``segment_counts``."""
        rows = []
        for segments in segment_counts:
            cycles = self.predict_cycles(segments)
            rows.append(
                {
                    "segments": segments,
                    "predicted_cycles": cycles,
                    "predicted_speedup_vs_1": round(
                        self.base.critical_path_cycles / max(1, cycles), 3
                    ),
                }
            )
        return rows


def measured_segment_sweep(
    runs: dict[int, "ShardedRunResult"],
    reference_segments: int = 8,
    fpga: FPGASpec = DEFAULT_FPGA,
) -> dict[int, dict]:
    """Normalised critical-path comparison of measured sharded runs.

    ``runs`` maps segment count to its run; the result maps segment count
    to ``{cycles, seconds, speedup_vs_reference}``, the functional-path
    columns of the Figure 13 harness.
    """
    if reference_segments not in runs:
        raise ValueError(
            f"reference segment count {reference_segments} missing from runs"
        )
    reference = ShardedRunCost.from_run(runs[reference_segments]).critical_path_cycles
    table: dict[int, dict] = {}
    for segments, run in sorted(runs.items()):
        cost = ShardedRunCost.from_run(run)
        table[segments] = {
            "cycles": cost.critical_path_cycles,
            "seconds": cost.seconds(fpga),
            "speedup_vs_reference": round(
                reference / max(1, cost.critical_path_cycles), 3
            ),
            "pipelined_cycles": cost.pipelined_critical_path_cycles,
            "pipeline_speedup": round(cost.pipeline_speedup, 3),
        }
    return table
