"""CPU-side runtime models: MADlib+PostgreSQL, MADlib+Greenplum, external libraries.

The models estimate end-to-end runtimes for the software systems the paper
compares against.  Per-epoch compute is derived from the algorithm's
per-tuple floating-point work and an effective CPU throughput (interpreted
UDF execution vs. vectorised array execution), with per-tuple and per-page
executor overheads layered on top.  I/O comes from :class:`IOModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms import get_algorithm
from repro.data.workloads import Workload
from repro.perf.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.perf.io_model import IOModel
from repro.perf.report import RuntimeBreakdown

#: Algorithms whose MADlib implementation executes as tight vectorised array
#: code (the paper singles out linear regression's "high CPU vectorization
#: potential"; MADlib's LRMF likewise runs on dense array operations).
_VECTORIZED_ALGORITHMS = {"linear", "lrmf"}


def _per_tuple_flops(workload: Workload) -> float:
    """Floating-point work one stored tuple contributes per pass."""
    algorithm = get_algorithm(workload.algorithm_key)
    if workload.algorithm_key == "lrmf":
        rank = workload.n_features
        return float(algorithm.flops_per_tuple(rank)) * workload.ratings_per_tuple
    return float(algorithm.flops_per_tuple(workload.model_topology[0]))


@dataclass
class MADlibPostgresModel:
    """Single-threaded MADlib running inside PostgreSQL."""

    cost_model: CostModel = DEFAULT_COST_MODEL
    system_name: str = "MADlib+PostgreSQL"

    def __post_init__(self) -> None:
        self.io_model = IOModel(self.cost_model)

    # -- compute --------------------------------------------------------- #
    def epoch_compute_seconds(self, workload: Workload) -> float:
        """Analytics compute for one pass of the per-tuple update."""
        cpu = self.cost_model.cpu
        flops = _per_tuple_flops(workload)
        vectorized = workload.algorithm_key in _VECTORIZED_ALGORITHMS
        gflops = cpu.vectorized_gflops if vectorized else cpu.effective_gflops
        per_tuple_overhead = (
            cpu.per_tuple_overhead_s * 0.15 if vectorized else cpu.per_tuple_overhead_s
        )
        per_tuple = flops / (gflops * 1e9) + per_tuple_overhead
        page_overhead = workload.paper_pages * cpu.per_page_overhead_s
        return workload.paper_tuples * per_tuple + page_overhead

    def total_compute_seconds(self, workload: Workload, epochs: int) -> float:
        """Total analytics compute for the whole training run.

        MADlib's linear regression is not iterative: it builds the normal
        equations in a single pass (O(n·k²) work) and solves them, which is
        exactly why the paper's linear workloads show both the smallest
        speedups (narrow models: Blog Feedback, Patient) and some of the
        largest ones (the 8,000-feature synthetic models, where the
        quadratic term explodes).  Every other algorithm runs ``epochs``
        passes of its per-tuple update.
        """
        if workload.algorithm_key == "linear":
            cpu = self.cost_model.cpu
            k = workload.model_topology[0]
            flops = workload.paper_tuples * (k * k + 3 * k) + k**3 / 3.0
            solve_seconds = flops / (cpu.vectorized_gflops * 1e9)
            per_tuple_overhead = workload.paper_tuples * cpu.per_tuple_overhead_s * 0.15
            page_overhead = workload.paper_pages * cpu.per_page_overhead_s
            return solve_seconds + per_tuple_overhead + page_overhead
        return epochs * self.epoch_compute_seconds(workload)

    # -- end to end ------------------------------------------------------ #
    def estimate(self, workload: Workload, epochs: int, warm_cache: bool = True) -> RuntimeBreakdown:
        """End-to-end runtime breakdown (I/O + compute + query overhead)."""
        compute = self.total_compute_seconds(workload, epochs)
        io_epochs = 1 if workload.algorithm_key == "linear" else epochs
        io = self.io_model.total_io_seconds(workload, warm_cache, io_epochs)
        return RuntimeBreakdown(
            system=self.system_name,
            workload=workload.name,
            io=io,
            compute=compute,
            overhead=self.cost_model.cpu.per_query_overhead_s,
            detail={"epochs": epochs, "warm_cache": warm_cache},
        )


@dataclass
class GreenplumModel:
    """MADlib running on Greenplum with a configurable number of segments."""

    segments: int = 8
    cost_model: CostModel = DEFAULT_COST_MODEL

    def __post_init__(self) -> None:
        self.single = MADlibPostgresModel(self.cost_model)
        self.io_model = IOModel(self.cost_model)

    @property
    def system_name(self) -> str:
        """Display name carrying the configured segment count."""
        return f"MADlib+Greenplum({self.segments})"

    def effective_parallelism(self) -> float:
        """Useful speedup from the configured segments on the 4-core testbed.

        Segments beyond the physical core count oversubscribe the machine:
        they add coordination work without adding compute, which is why the
        paper finds 8 segments the sweet spot and 16 segments slower.
        """
        gp = self.cost_model.greenplum
        useful = min(self.segments, gp.physical_cores * 2)
        parallelism = 1.0 + (useful - 1) * gp.parallel_efficiency
        if self.segments > gp.physical_cores * 2:
            oversubscription = self.segments / (gp.physical_cores * 2)
            parallelism /= 1.0 + 0.18 * (oversubscription - 1.0)
        return max(1.0, parallelism)

    def estimate(self, workload: Workload, epochs: int, warm_cache: bool = True) -> RuntimeBreakdown:
        """End-to-end breakdown with segment parallelism and coordination."""
        gp = self.cost_model.greenplum
        compute_single = self.single.total_compute_seconds(workload, epochs)
        compute = compute_single / self.effective_parallelism()
        io_epochs = 1 if workload.algorithm_key == "linear" else epochs
        coordination = io_epochs * self.segments * gp.per_segment_epoch_overhead_s
        io = self.io_model.total_io_seconds(workload, warm_cache, io_epochs)
        return RuntimeBreakdown(
            system=self.system_name,
            workload=workload.name,
            io=io,
            compute=compute,
            overhead=gp.per_query_overhead_s + coordination,
            detail={
                "segments": self.segments,
                "effective_parallelism": self.effective_parallelism(),
                "epochs": epochs,
            },
        )


@dataclass
class ExternalLibraryModel:
    """Out-of-RDBMS analytics library (Liblinear- or DimmWitted-style).

    End-to-end time = export the table out of PostgreSQL + transform it into
    the library's format + multi-core compute (Figure 15's three phases).
    """

    library: str = "DimmWitted"
    cost_model: CostModel = DEFAULT_COST_MODEL

    def __post_init__(self) -> None:
        self.io_model = IOModel(self.cost_model)

    @property
    def system_name(self) -> str:
        """Display name carrying the configured library."""
        return f"{self.library}+PostgreSQL"

    def supports(self, workload: Workload) -> bool:
        """Whether the configured library implements this workload's algorithm."""
        if self.library.lower() == "liblinear":
            return workload.algorithm_key in ("logistic", "svm")
        return workload.algorithm_key in ("logistic", "svm", "linear")

    def export_seconds(self, workload: Workload) -> float:
        """Time to export the table out of PostgreSQL (Figure 15 phase 1)."""
        ext = self.cost_model.external
        return workload.paper_size_bytes / ext.export_bandwidth_bytes

    def transform_seconds(self, workload: Workload) -> float:
        """Time to transform into the library's format (Figure 15 phase 2)."""
        ext = self.cost_model.external
        return workload.paper_size_bytes / ext.transform_bandwidth_bytes

    def compute_seconds(self, workload: Workload, epochs: int) -> float:
        """Multi-core library compute (Figure 15 phase 3)."""
        ext = self.cost_model.external
        flops = _per_tuple_flops(workload)
        gflops = ext.svm_compute_gflops if workload.algorithm_key == "svm" else ext.compute_gflops
        per_tuple = flops / (gflops * 1e9) + ext.per_tuple_overhead_s
        return epochs * workload.paper_tuples * per_tuple

    def estimate(self, workload: Workload, epochs: int, warm_cache: bool = True) -> RuntimeBreakdown:
        """End-to-end breakdown: I/O + export/transform movement + compute."""
        io = self.io_model.total_io_seconds(workload, warm_cache, epochs=1)
        return RuntimeBreakdown(
            system=self.system_name,
            workload=workload.name,
            io=io,
            data_movement=self.export_seconds(workload) + self.transform_seconds(workload),
            compute=self.compute_seconds(workload, epochs),
            overhead=0.02,
            detail={
                "export_s": self.export_seconds(workload),
                "transform_s": self.transform_seconds(workload),
                "library": self.library,
            },
        )

    def breakdown_fractions(self, workload: Workload, epochs: int) -> dict[str, float]:
        """Export / transform / compute shares of the three-phase pipeline."""
        export = self.export_seconds(workload)
        transform = self.transform_seconds(workload)
        compute = self.compute_seconds(workload, epochs)
        total = max(export + transform + compute, 1e-12)
        return {
            "data_export": export / total,
            "data_transform": transform / total,
            "compute": compute / total,
        }
