"""Predictive statement costing for ``EXPLAIN``.

The measured cost summaries in this package
(:class:`~repro.perf.segment_model.ShardedRunCost`,
:class:`~repro.perf.serving_model.ScoreRunCost`) lift counters out of a
run that already happened.  This module builds the *same* cost objects
before anything runs, from the catalog's page statistics and the
schedule-derived predictors the hardware layer exposes
(:meth:`~repro.hw.access_engine.AccessEngine.estimate_partition_cycles`,
:meth:`~repro.hw.execution_engine.ExecutionEngine.predict_epoch_cycles`,
:meth:`~repro.serving.inference.InferencePlan.predict_forward_cycles`) —
so ``EXPLAIN`` prices a statement with exactly the cycle model the
executed statement would report, and ``EXPLAIN ANALYZE``'s
predicted-vs-actual deltas are a meaningful calibration signal for the
planned cost-based optimizer.
"""

from __future__ import annotations

import math
import os
from typing import Sequence

from repro.hw.tree_bus import TreeBus
from repro.perf.segment_model import ShardedRunCost
from repro.perf.serving_model import ScoreRunCost

#: modelled pickle framing overhead per worker-pipe message (bytes).
IPC_MESSAGE_OVERHEAD_BYTES = 1024


def worker_limit(segments: int) -> int:
    """Concurrent fan-out width of a ``segments``-way run on this host.

    ``min(segments, cpu count)`` — the clamp every thread/process fan-out
    site applies, surfaced here so ``EXPLAIN`` can print it.
    """
    return min(max(1, segments), max(1, os.cpu_count() or 1))


def page_tuple_counts(
    page_nos: Sequence[int], tuple_count: int, tuples_per_page: int
) -> list[int]:
    """Per-page tuple counts for a set of heap pages, without scanning.

    Bulk-loaded heap files fill pages front to back, so page ``p`` holds
    ``min(tuples_per_page, tuple_count - p * tuples_per_page)`` tuples
    (the final page may be partial).  This is what lets the predictors
    price a partition from catalog statistics alone.
    """
    if tuples_per_page < 1:
        raise ValueError("tuples_per_page must be positive")
    return [
        max(0, min(tuples_per_page, tuple_count - no * tuples_per_page))
        for no in page_nos
    ]


def predicted_merges(sync: str, staleness: int, epochs: int) -> int:
    """How many cross-segment merges a sync policy performs over a run.

    ``bulk_synchronous`` and ``async_merge`` merge once per epoch;
    ``stale_synchronous`` merges once per ``staleness``-epoch window.
    """
    if epochs < 1:
        return 0
    if sync == "stale_synchronous":
        return math.ceil(epochs / max(1, staleness))
    return epochs


def predict_score_cost(
    access_engine,
    inference_plan,
    partition_tuples: Sequence[Sequence[int]],
    batch_size: int | None = None,
    stream: bool = True,
) -> ScoreRunCost:
    """Predict a scan-and-score run's cost before executing it.

    ``partition_tuples`` holds one sequence of per-page tuple counts per
    segment (see :func:`page_tuple_counts`).  Each segment's extraction
    stage comes from the access engine's wave-batched strider estimate
    and its forward stage from the inference plan's micro-batch
    arithmetic, so the returned :class:`ScoreRunCost` prices the same
    serial / pipelined critical paths a measured run would report.
    """
    access = []
    forward = []
    for counts in partition_tuples:
        access.append(
            access_engine.estimate_partition_cycles(list(counts))["access_cycles"]
            if counts
            else 0
        )
        forward.append(
            inference_plan.predict_forward_cycles(sum(counts), batch_size)
        )
    return ScoreRunCost(
        segments=len(access),
        tuples_scored=sum(sum(counts) for counts in partition_tuples),
        segment_access_cycles=tuple(access),
        segment_forward_cycles=tuple(forward),
        stream=stream,
    )


def predict_train_cost(
    access_engine,
    execution_engine,
    partition_tuples: Sequence[Sequence[int]],
    epochs: int,
    model_elements: int,
    sync: str = "bulk_synchronous",
    staleness: int = 1,
    tree_bus_alus: int = 8,
    execution: str = "threads",
) -> ShardedRunCost:
    """Predict a (sharded) training run's cost before executing it.

    Per segment: the extraction stage is walked once (pages are
    materialised or streamed, either way each page is cleansed once) and
    the engine stage repeats its schedule-derived epoch arithmetic
    ``epochs`` times.  The cross-segment merge is priced with the same
    :class:`~repro.hw.tree_bus.TreeBus` model the engines use, once per
    predicted merge (:func:`predicted_merges`).  For
    ``execution="processes"`` the returned cost also carries a modelled
    IPC bill — two state-sized pipe messages per segment per merge window
    plus init/shutdown handshakes — which, like the perf package's
    bandwidth constants, is a calibration-style estimate rather than a
    measurement.
    """
    segments = len(partition_tuples)
    access = []
    engine = []
    for counts in partition_tuples:
        access.append(
            access_engine.estimate_partition_cycles(list(counts))["access_cycles"]
            if counts
            else 0
        )
        engine.append(
            epochs * execution_engine.predict_epoch_cycles(sum(counts))
        )
    merges = predicted_merges(sync, staleness, epochs) if segments > 1 else 0
    bus = TreeBus(alu_count=tree_bus_alus)
    cross_merge = merges * bus.merge_cycles(segments, model_elements)
    ipc_bytes = 0
    ipc_round_trips = 0
    if execution == "processes":
        windows = max(1, predicted_merges(sync, staleness, epochs))
        state_bytes = model_elements * 8 + IPC_MESSAGE_OVERHEAD_BYTES
        ipc_bytes = segments * windows * 2 * state_bytes
        ipc_round_trips = segments * (windows + 2)
    return ShardedRunCost(
        segments=segments,
        epochs_run=epochs,
        critical_segment_cycles=max(
            (a + e for a, e in zip(access, engine)), default=0
        ),
        cross_merge_cycles=cross_merge,
        model_elements=model_elements,
        segment_access_cycles=tuple(access),
        segment_engine_cycles=tuple(engine),
        sync=sync,
        merges_performed=merges,
        ipc_bytes=ipc_bytes,
        ipc_round_trips=ipc_round_trips,
    )
