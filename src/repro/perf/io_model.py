"""Storage I/O model: cold vs. warm buffer-pool behaviour.

The paper evaluates every system under a warm cache (training tables
resident in the buffer pool before the query) and a cold cache (nothing
resident, every page is read from the SSD).  The I/O model turns a
workload's page count into seconds of disk time and computes what fraction
of the table actually fits in the buffer pool — for the synthetic
extensive datasets only a part of the table is ever resident, so even the
"warm" runs pay some I/O.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.workloads import Workload
from repro.perf.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.rdbms.buffer_pool import DEFAULT_POOL_BYTES


@dataclass(frozen=True)
class IOEstimate:
    """Seconds of physical I/O and the resident fraction of the table."""

    first_pass_seconds: float
    per_epoch_seconds: float
    resident_fraction: float


class IOModel:
    """Analytic model of buffer-pool + SSD behaviour for sequential scans.

    The paper's testbed has a 32 GB machine with an 8 GB buffer pool, so
    pages evicted from the buffer pool usually stay in the OS page cache;
    ``os_cache_bytes`` models that second level.  Only tables larger than
    buffer pool + page cache pay per-epoch disk reads.
    """

    def __init__(
        self,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        buffer_pool_bytes: float = DEFAULT_POOL_BYTES,
        os_cache_bytes: float = 22 * 1024**3,
        page_size: int = 32 * 1024,
    ) -> None:
        self.cost = cost_model
        self.buffer_pool_bytes = buffer_pool_bytes
        self.os_cache_bytes = os_cache_bytes
        self.page_size = page_size

    @property
    def effective_cache_bytes(self) -> float:
        """Total page cache available: buffer pool plus OS cache."""
        return self.buffer_pool_bytes + self.os_cache_bytes

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def resident_fraction(self, workload: Workload, warm_cache: bool) -> float:
        """Fraction of the training table resident before the query starts."""
        if not warm_cache:
            return 0.0
        return float(
            min(1.0, self.effective_cache_bytes / max(1.0, workload.paper_size_bytes))
        )

    def scan_seconds(self, n_pages: float) -> float:
        """Time to pull ``n_pages`` pages from the SSD."""
        storage = self.cost.storage
        bytes_read = n_pages * self.page_size
        return bytes_read / storage.disk_bandwidth_bytes + n_pages * storage.per_page_seek_s

    # ------------------------------------------------------------------ #
    # estimation
    # ------------------------------------------------------------------ #
    def estimate(self, workload: Workload, warm_cache: bool, epochs: int) -> IOEstimate:
        """I/O cost of training ``workload`` for ``epochs`` passes.

        The first pass reads every non-resident page; subsequent passes only
        re-read the part of the table that does not fit in the buffer pool
        (the pool keeps the rest hot).
        """
        resident = self.resident_fraction(workload, warm_cache)
        pages = workload.paper_pages
        first_pass = self.scan_seconds(pages * (1.0 - resident))
        table_fits = workload.paper_size_bytes <= self.effective_cache_bytes
        if table_fits:
            per_epoch = 0.0
        else:
            overflow_fraction = 1.0 - self.effective_cache_bytes / workload.paper_size_bytes
            per_epoch = self.scan_seconds(pages * overflow_fraction)
        total_per_epoch = per_epoch
        return IOEstimate(
            first_pass_seconds=first_pass,
            per_epoch_seconds=total_per_epoch,
            resident_fraction=resident,
        )

    def total_io_seconds(self, workload: Workload, warm_cache: bool, epochs: int) -> float:
        """First-pass plus per-epoch re-read seconds over the whole run."""
        estimate = self.estimate(workload, warm_cache, epochs)
        extra_epochs = max(0, epochs - 1)
        return estimate.first_pass_seconds + extra_epochs * estimate.per_epoch_seconds
