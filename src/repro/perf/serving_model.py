"""Serving cost model hooked to measured scan-and-score counters.

The training side of the perf package books sharded runs through
:class:`~repro.perf.segment_model.ShardedRunCost`; this module is the
inference twin.  It lifts the measured per-segment counters of a
:class:`~repro.serving.scorer.ScoreResult` into modelled wall-clock
seconds on the FPGA and exposes the **inference cost column** the
reporting layer attaches to sweeps: schedule-derived forward cycles per
scored tuple (the serving counterpart of the training cost model's
cycles-per-epoch accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.hw.fpga import DEFAULT_FPGA, FPGASpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.scorer import ScoreResult


@dataclass(frozen=True)
class ScoreRunCost:
    """Critical-path cycle decomposition of one measured scoring run."""

    segments: int
    tuples_scored: int
    #: per-segment stage split, in segment order: extraction (AXI +
    #: Strider page walk) vs forward-pass compute cycles.
    segment_access_cycles: tuple[int, ...] = ()
    segment_forward_cycles: tuple[int, ...] = ()
    #: True when the run streamed (page walk overlapped the forward tape):
    #: the modelled wall-clock then charges the pipelined critical path.
    stream: bool = False

    @classmethod
    def from_result(cls, result: "ScoreResult") -> "ScoreRunCost":
        """Lift the measured per-segment counters into a cost summary."""
        return cls(
            segments=len(result.segments),
            tuples_scored=result.tuples_scored,
            segment_access_cycles=tuple(s.access_cycles for s in result.segments),
            segment_forward_cycles=tuple(s.forward_cycles for s in result.segments),
            stream=getattr(result, "stream", False),
        )

    @property
    def critical_path_cycles(self) -> int:
        """Slowest segment's serial extract + score path (segments overlap)."""
        return max(
            (
                access + forward
                for access, forward in zip(
                    self.segment_access_cycles, self.segment_forward_cycles
                )
            ),
            default=0,
        )

    @property
    def pipelined_critical_path_cycles(self) -> int:
        """Critical path with the page walk overlapping the forward pass."""
        return max(
            (
                max(access, forward)
                for access, forward in zip(
                    self.segment_access_cycles, self.segment_forward_cycles
                )
            ),
            default=0,
        )

    @property
    def wall_cycles(self) -> int:
        """Cycles charged for the run's wall-clock.

        Streaming runs overlap the page walk with the forward tape, so
        they pay ``max(extract, forward)`` per segment
        (:attr:`pipelined_critical_path_cycles`); materialized runs pay
        the serial sum (:attr:`critical_path_cycles`).
        """
        if self.stream:
            return self.pipelined_critical_path_cycles
        return self.critical_path_cycles

    @property
    def inference_cycles_per_tuple(self) -> float:
        """The inference cost column: forward cycles per scored tuple."""
        if not self.tuples_scored:
            return 0.0
        return sum(self.segment_forward_cycles) / self.tuples_scored

    def seconds(self, fpga: FPGASpec = DEFAULT_FPGA) -> float:
        """Modelled wall-clock of the scoring run at the FPGA's clock."""
        return self.wall_cycles * fpga.cycle_time_s

    def tuples_per_second(self, fpga: FPGASpec = DEFAULT_FPGA) -> float:
        """Modelled scoring throughput at the FPGA's clock."""
        seconds = self.seconds(fpga)
        return self.tuples_scored / seconds if seconds > 0 else 0.0


def measured_serving_sweep(
    results: Iterable["ScoreResult"], fpga: FPGASpec = DEFAULT_FPGA
) -> list[dict]:
    """One report row per scoring run, with the inference cost column."""
    rows = []
    for result in results:
        cost = ScoreRunCost.from_result(result)
        rows.append(
            {
                "segments": cost.segments,
                "path": result.path,
                "stream": cost.stream,
                "batch_size": result.batch_size,
                "tuples_scored": cost.tuples_scored,
                "inference_cycles_per_tuple": round(cost.inference_cycles_per_tuple, 2),
                "critical_path_cycles": cost.critical_path_cycles,
                "pipelined_critical_path_cycles": cost.pipelined_critical_path_cycles,
                "modelled_seconds": cost.seconds(fpga),
                "modelled_tuples_per_sec": round(cost.tuples_per_second(fpga), 1),
            }
        )
    return rows
