"""Per-workload calibration of the runtime model.

The paper reports end-to-end runtimes after training each workload to its
convergence criterion (Table 5).  The number of passes over the data is
never listed per workload, so this module holds the epoch counts we
back-derived from the absolute MADlib+PostgreSQL runtimes together with the
CPU cost model.  Every system in a comparison runs the *same* number of
epochs for a given workload (the paper keeps hyper-parameters identical
across systems), so relative speedups are largely insensitive to the exact
values; they mostly set the compute-to-I/O balance that drives the warm
vs. cold cache gap.
"""

from __future__ import annotations

from repro.data.workloads import Workload

#: Training passes (epochs) per workload, derived from Table 5 runtimes.
PAPER_EPOCHS: dict[str, int] = {
    "Remote Sensing LR": 9,
    "WLAN": 215,
    "Remote Sensing SVM": 4,
    "Netflix": 19,
    "Patient": 60,
    "Blog Feedback": 60,
    "S/N Logistic": 740,
    "S/N SVM": 360,
    "S/N LRMF": 3,
    "S/N Linear": 200,
    "S/E Logistic": 430,
    "S/E SVM": 30,
    "S/E LRMF": 3,
    "S/E Linear": 300,
}

DEFAULT_EPOCHS = 10


def epochs_for(workload: Workload) -> int:
    """Number of passes all systems run for ``workload`` at paper scale."""
    return PAPER_EPOCHS.get(workload.name, DEFAULT_EPOCHS)
