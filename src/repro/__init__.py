"""repro — reproduction of "In-RDBMS Hardware Acceleration of Advanced Analytics".

The package implements DAnA (VLDB 2018) end to end as a functional +
cycle-approximate simulation:

* :mod:`repro.dsl` / :mod:`repro.dana` — the Python-embedded DSL for
  expressing update rules, merge functions and convergence criteria;
* :mod:`repro.translator` — UDF → hierarchical DataFlow Graph;
* :mod:`repro.compiler` — Strider compiler, static scheduler and hardware
  generator;
* :mod:`repro.isa` — the Strider and execution-engine instruction sets;
* :mod:`repro.hw` — simulation of the accelerator (Striders, access engine,
  analytic clusters/units, tree bus) on a VU9P-class FPGA;
* :mod:`repro.runtime` — the pipelined epoch runtime: streaming batch
  sources, synchronization policies and the shared epoch driver;
* :mod:`repro.rdbms` — a miniature PostgreSQL-style storage engine (pages,
  buffer pool, catalog, SQL front end with UDF support);
* :mod:`repro.algorithms` — Linear/Logistic Regression, SVM and LRMF;
* :mod:`repro.baselines` — MADlib-, Greenplum- and external-library-style
  functional baselines;
* :mod:`repro.perf` — calibrated analytical runtime models used to
  regenerate the paper's tables and figures;
* :mod:`repro.core` — the DAnA facade and an end-to-end workload runner;
* :mod:`repro.harness` — experiment registry used by ``benchmarks/``.
"""

from repro import dana
from repro.core import DAnA, WorkloadRunner

__version__ = "1.0.0"

__all__ = ["DAnA", "WorkloadRunner", "dana", "__version__"]
