"""DAnA core: system facade and end-to-end workload runner."""

from repro.core.dana import DAnA, RegisteredUDF
from repro.core.runner import SystemRun, WorkloadComparison, WorkloadRunner

__all__ = [
    "DAnA",
    "RegisteredUDF",
    "SystemRun",
    "WorkloadComparison",
    "WorkloadRunner",
]
