"""DAnA core: system facade and end-to-end workload runner."""

from repro.core.dana import DAnA, RefreshResult, RegisteredUDF
from repro.core.runner import SystemRun, WorkloadComparison, WorkloadRunner

__all__ = [
    "DAnA",
    "RefreshResult",
    "RegisteredUDF",
    "SystemRun",
    "WorkloadComparison",
    "WorkloadRunner",
]
