"""The DAnA system facade: UDF registration, compilation and query execution.

This is the top of the stack drawn in the paper's Figure 2.  A data
scientist expresses the learning algorithm with the Python-embedded DSL,
registers it as a UDF, and invokes it from SQL::

    from repro import dana
    from repro.core import DAnA
    from repro.rdbms import Database

    db = Database()
    system = DAnA(db)
    system.register_algorithm_udf("linearR", "linear", n_features=10)
    result = db.execute("SELECT * FROM dana.linearR('training_data_table');")

Behind the scenes the facade runs the full DAnA workflow: translate the UDF
into an hDFG, let the hardware generator pick the accelerator design for
the target FPGA and page layout, compile the Strider program and the
execution-engine schedule, store everything in the RDBMS catalog, and —
when the query runs — stream the table's buffer-pool pages through the
simulated accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.algorithms import Hyperparameters, get_algorithm
from repro.algorithms.base import AlgorithmSpec
from repro.cluster import ShardedDAnA, ShardedRunResult
from repro.compiler import ExecutionBinary, HardwareGenerator, Scheduler
from repro.exceptions import ConfigurationError
from repro.hw import DAnAAccelerator, DEFAULT_FPGA, FPGASpec
from repro.hw.accelerator import AcceleratorRunResult
from repro.rdbms import AcceleratorEntry, Database
from repro.rdbms.query import QueryResult
from repro.translator import translate


@dataclass
class RegisteredUDF:
    """A UDF registered with DAnA, compiled lazily per target table."""

    name: str
    spec: AlgorithmSpec
    epochs: int | None = None
    binaries: dict[str, ExecutionBinary] = field(default_factory=dict)
    accelerators: dict[str, DAnAAccelerator] = field(default_factory=dict)


class DAnA:
    """In-Database Acceleration of Advanced Analytics."""

    def __init__(
        self,
        database: Database,
        fpga: FPGASpec = DEFAULT_FPGA,
        use_striders: bool = True,
    ) -> None:
        self.database = database
        self.fpga = fpga
        self.use_striders = use_striders
        self._udfs: dict[str, RegisteredUDF] = {}

    # ------------------------------------------------------------------ #
    # UDF registration
    # ------------------------------------------------------------------ #
    def register_udf(
        self, udf_name: str, spec: AlgorithmSpec, epochs: int | None = None
    ) -> RegisteredUDF:
        """Register a hand-written DSL program as an accelerated UDF."""
        if udf_name in self._udfs:
            raise ConfigurationError(f"UDF {udf_name!r} is already registered")
        registered = RegisteredUDF(name=udf_name, spec=spec, epochs=epochs)
        self._udfs[udf_name] = registered

        def handler(db: Database, table_name: str) -> QueryResult:
            return self._execute_udf(registered, table_name)

        self.database.register_udf(udf_name, handler)
        return registered

    def register_algorithm_udf(
        self,
        udf_name: str,
        algorithm_key: str,
        n_features: int,
        hyper: Hyperparameters | None = None,
        model_topology: tuple[int, ...] = (),
        epochs: int | None = None,
    ) -> RegisteredUDF:
        """Register one of the built-in algorithms as an accelerated UDF."""
        algorithm = get_algorithm(algorithm_key)
        spec = algorithm.build_spec(n_features, hyper or Hyperparameters(), model_topology)
        return self.register_udf(udf_name, spec, epochs=epochs)

    def registered_udfs(self) -> list[str]:
        return sorted(self._udfs)

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def compile_udf(self, udf_name: str, table_name: str) -> ExecutionBinary:
        """Compile (or fetch the cached) accelerator for a UDF/table pair."""
        registered = self._registered(udf_name)
        if table_name in registered.binaries:
            return registered.binaries[table_name]
        spec = registered.spec
        table_entry = self.database.catalog.table(table_name)
        graph = translate(spec.algo)
        generator = HardwareGenerator(
            graph,
            table_entry.layout,
            spec.schema,
            self.fpga,
            merge_coefficient=spec.algo.merge_coefficient,
            n_tuples=max(1, table_entry.tuple_count),
        )
        design = generator.generate()
        schedule = Scheduler(graph, design.acs_per_thread).schedule()
        binary = ExecutionBinary.build(
            udf_name=udf_name,
            algorithm=spec.name,
            design=design,
            strider=generator.strider_compilation,
            thread_schedule=schedule,
            graph=graph,
            metadata={"table": table_name},
        )
        registered.binaries[table_name] = binary
        registered.accelerators[table_name] = DAnAAccelerator(
            binary=binary, schema=spec.schema, fpga=self.fpga
        )
        # Store the accelerator metadata in the RDBMS catalog (Figure 2).
        self.database.register_accelerator(
            AcceleratorEntry(
                udf_name=udf_name,
                algorithm=spec.name,
                design=design,
                strider_program=binary.strider.program,
                execution_schedule=binary.thread_schedule.program,
                metadata=binary.describe(),
            )
        )
        return binary

    def accelerator_for(self, udf_name: str, table_name: str) -> DAnAAccelerator:
        self.compile_udf(udf_name, table_name)
        return self._registered(udf_name).accelerators[table_name]

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self, sql: str) -> QueryResult:
        """Execute a SQL statement (UDF calls run on the accelerator)."""
        return self.database.execute(sql)

    def train(
        self,
        udf_name: str,
        table_name: str,
        epochs: int | None = None,
        segments: int | None = None,
        partition_strategy: str = "round_robin",
        aggregation: str | None = None,
        execution: str = "auto",
        shuffle: bool = False,
        seed: int = 0,
    ) -> AcceleratorRunResult | ShardedRunResult:
        """Train a registered UDF over a table without going through SQL.

        ``segments=None`` (the default) runs the classic single-accelerator
        path.  ``segments=N`` deploys one DAnA accelerator per segment
        (:mod:`repro.cluster`): heap pages are partitioned with
        ``partition_strategy``, per-segment models are combined every epoch
        with ``aggregation`` (auto-selected per algorithm when ``None``),
        and ``execution`` picks the lock-step vectorized or thread-pool
        strategy.  A fixed ``seed`` makes sharded runs — including
        ``shuffle=True`` epoch orders — bit-reproducible.
        """
        registered = self._registered(udf_name)
        if segments is None:
            return self._run_accelerator(
                registered, table_name, epochs, shuffle=shuffle, seed=seed
            )
        return self._run_sharded(
            registered,
            table_name,
            epochs,
            segments=segments,
            partition_strategy=partition_strategy,
            aggregation=aggregation,
            execution=execution,
            shuffle=shuffle,
            seed=seed,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _registered(self, udf_name: str) -> RegisteredUDF:
        try:
            return self._udfs[udf_name]
        except KeyError:
            raise ConfigurationError(f"UDF {udf_name!r} is not registered") from None

    def _execute_udf(self, registered: RegisteredUDF, table_name: str) -> QueryResult:
        run = self._run_accelerator(registered, table_name, registered.epochs)
        rows = [(name, np.asarray(value).tolist()) for name, value in run.models.items()]
        return QueryResult(
            rows=rows,
            columns=("model", "coefficients"),
            payload=run,
            stats={
                "system": "DAnA+PostgreSQL",
                "tuples_extracted": run.tuples_extracted,
                "engine_cycles": run.engine_stats.total_cycles,
                "strider_cycles": run.access_stats.strider_cycles_critical,
            },
        )

    def _run_accelerator(
        self,
        registered: RegisteredUDF,
        table_name: str,
        epochs: int | None,
        shuffle: bool = False,
        seed: int = 0,
    ) -> AcceleratorRunResult:
        self.compile_udf(registered.name, table_name)
        accelerator = registered.accelerators[table_name]
        spec = registered.spec
        table = self.database.table(table_name)
        run_epochs = epochs or registered.epochs or spec.algo.convergence.epoch_bound
        rng = np.random.default_rng(seed) if shuffle else None
        page_images = (image for _no, image in table.scan_pages(self.database.buffer_pool))
        if self.use_striders:
            return accelerator.train_from_pages(
                page_images,
                initial_models=spec.initial_models,
                bind_tuple=spec.bind_tuple,
                epochs=run_epochs,
                bind_batch=spec.bind_batch,
                shuffle=shuffle,
                rng=rng,
            )
        rows = table.read_all(self.database.buffer_pool)
        return accelerator.train_from_rows(
            rows,
            initial_models=spec.initial_models,
            bind_tuple=spec.bind_tuple,
            epochs=run_epochs,
            bind_batch=spec.bind_batch,
            shuffle=shuffle,
            rng=rng,
        )

    def _run_sharded(
        self,
        registered: RegisteredUDF,
        table_name: str,
        epochs: int | None,
        segments: int,
        partition_strategy: str,
        aggregation: str | None,
        execution: str,
        shuffle: bool,
        seed: int,
    ) -> ShardedRunResult:
        """Deploy one accelerator per segment and train with epoch merges."""
        binary = self.compile_udf(registered.name, table_name)
        spec = registered.spec
        run_epochs = epochs or registered.epochs or spec.algo.convergence.epoch_bound
        sharded = ShardedDAnA(
            database=self.database,
            binary=binary,
            spec=spec,
            segments=segments,
            fpga=self.fpga,
            partition_strategy=partition_strategy,
            aggregation=aggregation,
            execution=execution,
            seed=seed,
            use_striders=self.use_striders,
        )
        return sharded.train(table_name, epochs=run_epochs, shuffle=shuffle)
