"""The DAnA system facade: UDF registration, compilation and query execution.

This is the top of the stack drawn in the paper's Figure 2.  A data
scientist expresses the learning algorithm with the Python-embedded DSL,
registers it as a UDF, and invokes it from SQL::

    from repro import dana
    from repro.core import DAnA
    from repro.rdbms import Database

    db = Database()
    system = DAnA(db)
    system.register_algorithm_udf("linearR", "linear", n_features=10)
    result = db.execute("SELECT * FROM dana.linearR('training_data_table');")

Behind the scenes the facade runs the full DAnA workflow: translate the UDF
into an hDFG, let the hardware generator pick the accelerator design for
the target FPGA and page layout, compile the Strider program and the
execution-engine schedule, store everything in the RDBMS catalog, and —
when the query runs — stream the table's buffer-pool pages through the
simulated accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.algorithms import Hyperparameters, get_algorithm
from repro.algorithms.base import AlgorithmSpec
from repro.cluster import (
    AGGREGATION_STRATEGIES,
    EXECUTION_STRATEGIES,
    PARTITION_STRATEGIES,
    Partitioner,
    ShardedDAnA,
    ShardedRunResult,
)
from repro.compiler import ExecutionBinary, HardwareGenerator, Scheduler
from repro.exceptions import ConfigurationError, QueryError
from repro.hw import DAnAAccelerator, DEFAULT_FPGA, FPGASpec
from repro.hw.accelerator import AcceleratorRunResult
from repro.obs.recorder import RunRecorder
from repro.obs.telemetry import telemetry
from repro.perf import (
    ScoreRunCost,
    page_tuple_counts,
    predict_score_cost,
    predict_train_cost,
    worker_limit,
)
from repro.rdbms import AcceleratorEntry, Database, ModelEntry
from repro.reliability import RetryPolicy
from repro.rdbms.explain import PlanOperator, filter_limit_ops
from repro.rdbms.query import (
    CreateModel,
    PredictScan,
    QueryResult,
    ScoreCall,
    UDFCall,
    matches_row,
)
from repro.runtime import SYNC_POLICIES
from repro.serving import (
    DEFAULT_SCORE_BATCH,
    InferencePlan,
    ModelRegistry,
    PredictionServer,
    SCORING_EXECUTION_STRATEGIES,
    SERVING_PATHS,
    ScanScorer,
    ScoreResult,
)
from repro.translator import translate


@dataclass
class RegisteredUDF:
    """A UDF registered with DAnA, compiled lazily per target table."""

    name: str
    spec: AlgorithmSpec
    epochs: int | None = None
    binaries: dict[str, ExecutionBinary] = field(default_factory=dict)
    accelerators: dict[str, DAnAAccelerator] = field(default_factory=dict)
    #: forward-only serving plans, compiled lazily on first predict/score,
    #: keyed by table name ("" = the table-less point-serving design).
    inference_plans: dict[str, InferencePlan] = field(default_factory=dict)


@dataclass
class RefreshResult:
    """Outcome of one :meth:`DAnA.refresh_model` call."""

    #: registry entry now serving — the freshly-saved version, or the
    #: unchanged input entry when the refresh was a no-op.
    entry: ModelEntry
    #: version the refresh started from.
    previous_version: int
    #: True when new pages were trained and a new version was saved.
    refreshed: bool
    #: heap table the refresh scanned.
    table_name: str
    #: the model's LSN watermark before the refresh (scan lower bound).
    watermark: int
    #: WAL LSN the refresh scan was pinned to; becomes the new version's
    #: watermark when ``refreshed``.
    snapshot_lsn: int
    #: heap pages trained (pages stamped past the watermark as of
    #: ``snapshot_lsn``).
    pages_trained: int
    #: tuples the warm-start run consumed — page-granular, so a restamped
    #: tail page may contribute a few pre-watermark rows.
    tuples_trained: int
    #: the warm-start training run (``None`` on a no-op).
    run: AcceleratorRunResult | None = None


class DAnA:
    """In-Database Acceleration of Advanced Analytics."""

    def __init__(
        self,
        database: Database,
        fpga: FPGASpec = DEFAULT_FPGA,
        use_striders: bool = True,
        record_runs: bool = False,
    ) -> None:
        """Bind a DAnA system to one database instance.

        Args:
            database: the host RDBMS; the system attaches itself as the
                database's serving runtime, so SQL prediction and
                ``CREATE MODEL`` statements route here.
            fpga: the target FPGA specification for generated accelerators.
            use_striders: when False, tuples are extracted by the CPU-side
                page decode instead of the simulated Strider walk.
            record_runs: when True, every :meth:`train` / :meth:`score_table`
                invocation is persisted into the ``repro_runs`` /
                ``repro_run_metrics`` heap tables by a
                :class:`~repro.obs.recorder.RunRecorder` (queryable via SQL
                and the ``repro`` CLI).  Off by default: recording writes
                to the database.
        """
        self.database = database
        self.fpga = fpga
        self.use_striders = use_striders
        self.registry = ModelRegistry(database)
        self.run_recorder: RunRecorder | None = (
            RunRecorder(database) if record_runs else None
        )
        self._udfs: dict[str, RegisteredUDF] = {}
        database.attach_serving_runtime(self)

    def enable_run_recording(self) -> RunRecorder:
        """Turn on run recording for this system; returns the recorder."""
        if self.run_recorder is None:
            self.run_recorder = RunRecorder(self.database)
        return self.run_recorder

    # ------------------------------------------------------------------ #
    # UDF registration
    # ------------------------------------------------------------------ #
    def register_udf(
        self, udf_name: str, spec: AlgorithmSpec, epochs: int | None = None
    ) -> RegisteredUDF:
        """Register a hand-written DSL program as an accelerated UDF."""
        if udf_name in self._udfs:
            raise ConfigurationError(f"UDF {udf_name!r} is already registered")
        registered = RegisteredUDF(name=udf_name, spec=spec, epochs=epochs)
        self._udfs[udf_name] = registered

        def handler(db: Database, table_name: str) -> QueryResult:
            return self._execute_udf(registered, table_name)

        self.database.register_udf(udf_name, handler)
        return registered

    def register_algorithm_udf(
        self,
        udf_name: str,
        algorithm_key: str,
        n_features: int,
        hyper: Hyperparameters | None = None,
        model_topology: tuple[int, ...] = (),
        epochs: int | None = None,
    ) -> RegisteredUDF:
        """Register one of the built-in algorithms as an accelerated UDF."""
        algorithm = get_algorithm(algorithm_key)
        spec = algorithm.build_spec(n_features, hyper or Hyperparameters(), model_topology)
        return self.register_udf(udf_name, spec, epochs=epochs)

    def registered_udfs(self) -> list[str]:
        """Names of all registered UDFs, sorted."""
        return sorted(self._udfs)

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def compile_udf(self, udf_name: str, table_name: str) -> ExecutionBinary:
        """Compile (or fetch the cached) accelerator for a UDF/table pair."""
        registered = self._registered(udf_name)
        if table_name in registered.binaries:
            return registered.binaries[table_name]
        spec = registered.spec
        table_entry = self.database.catalog.table(table_name)
        graph = translate(spec.algo)
        generator = HardwareGenerator(
            graph,
            table_entry.layout,
            spec.schema,
            self.fpga,
            merge_coefficient=spec.algo.merge_coefficient,
            n_tuples=max(1, table_entry.tuple_count),
        )
        design = generator.generate()
        schedule = Scheduler(graph, design.acs_per_thread).schedule()
        binary = ExecutionBinary.build(
            udf_name=udf_name,
            algorithm=spec.name,
            design=design,
            strider=generator.strider_compilation,
            thread_schedule=schedule,
            graph=graph,
            # n_tuples records the count the design was sized for: worker
            # processes rebuild the design from it, and it must not drift
            # with the live catalog count once tables are mutable.
            metadata={
                "table": table_name,
                "n_tuples": max(1, table_entry.tuple_count),
            },
        )
        registered.binaries[table_name] = binary
        registered.accelerators[table_name] = DAnAAccelerator(
            binary=binary, schema=spec.schema, fpga=self.fpga
        )
        # Store the accelerator metadata in the RDBMS catalog (Figure 2).
        self.database.register_accelerator(
            AcceleratorEntry(
                udf_name=udf_name,
                algorithm=spec.name,
                design=design,
                strider_program=binary.strider.program,
                execution_schedule=binary.thread_schedule.program,
                metadata=binary.describe(),
            )
        )
        return binary

    def accelerator_for(self, udf_name: str, table_name: str) -> DAnAAccelerator:
        """The compiled accelerator instance for a UDF/table pair."""
        self.compile_udf(udf_name, table_name)
        return self._registered(udf_name).accelerators[table_name]

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self, sql: str) -> QueryResult:
        """Execute a SQL statement (UDF calls run on the accelerator)."""
        return self.database.execute(sql)

    def train(
        self,
        udf_name: str,
        table_name: str,
        epochs: int | None = None,
        segments: int | None = None,
        partition_strategy: str = "round_robin",
        aggregation: str | None = None,
        execution: str = "auto",
        shuffle: bool = False,
        seed: int = 0,
        sync: str = "bulk_synchronous",
        staleness: int = 1,
        stream: bool = True,
        retry: RetryPolicy | None = None,
    ) -> AcceleratorRunResult | ShardedRunResult:
        """Train a registered UDF over a table without going through SQL.

        ``segments=None`` (the default) runs the classic single-accelerator
        path.  ``segments=N`` deploys one DAnA accelerator per segment
        (:mod:`repro.cluster`): heap pages are partitioned with
        ``partition_strategy``, per-segment models are combined with
        ``aggregation`` (auto-selected per algorithm when ``None``),
        and ``execution`` picks the lock-step vectorized or thread-pool
        strategy.  A fixed ``seed`` makes sharded runs — including
        ``shuffle=True`` epoch orders — bit-reproducible.

        The epoch runtime (:mod:`repro.runtime`) is pipelined: with
        ``stream=True`` (default) extraction feeds training through bounded
        double buffers, and ``sync`` picks the cross-segment merge policy —
        ``"bulk_synchronous"`` (barriered every epoch; bit-identical to the
        unpipelined path), ``"stale_synchronous"`` (merge every
        ``staleness`` epochs; fast segments run ahead between merges) or
        ``"async_merge"`` (per-epoch merges overlapped with the next
        epoch's preparation; models bit-identical to bulk-synchronous).

        A ``retry`` policy (:class:`~repro.reliability.RetryPolicy`) makes
        the run fault-tolerant: transient faults in the Strider page walk,
        the streaming producer or a segment's training window are retried
        from a checkpoint with bounded backoff, and the recovered run's
        models and counters are **bit-identical** to a fault-free run.
        Training rejects ``degradation="redistribute"`` (reassigning a
        failed segment's pages would change the merge schedule).
        """
        _validate_train_config(
            epochs=epochs,
            segments=segments,
            partition_strategy=partition_strategy,
            aggregation=aggregation,
            execution=execution,
            sync=sync,
            staleness=staleness,
        )
        _validate_retry(retry, allow_redistribute=False)
        registered = self._registered(udf_name)
        recorder = self.run_recorder
        watch = recorder.begin() if recorder is not None else None
        if segments is None:
            result = self._run_accelerator(
                registered, table_name, epochs, shuffle=shuffle, seed=seed,
                stream=stream, retry=retry,
            )
        else:
            result = self._run_sharded(
                registered,
                table_name,
                epochs,
                segments=segments,
                partition_strategy=partition_strategy,
                aggregation=aggregation,
                execution=execution,
                shuffle=shuffle,
                seed=seed,
                sync=sync,
                staleness=staleness,
                stream=stream,
                retry=retry,
            )
        if recorder is not None:
            recorder.record_train(
                udf=udf_name,
                table=table_name,
                config={
                    "epochs": epochs,
                    "segments": segments,
                    "partition_strategy": partition_strategy,
                    "aggregation": aggregation,
                    "execution": execution,
                    "shuffle": shuffle,
                    "seed": seed,
                    "sync": sync,
                    "staleness": staleness,
                    "stream": stream,
                    "retry": retry is not None,
                },
                result=result,
                watch=watch,
                algorithm=registered.spec.name,
            )
        return result

    # ------------------------------------------------------------------ #
    # prediction serving
    # ------------------------------------------------------------------ #
    def save_model(
        self,
        model_name: str,
        udf_name: str,
        models: Mapping[str, np.ndarray],
        metadata: dict | None = None,
        watermark: int | None = None,
    ) -> ModelEntry:
        """Persist a trained model into heap tables through the catalog.

        ``models`` is the model mapping of a finished training run (e.g.
        ``run.models``); its parameter names and shapes must match the
        registered UDF's spec.  Each save creates a new version; the
        round trip through :meth:`load_model` is bit-identical.

        ``watermark`` records the WAL LSN the training scan was pinned to
        (``run.snapshot_lsn``) as ``metadata["lsn_watermark"]`` — the point
        :meth:`refresh_model` later resumes from.  A model saved without a
        watermark refreshes from LSN 0 (every logged write is "new").
        """
        spec = self._registered(udf_name).spec
        self._check_model_shapes(spec, models, context=f"save_model({model_name!r})")
        meta = {"udf": udf_name, "model_topology": list(spec.model_topology)}
        if watermark is not None:
            meta["lsn_watermark"] = int(watermark)
        meta.update(metadata or {})
        return self.registry.save(
            model_name, models, algorithm=spec.name, metadata=meta
        )

    def load_model(
        self, model_name: str, version: int | None = None
    ) -> dict[str, np.ndarray]:
        """Load a saved model (latest version by default) from its heap table."""
        models, _entry = self.registry.load(model_name, version)
        return models

    def refresh_model(
        self,
        model_name: str,
        version: int | None = None,
        table_name: str | None = None,
        epochs: int | None = None,
        stream: bool = True,
        retry: RetryPolicy | None = None,
        server: PredictionServer | None = None,
    ) -> RefreshResult:
        """Incrementally refresh a saved model from rows logged since it trained.

        Warm-starts the UDF's accelerator from the saved parameters and
        trains **only** the heap pages stamped past the model's
        ``lsn_watermark`` metadata, pinned to the WAL LSN captured when
        the refresh starts; the result is saved as a new version whose
        watermark is that LSN.  Refresh cost therefore scales with the
        rows written since the model last trained, not with the table
        size.  The scan set is page-granular: the tail page a
        watermark-era insert partially filled re-appears once later
        inserts restamp it, so a refresh may re-see a few pre-watermark
        rows (see :meth:`~repro.rdbms.HeapFile.pages_newer_than`).

        With no pages past the watermark the call is a **no-op**: nothing
        trains, no version is saved, and the returned
        :class:`RefreshResult` carries the unchanged entry.

        ``table_name`` defaults to the table recorded in the model's
        ``trained_on`` metadata (``CREATE MODEL`` and refresh itself
        record it); pass it explicitly for models saved through
        :meth:`save_model` without one.  ``server`` hot-swaps the new
        version into a running :class:`~repro.serving.PredictionServer`
        via ``reload()`` as soon as it is saved — in-flight batches drain
        on the old version, later ones score with the refreshed model.
        """
        models, entry = self.registry.load(model_name, version)
        udf_name = entry.metadata.get("udf", "")
        if udf_name not in self._udfs:
            raise ConfigurationError(
                f"saved model {model_name!r} v{entry.version} was trained by "
                f"UDF {udf_name!r}, which is not registered with this DAnA "
                f"system; registered UDFs: {self.registered_udfs()}"
            )
        registered = self._udfs[udf_name]
        spec = registered.spec
        resolved_table = table_name or entry.metadata.get("trained_on", "")
        if not resolved_table:
            raise ConfigurationError(
                f"saved model {model_name!r} v{entry.version} records no "
                "trained_on table; pass table_name= explicitly"
            )
        if not self.database.catalog.has_table(resolved_table):
            raise ConfigurationError(f"table {resolved_table!r} does not exist")
        watermark = int(entry.metadata.get("lsn_watermark", 0))
        heapfile = self.database.table(resolved_table)
        as_of = self.database.wal.current_lsn
        new_pages = heapfile.pages_newer_than(watermark, as_of)
        obs = telemetry()
        span = (
            obs.span(
                "core.refresh_model",
                model=model_name,
                table=resolved_table,
                watermark=watermark,
                pages=len(new_pages),
            )
            if obs is not None
            else None
        )
        if not new_pages:
            if span is not None:
                obs.finish(span, refreshed=False)
            return RefreshResult(
                entry=entry,
                previous_version=entry.version,
                refreshed=False,
                table_name=resolved_table,
                watermark=watermark,
                snapshot_lsn=as_of,
                pages_trained=0,
                tuples_trained=0,
            )
        recorder = self.run_recorder
        watch = recorder.begin() if recorder is not None else None
        binary = self.compile_udf(udf_name, resolved_table)
        # Fresh engines on the cached binary: engine counters accumulate
        # per instance, and a refresh's cost must be its own (the bench
        # gate checks it scales with the delta, not the table).
        accelerator = DAnAAccelerator(
            binary=binary, schema=spec.schema, fpga=self.fpga
        )
        run_epochs = epochs or registered.epochs or spec.algo.convergence.epoch_bound
        pool = self.database.buffer_pool
        try:
            if self.use_striders:
                page_images = (
                    image
                    for _no, image in heapfile.scan_pages(
                        pool, new_pages, as_of_lsn=as_of
                    )
                )
                run = accelerator.train_from_pages(
                    page_images,
                    initial_models=models,
                    bind_tuple=spec.bind_tuple,
                    epochs=run_epochs,
                    bind_batch=spec.bind_batch,
                    stream=stream,
                    retry=retry,
                )
            else:
                run = accelerator.train_from_rows(
                    heapfile.read_pages(pool, new_pages, as_of_lsn=as_of),
                    initial_models=models,
                    bind_tuple=spec.bind_tuple,
                    epochs=run_epochs,
                    bind_batch=spec.bind_batch,
                )
            run.snapshot_lsn = as_of
            new_entry = self.save_model(
                model_name,
                udf_name,
                run.models,
                metadata={
                    "trained_on": resolved_table,
                    "refreshed_from": entry.version,
                    "refresh_pages": len(new_pages),
                },
                watermark=as_of,
            )
        except BaseException:
            if span is not None:
                obs.finish(span, error=True)
            raise
        if span is not None:
            obs.finish(span, refreshed=True, version=new_entry.version)
        if server is not None:
            server.reload(version=new_entry.version)
        if recorder is not None:
            recorder.record_refresh(
                model_name=model_name,
                table=resolved_table,
                config={
                    "from_version": entry.version,
                    "watermark": watermark,
                    "snapshot_lsn": as_of,
                    "pages": len(new_pages),
                    "epochs": epochs,
                    "stream": stream,
                    "retry": retry is not None,
                    "use_striders": self.use_striders,
                },
                result=run,
                watch=watch,
                algorithm=spec.name,
                model_version=new_entry.version,
            )
        return RefreshResult(
            entry=new_entry,
            previous_version=entry.version,
            refreshed=True,
            table_name=resolved_table,
            watermark=watermark,
            snapshot_lsn=as_of,
            pages_trained=len(new_pages),
            tuples_trained=run.tuples_extracted,
            run=run,
        )

    def predict(
        self,
        udf_name: str,
        rows: np.ndarray,
        models: Mapping[str, np.ndarray] | None = None,
        model_name: str | None = None,
        version: int | None = None,
        path: str = "batched",
        batch_size: int | None = None,
    ) -> np.ndarray:
        """Score in-memory feature rows with a registered UDF's forward pass.

        Exactly one of ``models`` (an in-memory model mapping) or
        ``model_name`` (a saved model in the registry) must be supplied.
        ``rows`` is a ``(B, columns)`` block — a trailing label column is
        ignored — or a single 1-D feature row, which returns a scalar.
        """
        _validate_serving_config(path=path, batch_size=batch_size)
        registered = self._registered(udf_name)
        resolved, _entry = self._resolve_models(
            registered.spec, models, model_name, version
        )
        plan = self._inference_plan(registered)
        rows = np.asarray(rows, dtype=np.float64)
        single = rows.ndim == 1
        if single:
            rows = rows[None, :]
        predictions = plan.new_engine().score(
            rows, resolved, path=path, batch_size=batch_size
        )
        return predictions[0] if single else predictions

    def score_table(
        self,
        udf_name: str,
        table_name: str,
        models: Mapping[str, np.ndarray] | None = None,
        model_name: str | None = None,
        version: int | None = None,
        segments: int | None = None,
        path: str = "batched",
        batch_size: int | None = None,
        partition_strategy: str = "round_robin",
        seed: int = 0,
        stream: bool = True,
        retry: RetryPolicy | None = None,
        execution: str = "threads",
    ) -> ScoreResult:
        """Score every tuple of a heap table via the bulk Strider page walk.

        ``segments=N`` partitions the table's heap pages with the training
        cluster's partitioner and scans-and-scores one accelerator per
        segment concurrently; predictions come back in storage order
        regardless.  ``path="per_tuple"`` runs the per-tuple evaluator
        oracle instead of the batched inference tape (same predictions,
        same schedule-derived counters).  ``stream=True`` (default)
        overlaps each segment's Strider page walk with its forward tape
        through a bounded :class:`~repro.runtime.BatchSource` double
        buffer; ``stream=False`` materialises the extraction first — the
        overlap oracle, bit-identical predictions and counters.

        A ``retry`` policy retries each segment's scan-and-score after
        transient faults (fresh engine per attempt, so the successful
        attempt is bit-identical to a fault-free one);
        ``degradation="redistribute"`` additionally reassigns a
        permanently-failed segment's pages across the surviving segments —
        predictions stay bit-identical because reassembly is by page
        number, not by segment.

        ``execution="processes"`` scores each segment in a spawned worker
        process over zero-copy shared-memory page views instead of a
        thread — bit-identical predictions and counters, real-core overlap
        (see :mod:`repro.cluster.process_pool`).
        """
        _validate_serving_config(
            path=path,
            batch_size=batch_size,
            segments=segments,
            partition_strategy=partition_strategy,
            stream=stream,
            execution=execution,
        )
        _validate_retry(retry)
        registered = self._registered(udf_name)
        binary = self.compile_udf(udf_name, table_name)
        resolved, entry = self._resolve_models(
            registered.spec, models, model_name, version
        )
        plan = self._inference_plan(registered, table_name)
        scorer = ScanScorer(
            database=self.database,
            binary=binary,
            spec=registered.spec,
            plan=plan,
            fpga=self.fpga,
            use_striders=self.use_striders,
        )
        recorder = self.run_recorder
        watch = recorder.begin() if recorder is not None else None
        result = scorer.score_table(
            table_name,
            resolved,
            segments=segments or 1,
            path=path,
            batch_size=batch_size,
            partition_strategy=partition_strategy,
            seed=seed,
            stream=stream,
            retry=retry,
            execution=execution,
        )
        if recorder is not None:
            recorder.record_score(
                table=table_name,
                config={
                    "udf": udf_name,
                    "segments": segments,
                    "path": path,
                    "batch_size": batch_size,
                    "partition_strategy": partition_strategy,
                    "seed": seed,
                    "stream": stream,
                    "retry": retry is not None,
                    "execution": execution,
                },
                result=result,
                watch=watch,
                algorithm=registered.spec.name,
                model_name=entry.name if entry is not None else "",
                model_version=entry.version if entry is not None else None,
            )
        return result

    def serve(
        self,
        udf_name: str,
        models: Mapping[str, np.ndarray] | None = None,
        model_name: str | None = None,
        version: int | None = None,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        max_queue_depth: int | None = None,
        deadline_ms: float | None = None,
        max_concurrent_per_model: int | None = None,
    ) -> PredictionServer:
        """A micro-batching prediction server bound to one model.

        The returned server is not started; use it as a context manager
        (or call ``start()``/``stop()``) and submit point requests with
        ``submit``/``predict``.  When built from a saved model
        (``model_name=``), the server supports registry-versioned
        **hot-swap**: ``server.reload(version=...)`` re-resolves the model
        from the registry and swaps it in between micro-batches — in-flight
        batches drain on the old model, later batches score with the new
        version, bit-identically to a cold restart on that version.

        ``max_queue_depth`` switches the server into admission-control
        mode: a submit against a full queue is **shed** with
        :class:`~repro.exceptions.ServerOverloadedError` instead of
        blocking.  ``deadline_ms`` fails queued requests that would be
        scored too late with
        :class:`~repro.exceptions.DeadlineExceededError`, and
        ``max_concurrent_per_model`` bounds in-flight requests per served
        model version (see :class:`~repro.serving.PredictionServer`).
        """
        registered = self._registered(udf_name)
        resolved, entry = self._resolve_models(
            registered.spec, models, model_name, version
        )
        plan = self._inference_plan(registered)
        loader = None
        if model_name is not None:
            def loader(requested_version: int | None):
                return self._resolve_models(
                    registered.spec, None, model_name, requested_version
                )
        return PredictionServer(
            plan.new_engine(),
            resolved,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            model_loader=loader,
            model_version=entry.version if entry is not None else None,
            max_queue_depth=max_queue_depth,
            deadline_ms=deadline_ms,
            max_concurrent_per_model=max_concurrent_per_model,
        )

    # ------------------------------------------------------------------ #
    # SQL serving surface (repro.rdbms.query.ServingRuntime)
    # ------------------------------------------------------------------ #
    def sql_predict(self, plan: PredictScan) -> QueryResult:
        """Execute ``SELECT dana.predict('<model>', ...) FROM <table>``.

        The whole table is scan-and-scored through :meth:`score_table`
        (bulk Strider page walk + batched inference tape, predictions
        bit-identical to the Python API), then the WHERE predicates and
        LIMIT select which predictions are returned, in storage order.

        Args:
            plan: the parsed :class:`~repro.rdbms.query.PredictScan` node.

        Returns:
            One row per qualifying tuple; the single column is named by the
            statement's ``AS`` alias (default ``prediction``).  ``payload``
            carries the underlying :class:`~repro.serving.ScoreResult`.

        Raises:
            QueryError: when the model, its training UDF or the table is
                missing (semantic errors of the statement).
        """
        entry = self._sql_model_entry(plan.model_name, plan.version)
        udf_name = self._sql_udf_for_model(entry)
        if not self.database.catalog.has_table(plan.table_name):
            raise QueryError(f"table {plan.table_name!r} does not exist")
        result = self.score_table(
            udf_name,
            plan.table_name,
            model_name=entry.name,
            version=entry.version,
        )
        predictions = result.predictions
        if plan.where:
            # Evaluate WHERE over the same snapshot the scoring run scanned,
            # so the mask stays aligned with the predictions even when
            # inserts landed while the statement was scoring.
            table = self.database.table(plan.table_name)
            mask = np.fromiter(
                (
                    matches_row(table.schema, row, plan.where)
                    for row in table.scan_tuples(
                        self.database.buffer_pool, as_of_lsn=result.snapshot_lsn
                    )
                ),
                dtype=bool,
                count=len(predictions),
            )
            predictions = predictions[mask]
        if plan.limit is not None:
            predictions = predictions[: plan.limit]
        return QueryResult(
            rows=[(_sql_value(p),) for p in predictions],
            columns=(plan.alias or "prediction",),
            payload=result,
            stats=self._sql_score_stats(entry, result),
        )

    def sql_score(self, plan: ScoreCall) -> QueryResult:
        """Execute ``SELECT * FROM dana.score('<model>', '<table>', ...)``.

        Args:
            plan: the parsed :class:`~repro.rdbms.query.ScoreCall` node;
                its ``segments`` / ``batch_size`` / ``stream`` kwargs map
                straight onto :meth:`score_table`.

        Returns:
            One ``prediction`` row per scored tuple (storage order),
            truncated by LIMIT; ``payload`` carries the
            :class:`~repro.serving.ScoreResult`.

        Raises:
            QueryError: when the model, its training UDF or the table is
                missing.
        """
        entry = self._sql_model_entry(plan.model_name, plan.version)
        udf_name = self._sql_udf_for_model(entry)
        if not self.database.catalog.has_table(plan.table_name):
            raise QueryError(f"table {plan.table_name!r} does not exist")
        try:
            result = self.score_table(
                udf_name,
                plan.table_name,
                model_name=entry.name,
                version=entry.version,
                segments=plan.segments,
                batch_size=plan.batch_size,
                stream=True if plan.stream is None else plan.stream,
                execution=plan.execution or "threads",
            )
        except ConfigurationError as error:
            raise QueryError(f"dana.score arguments are invalid: {error}") from None
        predictions = result.predictions
        if plan.limit is not None:
            predictions = predictions[: plan.limit]
        return QueryResult(
            rows=[(_sql_value(p),) for p in predictions],
            columns=("prediction",),
            payload=result,
            stats=self._sql_score_stats(entry, result),
        )

    def sql_create_model(self, plan: CreateModel) -> QueryResult:
        """Execute ``CREATE MODEL <name> AS TRAIN <udf> ON <table>``.

        Runs :meth:`train` with the statement's ``WITH (...)`` options and
        persists the result through :meth:`save_model` (a new version of
        ``plan.model_name``).

        Args:
            plan: the parsed :class:`~repro.rdbms.query.CreateModel` node.

        Returns:
            One summary row ``(model, version, algorithm, epochs_run)``;
            ``payload`` carries the new
            :class:`~repro.rdbms.catalog.ModelEntry`.

        Raises:
            QueryError: for unknown UDFs/tables, unknown WITH options, or
                option values :meth:`train` rejects.
        """
        if plan.udf_name not in self._udfs:
            raise QueryError(
                f"UDF {plan.udf_name!r} is not registered; registered UDFs: "
                f"{self.registered_udfs()}"
            )
        if not self.database.catalog.has_table(plan.table_name):
            raise QueryError(f"table {plan.table_name!r} does not exist")
        options = self._sql_train_options(plan.options)
        try:
            run = self.train(plan.udf_name, plan.table_name, **options)
        except ConfigurationError as error:
            raise QueryError(f"CREATE MODEL options are invalid: {error}") from None
        epochs_run = getattr(run, "epochs_run", None)
        if epochs_run is None:
            epochs_run = run.training.epochs_run
        entry = self.save_model(
            plan.model_name,
            plan.udf_name,
            run.models,
            metadata={"trained_on": plan.table_name, "sql_options": dict(options)},
            watermark=getattr(run, "snapshot_lsn", 0),
        )
        return QueryResult(
            rows=[(entry.name, entry.version, entry.algorithm, epochs_run)],
            columns=("model", "version", "algorithm", "epochs_run"),
            payload=entry,
            stats={"table": plan.table_name, "udf": plan.udf_name},
        )

    def sql_explain(self, plan: Any) -> PlanOperator:
        """Build the ``EXPLAIN`` operator tree of one serving/training statement.

        Called by :class:`~repro.rdbms.explain.PlanExplainer` for the plan
        nodes this runtime executes (``dana.score``/``dana.predict`` scans,
        ``CREATE MODEL``, accelerated UDF calls).  The tree carries the
        *resolved* knobs the statement would run with (segments, execution
        mode, sync policy, the ``min(segments, cpu count)`` worker clamp)
        and predicted costs from :mod:`repro.perf`'s schedule-derived
        models — without executing anything: compilation is cached, and
        building a tree records no run and trains no model.

        Raises:
            QueryError: for the same semantic errors executing the
                statement would raise (unknown models/UDFs/tables, invalid
                options), so ``EXPLAIN`` is an accurate dry run.
        """
        if isinstance(plan, (ScoreCall, PredictScan)):
            return self._explain_score(plan)
        if isinstance(plan, CreateModel):
            return self._explain_create_model(plan)
        if isinstance(plan, UDFCall):
            return self._explain_udf(plan)
        raise QueryError(f"EXPLAIN does not support plan node {plan!r}")

    def _explain_partitions(
        self,
        table_name: str,
        segments: int,
        partition_strategy: str = "round_robin",
        seed: int = 0,
    ) -> tuple[list, list[list[int]]]:
        """Per-segment page lists and tuple counts from catalog statistics.

        Uses the same :class:`~repro.cluster.Partitioner` the execution
        paths use, so the predicted per-segment page sets are exactly the
        executed ones — but prices them from the catalog's tuple count
        instead of scanning heap pages.
        """
        if not self.database.catalog.has_table(table_name):
            raise QueryError(f"table {table_name!r} does not exist")
        entry = self.database.catalog.table(table_name)
        heapfile = self.database.table(table_name)
        parts = Partitioner(partition_strategy, seed=seed).partition_table(
            self.database, table_name, segments
        )
        counts = [
            page_tuple_counts(
                part.page_nos, entry.tuple_count, heapfile.tuples_per_page()
            )
            for part in parts
        ]
        return parts, counts

    def _measure_score(self, result: QueryResult) -> dict:
        """Actual-side counters of an executed scoring statement."""
        score: ScoreResult = result.payload
        cost = ScoreRunCost.from_result(score)
        return {
            "rows": len(result.rows),
            "tuples": score.tuples_scored,
            "wall_cycles": cost.wall_cycles,
            "seconds": cost.seconds(self.fpga),
            "forward_cycles": score.inference_stats.forward_cycles,
            "retries": score.retry.retries,
            "workers": score.worker_limit,
        }

    def _explain_score(self, plan: ScoreCall | PredictScan) -> PlanOperator:
        """Operator tree of a ``dana.score``/``dana.predict`` statement."""
        if isinstance(plan, ScoreCall):
            segments = plan.segments or 1
            batch_size = plan.batch_size
            stream = True if plan.stream is None else plan.stream
            execution = plan.execution or "threads"
            where: tuple = ()
        else:
            segments, batch_size, stream, execution = 1, None, True, "threads"
            where = plan.where
        entry = self._sql_model_entry(plan.model_name, plan.version)
        udf_name = self._sql_udf_for_model(entry)
        try:
            _validate_serving_config(
                path="batched",
                batch_size=batch_size,
                segments=segments,
                stream=stream,
                execution=execution,
            )
        except ConfigurationError as error:
            raise QueryError(f"dana.score arguments are invalid: {error}") from None
        parts, counts = self._explain_partitions(plan.table_name, segments)
        registered = self._registered(udf_name)
        self.compile_udf(udf_name, plan.table_name)
        accelerator = registered.accelerators[plan.table_name]
        inference = self._inference_plan(registered, plan.table_name)
        cost = predict_score_cost(
            accelerator.access_engine,
            inference,
            counts,
            batch_size=batch_size,
            stream=stream,
        )
        total_pages = sum(len(part) for part in parts)
        root = PlanOperator(
            name="ScanScore",
            label=f"{plan.table_name} ({entry.name} v{entry.version})",
            knobs={
                "algorithm": entry.algorithm,
                "udf": udf_name,
                "segments": segments,
                "execution": execution,
                "stream": stream,
                "batch_size": batch_size or DEFAULT_SCORE_BATCH,
                "workers": worker_limit(len(parts)),
                "pages": total_pages,
                "tuples": cost.tuples_scored,
            },
            predicted={
                "tuples": cost.tuples_scored,
                "wall_cycles": cost.wall_cycles,
                "critical_path_cycles": cost.critical_path_cycles,
                "pipelined_cycles": cost.pipelined_critical_path_cycles,
                "seconds": cost.seconds(self.fpga),
                "inference_cycles_per_tuple": round(
                    cost.inference_cycles_per_tuple, 2
                ),
            },
            # The parent-side scorer span fires for threads *and* process
            # fan-outs, so the root always has a measured counterpart.
            span_site="serving.scorer.segment",
            measure=self._measure_score,
        )
        for part, part_counts in zip(parts, counts):
            i = part.segment_id
            root.children.append(
                PlanOperator(
                    name="Segment",
                    label=f"#{i}",
                    knobs={"pages": len(part), "tuples": sum(part_counts)},
                    predicted={
                        "access_cycles": cost.segment_access_cycles[i],
                        "forward_cycles": cost.segment_forward_cycles[i],
                    },
                    span_site="serving.scorer.segment",
                    span_attrs={"segment": i},
                )
            )
        root.children.append(
            PlanOperator(
                name="StriderPageWalk",
                knobs={
                    "pages": total_pages,
                    "striders": accelerator.access_engine.config.num_striders,
                },
                predicted={"access_cycles": sum(cost.segment_access_cycles)},
                # Page-walk spans surface only when extraction happens in
                # the armed parent process: thread fan-outs with striders
                # on.  One-shot score workers walk pages in child startup,
                # outside any armed capture.
                span_site=(
                    "hw.strider.page_walk"
                    if execution == "threads" and self.use_striders
                    else None
                ),
            )
        )
        root.children.extend(filter_limit_ops(where, plan.limit))
        return root

    def _explain_create_model(self, plan: CreateModel) -> PlanOperator:
        """Operator tree of a ``CREATE MODEL ... AS TRAIN`` statement."""
        if plan.udf_name not in self._udfs:
            raise QueryError(
                f"UDF {plan.udf_name!r} is not registered; registered UDFs: "
                f"{self.registered_udfs()}"
            )
        if not self.database.catalog.has_table(plan.table_name):
            raise QueryError(f"table {plan.table_name!r} does not exist")
        options = self._sql_train_options(plan.options)
        try:
            _validate_train_config(
                epochs=options.get("epochs"),
                segments=options.get("segments"),
                partition_strategy=options.get("partition_strategy", "round_robin"),
                aggregation=options.get("aggregation"),
                execution=options.get("execution", "auto"),
                sync=options.get("sync", "bulk_synchronous"),
                staleness=options.get("staleness", 1),
            )
        except ConfigurationError as error:
            raise QueryError(f"CREATE MODEL options are invalid: {error}") from None
        registered = self._udfs[plan.udf_name]
        spec = registered.spec
        epochs = (
            options.get("epochs")
            or registered.epochs
            or spec.algo.convergence.epoch_bound
        )
        segments = options.get("segments")
        if segments is None:
            train_op = self._explain_single_train(
                registered,
                plan.table_name,
                epochs,
                stream=options.get("stream", True),
            )
        else:
            train_op = self._explain_sharded_train(
                registered, plan.table_name, epochs, segments, options
            )
        return PlanOperator(
            name="CreateModel",
            label=plan.model_name,
            knobs={
                "udf": plan.udf_name,
                "table": plan.table_name,
                "algorithm": spec.name,
            },
            measure=lambda result: {
                "version": result.rows[0][1],
                "epochs_run": result.rows[0][3],
            },
            children=[train_op],
        )

    def _explain_udf(self, plan: UDFCall) -> PlanOperator:
        """Operator tree of a ``SELECT * FROM dana.<udf>('<table>')`` call."""
        if plan.udf_name not in self._udfs:
            raise QueryError(
                f"UDF {plan.udf_name!r} is not registered; registered UDFs: "
                f"{self.registered_udfs()}"
            )
        if not self.database.catalog.has_table(plan.table_name):
            raise QueryError(f"table {plan.table_name!r} does not exist")
        registered = self._udfs[plan.udf_name]
        epochs = registered.epochs or registered.spec.algo.convergence.epoch_bound
        return PlanOperator(
            name="AcceleratedUDF",
            label=f"dana.{plan.udf_name}({plan.table_name!r})",
            knobs={"algorithm": registered.spec.name, "epochs": epochs},
            measure=lambda result: {
                "tuples_extracted": result.payload.tuples_extracted,
                "engine_cycles": result.payload.engine_stats.total_cycles,
            },
            children=[
                self._explain_single_train(registered, plan.table_name, epochs)
            ],
        )

    def _explain_single_train(
        self,
        registered: RegisteredUDF,
        table_name: str,
        epochs: int,
        stream: bool = True,
    ) -> PlanOperator:
        """The single-accelerator training operator (``segments=None``)."""
        self.compile_udf(registered.name, table_name)
        accelerator = registered.accelerators[table_name]
        parts, counts = self._explain_partitions(table_name, 1)
        cost = predict_train_cost(
            accelerator.access_engine,
            accelerator.execution_engine,
            counts,
            epochs,
            _model_elements(registered.spec),
        )
        return PlanOperator(
            name="Train",
            label=registered.name,
            knobs={
                "mode": "single",
                "epochs": epochs,
                "stream": stream,
                "pages": len(parts[0]),
                "tuples": sum(counts[0]),
            },
            predicted={
                "access_cycles": cost.segment_access_cycles[0],
                "engine_cycles": cost.segment_engine_cycles[0],
                "critical_path_cycles": cost.critical_path_cycles,
                "seconds": cost.seconds(self.fpga),
                "pipelined_seconds": cost.pipelined_seconds(self.fpga),
            },
            # The classic single-accelerator path drives its epochs inline
            # (no EpochDriver), so there is no runtime.epoch span to match.
            span_site=None,
            children=[
                PlanOperator(
                    name="StriderPageWalk",
                    knobs={
                        "pages": len(parts[0]),
                        "striders": accelerator.access_engine.config.num_striders,
                    },
                    predicted={"access_cycles": cost.segment_access_cycles[0]},
                    span_site=(
                        "hw.strider.page_walk" if self.use_striders else None
                    ),
                )
            ],
        )

    def _explain_sharded_train(
        self,
        registered: RegisteredUDF,
        table_name: str,
        epochs: int,
        segments: int,
        options: dict[str, Any],
    ) -> PlanOperator:
        """The sharded training operator (``segments=N``) with merge/IPC costs."""
        binary = self.compile_udf(registered.name, table_name)
        spec = registered.spec
        try:
            sharded = ShardedDAnA(
                database=self.database,
                binary=binary,
                spec=spec,
                segments=segments,
                fpga=self.fpga,
                partition_strategy=options.get("partition_strategy", "round_robin"),
                aggregation=options.get("aggregation"),
                execution=options.get("execution", "auto"),
                seed=options.get("seed", 0),
                use_striders=self.use_striders,
                sync=options.get("sync", "bulk_synchronous"),
                staleness=options.get("staleness", 1),
                stream=options.get("stream", True),
            )
        except ConfigurationError as error:
            raise QueryError(f"CREATE MODEL options are invalid: {error}") from None
        mode = sharded.mode
        parts, counts = self._explain_partitions(
            table_name,
            segments,
            partition_strategy=sharded.partitioner.strategy,
            seed=sharded.partitioner.seed,
        )
        accelerator = registered.accelerators[table_name]
        sync_name = sharded.sync_policy.name
        staleness = sharded.sync_policy.staleness
        cost = predict_train_cost(
            accelerator.access_engine,
            accelerator.execution_engine,
            counts,
            epochs,
            _model_elements(spec),
            sync=sync_name,
            staleness=staleness,
            tree_bus_alus=binary.design.aus_per_cluster,
            execution=mode,
        )
        predicted: dict[str, Any] = {
            "critical_path_cycles": cost.critical_path_cycles,
            "pipelined_cycles": cost.pipelined_critical_path_cycles,
            "seconds": cost.seconds(self.fpga),
            "pipelined_seconds": cost.pipelined_seconds(self.fpga),
            "epochs": epochs,
        }
        if mode == "processes":
            predicted["ipc_bytes"] = cost.ipc_bytes
            predicted["ipc_round_trips"] = cost.ipc_round_trips
        op = PlanOperator(
            name="EpochLoop",
            knobs={
                "mode": mode,
                "segments": segments,
                "epochs": epochs,
                "sync": sync_name,
                "staleness": staleness,
                "stream": sharded.stream,
                "partition_strategy": sharded.partitioner.strategy,
                # Lockstep evaluates all segments on one vectorized tape —
                # no fan-out, so no worker clamp applies.
                "workers": 0 if mode == "lockstep" else worker_limit(segments),
            },
            predicted=predicted,
            # Every sharded mode schedules epochs through the EpochDriver.
            span_site="runtime.epoch",
        )
        for part, part_counts in zip(parts, counts):
            i = part.segment_id
            op.children.append(
                PlanOperator(
                    name="SegmentTrain",
                    label=f"#{i}",
                    knobs={"pages": len(part), "tuples": sum(part_counts)},
                    predicted={
                        "access_cycles": cost.segment_access_cycles[i],
                        "engine_cycles": cost.segment_engine_cycles[i],
                    },
                    # Per-segment training spans exist only for real
                    # fan-outs; lockstep's segment axis lives inside one
                    # vectorized tape run, and a segment with no pages
                    # never reaches its training loop.
                    span_site=(
                        "cluster.segment.train"
                        if mode != "lockstep" and part
                        else None
                    ),
                    span_attrs={"segment": i},
                )
            )
        if segments > 1:
            op.children.append(
                PlanOperator(
                    name="MergeModels",
                    knobs={
                        "aggregation": sharded.aggregation_strategy,
                        "merges": cost.merges_performed,
                        "model_elements": cost.model_elements,
                    },
                    predicted={"cross_merge_cycles": cost.cross_merge_cycles},
                    span_site="cluster.segment.merge",
                )
            )
        op.children.append(
            PlanOperator(
                name="StriderPageWalk",
                knobs={
                    "pages": sum(len(part) for part in parts),
                    "striders": accelerator.access_engine.config.num_striders,
                },
                predicted={"access_cycles": sum(cost.segment_access_cycles)},
                # Process workers walk their pages during un-armed child
                # startup, so only in-process modes surface these spans.
                span_site=(
                    "hw.strider.page_walk"
                    if mode in ("lockstep", "threads") and self.use_striders
                    else None
                ),
            )
        )
        return op

    # -- SQL helpers --------------------------------------------------- #
    def _sql_model_entry(self, model_name: str, version: int | None) -> ModelEntry:
        """Registry lookup with SQL-flavoured (QueryError) failures."""
        try:
            return self.registry.entry(model_name, version)
        except ConfigurationError as error:
            raise QueryError(str(error)) from None

    def _sql_udf_for_model(self, entry: ModelEntry) -> str:
        """The registered UDF a saved model was trained by."""
        udf_name = entry.metadata.get("udf", "")
        if udf_name not in self._udfs:
            raise QueryError(
                f"saved model {entry.name!r} v{entry.version} was trained by "
                f"UDF {udf_name!r}, which is not registered with this DAnA "
                f"system; registered UDFs: {self.registered_udfs()}"
            )
        return udf_name

    def _sql_score_stats(self, entry: ModelEntry, result: ScoreResult) -> dict:
        """The ``stats`` block SQL scoring statements report."""
        return {
            "model": entry.name,
            "version": entry.version,
            "algorithm": entry.algorithm,
            "segments": len(result.segments),
            "stream": result.stream,
            "tuples_scored": result.tuples_scored,
            "forward_cycles": result.inference_stats.forward_cycles,
            "critical_path_cycles": result.critical_path_cycles,
        }

    def _sql_train_options(
        self, options: tuple[tuple[str, Any], ...]
    ) -> dict[str, Any]:
        """Validate and coerce CREATE MODEL WITH options into train kwargs."""
        allowed = {
            "epochs": int,
            "segments": int,
            "partition_strategy": str,
            "aggregation": str,
            "execution": str,
            "shuffle": bool,
            "seed": int,
            "sync": str,
            "staleness": int,
            "stream": bool,
        }
        kwargs: dict[str, Any] = {}
        for key, value in options:
            if key not in allowed:
                raise QueryError(
                    f"unknown CREATE MODEL option {key!r}; expected one of "
                    f"{sorted(allowed)}"
                )
            expected = allowed[key]
            if expected is int and isinstance(value, (int, float)) and not isinstance(value, bool):
                if float(value) != int(value):
                    raise QueryError(
                        f"option {key!r} must be an integer, got {value!r}"
                    )
                kwargs[key] = int(value)
            elif expected is bool and isinstance(value, bool):
                kwargs[key] = value
            elif expected is str and isinstance(value, str):
                kwargs[key] = value
            else:
                raise QueryError(
                    f"option {key!r} expects a {expected.__name__} value, "
                    f"got {value!r}"
                )
        return kwargs

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _registered(self, udf_name: str) -> RegisteredUDF:
        try:
            return self._udfs[udf_name]
        except KeyError:
            raise ConfigurationError(f"UDF {udf_name!r} is not registered") from None

    def _execute_udf(self, registered: RegisteredUDF, table_name: str) -> QueryResult:
        run = self._run_accelerator(registered, table_name, registered.epochs)
        rows = [(name, np.asarray(value).tolist()) for name, value in run.models.items()]
        return QueryResult(
            rows=rows,
            columns=("model", "coefficients"),
            payload=run,
            stats={
                "system": "DAnA+PostgreSQL",
                "tuples_extracted": run.tuples_extracted,
                "engine_cycles": run.engine_stats.total_cycles,
                "strider_cycles": run.access_stats.strider_cycles_critical,
            },
        )

    def _run_accelerator(
        self,
        registered: RegisteredUDF,
        table_name: str,
        epochs: int | None,
        shuffle: bool = False,
        seed: int = 0,
        stream: bool = True,
        retry: RetryPolicy | None = None,
    ) -> AcceleratorRunResult:
        self.compile_udf(registered.name, table_name)
        accelerator = registered.accelerators[table_name]
        spec = registered.spec
        table = self.database.table(table_name)
        run_epochs = epochs or registered.epochs or spec.algo.convergence.epoch_bound
        rng = np.random.default_rng(seed) if shuffle else None
        # Pin the scan to the heap as of now: concurrent inserts land in
        # the WAL but stay invisible to this run, and the run's LSN becomes
        # the saved model's refresh watermark.
        as_of = self.database.wal.current_lsn
        page_images = (
            image
            for _no, image in table.scan_pages(
                self.database.buffer_pool, as_of_lsn=as_of
            )
        )
        if self.use_striders:
            result = accelerator.train_from_pages(
                page_images,
                initial_models=spec.initial_models,
                bind_tuple=spec.bind_tuple,
                epochs=run_epochs,
                bind_batch=spec.bind_batch,
                shuffle=shuffle,
                rng=rng,
                stream=stream,
                retry=retry,
            )
            result.snapshot_lsn = as_of
            return result
        rows = table.read_all(self.database.buffer_pool, as_of_lsn=as_of)
        result = accelerator.train_from_rows(
            rows,
            initial_models=spec.initial_models,
            bind_tuple=spec.bind_tuple,
            epochs=run_epochs,
            bind_batch=spec.bind_batch,
            shuffle=shuffle,
            rng=rng,
        )
        result.snapshot_lsn = as_of
        return result

    def _inference_plan(
        self, registered: RegisteredUDF, table_name: str | None = None
    ) -> InferencePlan:
        """A forward-only serving plan (compiled once per design, cached).

        Table scoring always uses the design compiled for *that* table, and
        table-less point serving always uses a nominal design compiled
        against the database's page layout — so the schedule-derived
        serving counters are a function of the call's arguments, never of
        the order earlier API calls compiled things in.
        """
        key = table_name or ""
        plan = registered.inference_plans.get(key)
        if plan is not None:
            return plan
        spec = registered.spec
        if table_name is not None:
            binary = self.compile_udf(registered.name, table_name)
            plan = InferencePlan.from_binary(binary, spec)
        else:
            graph = translate(spec.algo)
            generator = HardwareGenerator(
                graph,
                self.database.layout,
                spec.schema,
                self.fpga,
                merge_coefficient=spec.algo.merge_coefficient,
                n_tuples=4096,
            )
            design = generator.generate()
            plan = InferencePlan(
                graph,
                spec,
                threads=design.threads,
                acs_per_thread=design.acs_per_thread,
            )
        registered.inference_plans[key] = plan
        return plan

    def _resolve_models(
        self,
        spec: AlgorithmSpec,
        models: Mapping[str, np.ndarray] | None,
        model_name: str | None,
        version: int | None,
    ) -> tuple[dict[str, np.ndarray], ModelEntry | None]:
        """Resolve and validate the model a serving call scores with.

        Returns ``(models, entry)`` where ``entry`` is the registry
        descriptor when the model came from the registry, else ``None``.
        """
        if (models is None) == (model_name is None):
            raise ConfigurationError(
                "supply exactly one of models= (an in-memory model mapping) "
                "or model_name= (a saved model in the registry)"
            )
        entry: ModelEntry | None = None
        if model_name is not None:
            models, entry = self.registry.load(model_name, version)
            if entry.algorithm and entry.algorithm != spec.name:
                raise ConfigurationError(
                    f"saved model {model_name!r} v{entry.version} was trained by "
                    f"algorithm {entry.algorithm!r} but this UDF runs {spec.name!r}"
                )
            context = f"saved model {model_name!r} v{entry.version}"
        else:
            context = "models="
        self._check_model_shapes(spec, models, context=context)
        return {
            name: np.asarray(value, dtype=np.float64)
            for name, value in models.items()
        }, entry

    def _check_model_shapes(
        self, spec: AlgorithmSpec, models: Mapping[str, np.ndarray], context: str
    ) -> None:
        if not isinstance(models, Mapping) or not models:
            raise ConfigurationError(
                f"{context}: expected a non-empty mapping of model parameter "
                f"arrays, got {models!r}"
            )
        expected = {
            name: np.shape(value) for name, value in spec.initial_models.items()
        }
        got = {name: np.shape(value) for name, value in models.items()}
        if set(got) != set(expected):
            raise ConfigurationError(
                f"{context}: model parameters {sorted(got)} do not match the "
                f"algorithm's parameters {sorted(expected)}"
            )
        for name, shape in expected.items():
            if got[name] != shape:
                raise ConfigurationError(
                    f"{context}: parameter {name!r} has shape {got[name]} but "
                    f"the algorithm expects {shape}"
                )

    def _run_sharded(
        self,
        registered: RegisteredUDF,
        table_name: str,
        epochs: int | None,
        segments: int,
        partition_strategy: str,
        aggregation: str | None,
        execution: str,
        shuffle: bool,
        seed: int,
        sync: str = "bulk_synchronous",
        staleness: int = 1,
        stream: bool = True,
        retry: RetryPolicy | None = None,
    ) -> ShardedRunResult:
        """Deploy one accelerator per segment and train with epoch merges."""
        binary = self.compile_udf(registered.name, table_name)
        spec = registered.spec
        run_epochs = epochs or registered.epochs or spec.algo.convergence.epoch_bound
        sharded = ShardedDAnA(
            database=self.database,
            binary=binary,
            spec=spec,
            segments=segments,
            fpga=self.fpga,
            partition_strategy=partition_strategy,
            aggregation=aggregation,
            execution=execution,
            seed=seed,
            use_striders=self.use_striders,
            sync=sync,
            staleness=staleness,
            stream=stream,
            retry=retry,
        )
        return sharded.train(table_name, epochs=run_epochs, shuffle=shuffle)


def _model_elements(spec: AlgorithmSpec) -> int:
    """Total scalar elements across an algorithm's model parameters."""
    return sum(int(np.asarray(v).size) for v in spec.initial_models.values())


def _sql_value(prediction: np.ndarray) -> float | list:
    """One prediction as a SQL result value (scalar float or list)."""
    array = np.asarray(prediction)
    if array.ndim == 0:
        return float(array)
    return array.tolist()


def _validate_train_config(
    epochs: int | None,
    segments: int | None,
    partition_strategy: str,
    aggregation: str | None,
    execution: str,
    sync: str,
    staleness: int,
) -> None:
    """Fail fast on invalid ``DAnA.train`` configuration.

    Every invalid value raises :class:`ConfigurationError` naming the valid
    choices, instead of surfacing later as a deep ``KeyError``/``IndexError``
    from the cluster or runtime internals.
    """
    if epochs is not None and (not isinstance(epochs, int) or epochs < 1):
        raise ConfigurationError(
            f"epochs must be an integer >= 1 (or None for the registered / "
            f"convergence-bound default), got {epochs!r}"
        )
    if segments is not None and (not isinstance(segments, int) or segments < 1):
        raise ConfigurationError(
            f"segments must be an integer >= 1 (or None for the "
            f"single-accelerator path), got {segments!r}"
        )
    if partition_strategy not in PARTITION_STRATEGIES:
        raise ConfigurationError(
            f"unknown partition strategy {partition_strategy!r}; "
            f"expected one of {PARTITION_STRATEGIES}"
        )
    if execution not in EXECUTION_STRATEGIES:
        raise ConfigurationError(
            f"unknown execution strategy {execution!r}; "
            f"expected one of {EXECUTION_STRATEGIES}"
        )
    if aggregation is not None and aggregation not in AGGREGATION_STRATEGIES:
        raise ConfigurationError(
            f"unknown aggregation strategy {aggregation!r}; "
            f"expected one of {AGGREGATION_STRATEGIES} (or None to auto-select)"
        )
    if sync not in SYNC_POLICIES:
        raise ConfigurationError(
            f"unknown sync policy {sync!r}; expected one of {SYNC_POLICIES}"
        )
    if not isinstance(staleness, int) or staleness < 1:
        raise ConfigurationError(
            f"staleness must be an integer >= 1, got {staleness!r}"
        )


def _validate_serving_config(
    path: str,
    batch_size: int | None,
    segments: int | None = None,
    partition_strategy: str | None = None,
    stream: bool = True,
    execution: str = "threads",
) -> None:
    """Fail fast on invalid ``predict``/``score_table`` configuration.

    Mirrors :func:`_validate_train_config`: every invalid value raises
    :class:`ConfigurationError` naming the valid choices up front.
    """
    if path not in SERVING_PATHS:
        raise ConfigurationError(
            f"unknown serving path {path!r}; expected one of {SERVING_PATHS}"
        )
    if batch_size is not None and (not isinstance(batch_size, int) or batch_size < 1):
        raise ConfigurationError(
            f"batch_size must be an integer >= 1 (or None for the default "
            f"scoring micro-batch), got {batch_size!r}"
        )
    if segments is not None and (not isinstance(segments, int) or segments < 1):
        raise ConfigurationError(
            f"segments must be an integer >= 1 (or None for a single "
            f"scan-and-score segment), got {segments!r}"
        )
    if partition_strategy is not None and partition_strategy not in PARTITION_STRATEGIES:
        raise ConfigurationError(
            f"unknown partition strategy {partition_strategy!r}; "
            f"expected one of {PARTITION_STRATEGIES}"
        )
    if not isinstance(stream, bool):
        raise ConfigurationError(
            f"stream must be a bool (True = overlap the page walk with the "
            f"forward tape, False = materialized oracle), got {stream!r}"
        )
    if execution not in SCORING_EXECUTION_STRATEGIES:
        raise ConfigurationError(
            f"unknown scoring execution strategy {execution!r}; "
            f"expected one of {SCORING_EXECUTION_STRATEGIES}"
        )


def _validate_retry(retry: RetryPolicy | None, allow_redistribute: bool = True) -> None:
    """Fail fast on an invalid ``retry=`` argument.

    Mirrors :func:`_validate_train_config`: a wrong type (or a degradation
    mode the call cannot honour) raises :class:`ConfigurationError` up
    front instead of surfacing deep inside the retried subsystem.
    """
    if retry is None:
        return
    if not isinstance(retry, RetryPolicy):
        raise ConfigurationError(
            f"retry must be a repro.reliability.RetryPolicy (or None to "
            f"fail fast on the first transient fault), got {retry!r}"
        )
    if not allow_redistribute and retry.degradation == "redistribute":
        raise ConfigurationError(
            "degradation='redistribute' applies to scoring only: training "
            "retries each segment in place, because redistributing a failed "
            "segment's pages would change the cross-segment merge schedule "
            "(and with it the trained models)"
        )
