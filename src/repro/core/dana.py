"""The DAnA system facade: UDF registration, compilation and query execution.

This is the top of the stack drawn in the paper's Figure 2.  A data
scientist expresses the learning algorithm with the Python-embedded DSL,
registers it as a UDF, and invokes it from SQL::

    from repro import dana
    from repro.core import DAnA
    from repro.rdbms import Database

    db = Database()
    system = DAnA(db)
    system.register_algorithm_udf("linearR", "linear", n_features=10)
    result = db.execute("SELECT * FROM dana.linearR('training_data_table');")

Behind the scenes the facade runs the full DAnA workflow: translate the UDF
into an hDFG, let the hardware generator pick the accelerator design for
the target FPGA and page layout, compile the Strider program and the
execution-engine schedule, store everything in the RDBMS catalog, and —
when the query runs — stream the table's buffer-pool pages through the
simulated accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.algorithms import Hyperparameters, get_algorithm
from repro.algorithms.base import AlgorithmSpec
from repro.cluster import (
    AGGREGATION_STRATEGIES,
    EXECUTION_STRATEGIES,
    PARTITION_STRATEGIES,
    ShardedDAnA,
    ShardedRunResult,
)
from repro.compiler import ExecutionBinary, HardwareGenerator, Scheduler
from repro.exceptions import ConfigurationError
from repro.hw import DAnAAccelerator, DEFAULT_FPGA, FPGASpec
from repro.hw.accelerator import AcceleratorRunResult
from repro.rdbms import AcceleratorEntry, Database
from repro.rdbms.query import QueryResult
from repro.runtime import SYNC_POLICIES
from repro.translator import translate


@dataclass
class RegisteredUDF:
    """A UDF registered with DAnA, compiled lazily per target table."""

    name: str
    spec: AlgorithmSpec
    epochs: int | None = None
    binaries: dict[str, ExecutionBinary] = field(default_factory=dict)
    accelerators: dict[str, DAnAAccelerator] = field(default_factory=dict)


class DAnA:
    """In-Database Acceleration of Advanced Analytics."""

    def __init__(
        self,
        database: Database,
        fpga: FPGASpec = DEFAULT_FPGA,
        use_striders: bool = True,
    ) -> None:
        self.database = database
        self.fpga = fpga
        self.use_striders = use_striders
        self._udfs: dict[str, RegisteredUDF] = {}

    # ------------------------------------------------------------------ #
    # UDF registration
    # ------------------------------------------------------------------ #
    def register_udf(
        self, udf_name: str, spec: AlgorithmSpec, epochs: int | None = None
    ) -> RegisteredUDF:
        """Register a hand-written DSL program as an accelerated UDF."""
        if udf_name in self._udfs:
            raise ConfigurationError(f"UDF {udf_name!r} is already registered")
        registered = RegisteredUDF(name=udf_name, spec=spec, epochs=epochs)
        self._udfs[udf_name] = registered

        def handler(db: Database, table_name: str) -> QueryResult:
            return self._execute_udf(registered, table_name)

        self.database.register_udf(udf_name, handler)
        return registered

    def register_algorithm_udf(
        self,
        udf_name: str,
        algorithm_key: str,
        n_features: int,
        hyper: Hyperparameters | None = None,
        model_topology: tuple[int, ...] = (),
        epochs: int | None = None,
    ) -> RegisteredUDF:
        """Register one of the built-in algorithms as an accelerated UDF."""
        algorithm = get_algorithm(algorithm_key)
        spec = algorithm.build_spec(n_features, hyper or Hyperparameters(), model_topology)
        return self.register_udf(udf_name, spec, epochs=epochs)

    def registered_udfs(self) -> list[str]:
        return sorted(self._udfs)

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def compile_udf(self, udf_name: str, table_name: str) -> ExecutionBinary:
        """Compile (or fetch the cached) accelerator for a UDF/table pair."""
        registered = self._registered(udf_name)
        if table_name in registered.binaries:
            return registered.binaries[table_name]
        spec = registered.spec
        table_entry = self.database.catalog.table(table_name)
        graph = translate(spec.algo)
        generator = HardwareGenerator(
            graph,
            table_entry.layout,
            spec.schema,
            self.fpga,
            merge_coefficient=spec.algo.merge_coefficient,
            n_tuples=max(1, table_entry.tuple_count),
        )
        design = generator.generate()
        schedule = Scheduler(graph, design.acs_per_thread).schedule()
        binary = ExecutionBinary.build(
            udf_name=udf_name,
            algorithm=spec.name,
            design=design,
            strider=generator.strider_compilation,
            thread_schedule=schedule,
            graph=graph,
            metadata={"table": table_name},
        )
        registered.binaries[table_name] = binary
        registered.accelerators[table_name] = DAnAAccelerator(
            binary=binary, schema=spec.schema, fpga=self.fpga
        )
        # Store the accelerator metadata in the RDBMS catalog (Figure 2).
        self.database.register_accelerator(
            AcceleratorEntry(
                udf_name=udf_name,
                algorithm=spec.name,
                design=design,
                strider_program=binary.strider.program,
                execution_schedule=binary.thread_schedule.program,
                metadata=binary.describe(),
            )
        )
        return binary

    def accelerator_for(self, udf_name: str, table_name: str) -> DAnAAccelerator:
        self.compile_udf(udf_name, table_name)
        return self._registered(udf_name).accelerators[table_name]

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self, sql: str) -> QueryResult:
        """Execute a SQL statement (UDF calls run on the accelerator)."""
        return self.database.execute(sql)

    def train(
        self,
        udf_name: str,
        table_name: str,
        epochs: int | None = None,
        segments: int | None = None,
        partition_strategy: str = "round_robin",
        aggregation: str | None = None,
        execution: str = "auto",
        shuffle: bool = False,
        seed: int = 0,
        sync: str = "bulk_synchronous",
        staleness: int = 1,
        stream: bool = True,
    ) -> AcceleratorRunResult | ShardedRunResult:
        """Train a registered UDF over a table without going through SQL.

        ``segments=None`` (the default) runs the classic single-accelerator
        path.  ``segments=N`` deploys one DAnA accelerator per segment
        (:mod:`repro.cluster`): heap pages are partitioned with
        ``partition_strategy``, per-segment models are combined with
        ``aggregation`` (auto-selected per algorithm when ``None``),
        and ``execution`` picks the lock-step vectorized or thread-pool
        strategy.  A fixed ``seed`` makes sharded runs — including
        ``shuffle=True`` epoch orders — bit-reproducible.

        The epoch runtime (:mod:`repro.runtime`) is pipelined: with
        ``stream=True`` (default) extraction feeds training through bounded
        double buffers, and ``sync`` picks the cross-segment merge policy —
        ``"bulk_synchronous"`` (barriered every epoch; bit-identical to the
        unpipelined path), ``"stale_synchronous"`` (merge every
        ``staleness`` epochs; fast segments run ahead between merges) or
        ``"async_merge"`` (per-epoch merges overlapped with the next
        epoch's preparation; models bit-identical to bulk-synchronous).
        """
        _validate_train_config(
            epochs=epochs,
            segments=segments,
            partition_strategy=partition_strategy,
            aggregation=aggregation,
            execution=execution,
            sync=sync,
            staleness=staleness,
        )
        registered = self._registered(udf_name)
        if segments is None:
            return self._run_accelerator(
                registered, table_name, epochs, shuffle=shuffle, seed=seed,
                stream=stream,
            )
        return self._run_sharded(
            registered,
            table_name,
            epochs,
            segments=segments,
            partition_strategy=partition_strategy,
            aggregation=aggregation,
            execution=execution,
            shuffle=shuffle,
            seed=seed,
            sync=sync,
            staleness=staleness,
            stream=stream,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _registered(self, udf_name: str) -> RegisteredUDF:
        try:
            return self._udfs[udf_name]
        except KeyError:
            raise ConfigurationError(f"UDF {udf_name!r} is not registered") from None

    def _execute_udf(self, registered: RegisteredUDF, table_name: str) -> QueryResult:
        run = self._run_accelerator(registered, table_name, registered.epochs)
        rows = [(name, np.asarray(value).tolist()) for name, value in run.models.items()]
        return QueryResult(
            rows=rows,
            columns=("model", "coefficients"),
            payload=run,
            stats={
                "system": "DAnA+PostgreSQL",
                "tuples_extracted": run.tuples_extracted,
                "engine_cycles": run.engine_stats.total_cycles,
                "strider_cycles": run.access_stats.strider_cycles_critical,
            },
        )

    def _run_accelerator(
        self,
        registered: RegisteredUDF,
        table_name: str,
        epochs: int | None,
        shuffle: bool = False,
        seed: int = 0,
        stream: bool = True,
    ) -> AcceleratorRunResult:
        self.compile_udf(registered.name, table_name)
        accelerator = registered.accelerators[table_name]
        spec = registered.spec
        table = self.database.table(table_name)
        run_epochs = epochs or registered.epochs or spec.algo.convergence.epoch_bound
        rng = np.random.default_rng(seed) if shuffle else None
        page_images = (image for _no, image in table.scan_pages(self.database.buffer_pool))
        if self.use_striders:
            return accelerator.train_from_pages(
                page_images,
                initial_models=spec.initial_models,
                bind_tuple=spec.bind_tuple,
                epochs=run_epochs,
                bind_batch=spec.bind_batch,
                shuffle=shuffle,
                rng=rng,
                stream=stream,
            )
        rows = table.read_all(self.database.buffer_pool)
        return accelerator.train_from_rows(
            rows,
            initial_models=spec.initial_models,
            bind_tuple=spec.bind_tuple,
            epochs=run_epochs,
            bind_batch=spec.bind_batch,
            shuffle=shuffle,
            rng=rng,
        )

    def _run_sharded(
        self,
        registered: RegisteredUDF,
        table_name: str,
        epochs: int | None,
        segments: int,
        partition_strategy: str,
        aggregation: str | None,
        execution: str,
        shuffle: bool,
        seed: int,
        sync: str = "bulk_synchronous",
        staleness: int = 1,
        stream: bool = True,
    ) -> ShardedRunResult:
        """Deploy one accelerator per segment and train with epoch merges."""
        binary = self.compile_udf(registered.name, table_name)
        spec = registered.spec
        run_epochs = epochs or registered.epochs or spec.algo.convergence.epoch_bound
        sharded = ShardedDAnA(
            database=self.database,
            binary=binary,
            spec=spec,
            segments=segments,
            fpga=self.fpga,
            partition_strategy=partition_strategy,
            aggregation=aggregation,
            execution=execution,
            seed=seed,
            use_striders=self.use_striders,
            sync=sync,
            staleness=staleness,
            stream=stream,
        )
        return sharded.train(table_name, epochs=run_epochs, shuffle=shuffle)


def _validate_train_config(
    epochs: int | None,
    segments: int | None,
    partition_strategy: str,
    aggregation: str | None,
    execution: str,
    sync: str,
    staleness: int,
) -> None:
    """Fail fast on invalid ``DAnA.train`` configuration.

    Every invalid value raises :class:`ConfigurationError` naming the valid
    choices, instead of surfacing later as a deep ``KeyError``/``IndexError``
    from the cluster or runtime internals.
    """
    if epochs is not None and (not isinstance(epochs, int) or epochs < 1):
        raise ConfigurationError(
            f"epochs must be an integer >= 1 (or None for the registered / "
            f"convergence-bound default), got {epochs!r}"
        )
    if segments is not None and (not isinstance(segments, int) or segments < 1):
        raise ConfigurationError(
            f"segments must be an integer >= 1 (or None for the "
            f"single-accelerator path), got {segments!r}"
        )
    if partition_strategy not in PARTITION_STRATEGIES:
        raise ConfigurationError(
            f"unknown partition strategy {partition_strategy!r}; "
            f"expected one of {PARTITION_STRATEGIES}"
        )
    if execution not in EXECUTION_STRATEGIES:
        raise ConfigurationError(
            f"unknown execution strategy {execution!r}; "
            f"expected one of {EXECUTION_STRATEGIES}"
        )
    if aggregation is not None and aggregation not in AGGREGATION_STRATEGIES:
        raise ConfigurationError(
            f"unknown aggregation strategy {aggregation!r}; "
            f"expected one of {AGGREGATION_STRATEGIES} (or None to auto-select)"
        )
    if sync not in SYNC_POLICIES:
        raise ConfigurationError(
            f"unknown sync policy {sync!r}; expected one of {SYNC_POLICIES}"
        )
    if not isinstance(staleness, int) or staleness < 1:
        raise ConfigurationError(
            f"staleness must be an integer >= 1, got {staleness!r}"
        )
