"""End-to-end workload runner: functional comparison of all systems.

The runner takes one Table 3 workload at its functional (laptop) scale,
loads it into the miniature RDBMS, and trains it with every system under
comparison — DAnA's accelerator, MADlib+PostgreSQL, MADlib+Greenplum and
the external libraries — so that model quality and system behaviour can be
compared on identical data.  It also produces the paper-scale runtime
estimates for the same workload, which is what the benchmark harness
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.algorithms import Hyperparameters, get_algorithm
from repro.baselines import ExternalLibraryRunner, GreenplumRunner, MADlibRunner
from repro.core.dana import DAnA
from repro.data.workloads import Workload
from repro.hw.fpga import DEFAULT_FPGA, FPGASpec
from repro.perf import (
    DAnAModel,
    GreenplumModel,
    MADlibPostgresModel,
    RuntimeBreakdown,
    epochs_for,
)
from repro.rdbms import Database


@dataclass
class SystemRun:
    """Functional result of one system on one workload."""

    system: str
    models: dict[str, np.ndarray]
    loss: float
    detail: dict[str, Any] = field(default_factory=dict)


@dataclass
class WorkloadComparison:
    """All functional runs plus paper-scale runtime estimates."""

    workload: Workload
    runs: dict[str, SystemRun] = field(default_factory=dict)
    estimates: dict[str, RuntimeBreakdown] = field(default_factory=dict)

    def speedup(self, system: str, baseline: str = "MADlib+PostgreSQL") -> float:
        """Estimated runtime speedup of ``system`` over ``baseline``."""
        return self.estimates[system].speedup_over(self.estimates[baseline])


class WorkloadRunner:
    """Runs one workload end-to-end across systems."""

    def __init__(
        self,
        workload: Workload,
        fpga: FPGASpec = DEFAULT_FPGA,
        epochs: int | None = None,
        seed: int = 0,
    ) -> None:
        self.workload = workload
        self.fpga = fpga
        self.epochs = epochs if epochs is not None else workload.default_epochs
        self.seed = seed
        self.algorithm = get_algorithm(workload.algorithm_key)
        self.hyper = Hyperparameters(
            learning_rate=workload.learning_rate,
            merge_coefficient=workload.merge_coefficient,
            epochs=self.epochs,
        )
        self.data = workload.generate(seed=seed)
        topology = workload.functional_topology()
        n_features = (
            topology[0] if workload.algorithm_key != "lrmf" else workload.func_features
        )
        self.spec = self.algorithm.build_spec(n_features, self.hyper, topology)
        self.database = Database(page_size=8 * 1024)
        self.table_name = "training_data_table"
        self.database.load_table(self.table_name, self.spec.schema, self.data)
        self.database.warm_cache(self.table_name)

    # ------------------------------------------------------------------ #
    # functional runs
    # ------------------------------------------------------------------ #
    def run_dana(self) -> SystemRun:
        """Train on the simulated DAnA accelerator; returns the run summary."""
        system = DAnA(self.database, fpga=self.fpga)
        system.register_udf(self.workload.algorithm_key, self.spec, epochs=self.epochs)
        run = system.train(self.workload.algorithm_key, self.table_name, epochs=self.epochs)
        loss = self.algorithm.loss(self.data, run.models)
        return SystemRun(
            system="DAnA+PostgreSQL",
            models=run.models,
            loss=loss,
            detail={
                "tuples_extracted": run.tuples_extracted,
                "engine_cycles": run.engine_stats.total_cycles,
                "strider_cycles": run.access_stats.strider_cycles_critical,
                "threads": system.compile_udf(
                    self.workload.algorithm_key, self.table_name
                ).threads,
            },
        )

    def run_madlib(self) -> SystemRun:
        """Train with the functional MADlib (UDA) baseline."""
        runner = MADlibRunner(self.database, self.spec, epochs=self.epochs)
        result = runner.run(self.table_name)
        return SystemRun(
            system="MADlib+PostgreSQL",
            models=result.models,
            loss=self.algorithm.loss(self.data, result.models),
            detail={"tuples_processed": result.stats.tuples_processed},
        )

    def run_greenplum(self, segments: int = 8) -> SystemRun:
        """Train with the sharded Greenplum baseline on ``segments``."""
        runner = GreenplumRunner(self.database, self.spec, segments=segments, epochs=self.epochs)
        result = runner.run(self.table_name)
        return SystemRun(
            system=runner.system_name,
            models=result.models,
            loss=self.algorithm.loss(self.data, result.models),
            detail={"segments": segments},
        )

    def run_external(self, library: str = "dimmwitted") -> SystemRun | None:
        """Train with an external-library baseline, or None if unavailable."""
        try:
            runner = ExternalLibraryRunner(
                self.database, library, self.workload.algorithm_key, self.hyper, self.epochs
            )
        except Exception:
            return None
        result = runner.run(self.table_name)
        return SystemRun(
            system=runner.system_name,
            models=result.models,
            loss=self.algorithm.loss(self.data, result.models),
            detail={"exported_bytes": result.stats.exported_bytes},
        )

    def reference(self) -> SystemRun:
        """The plain-NumPy reference fit (ground truth for losses)."""
        models = self.algorithm.reference_fit(self.data, self.hyper, self.epochs)
        return SystemRun(
            system="NumPy reference",
            models=models,
            loss=self.algorithm.loss(self.data, models),
        )

    # ------------------------------------------------------------------ #
    # paper-scale estimates
    # ------------------------------------------------------------------ #
    def paper_estimates(self, warm_cache: bool = True) -> dict[str, RuntimeBreakdown]:
        """Paper-scale runtime estimates per system (cycle/cost models)."""
        epochs = epochs_for(self.workload)
        estimates = {
            "MADlib+PostgreSQL": MADlibPostgresModel().estimate(self.workload, epochs, warm_cache),
            "MADlib+Greenplum(8)": GreenplumModel(8).estimate(self.workload, epochs, warm_cache),
            "DAnA+PostgreSQL": DAnAModel(fpga=self.fpga).estimate(self.workload, epochs, warm_cache),
        }
        return estimates

    # ------------------------------------------------------------------ #
    # full comparison
    # ------------------------------------------------------------------ #
    def compare(self, include_external: bool = False) -> WorkloadComparison:
        """Run every system and collect runs + estimates in one object."""
        comparison = WorkloadComparison(workload=self.workload)
        for run in (self.run_dana(), self.run_madlib(), self.run_greenplum()):
            comparison.runs[run.system] = run
        if include_external:
            external = self.run_external()
            if external is not None:
                comparison.runs[external.system] = external
        comparison.estimates = self.paper_estimates()
        return comparison
