"""Out-of-RDBMS library baselines (Liblinear- and DimmWitted-style).

Running analytics outside the database requires three phases (Figure 15):

1. **data export** — the training table is copied out of the RDBMS (here:
   a full scan through the buffer pool that materialises a text-like row
   representation, which is what ``COPY TO`` does);
2. **data transform** — the exported rows are parsed into the library's
   in-memory format;
3. **compute** — the library's own multi-core solver trains the model.

The functional runner performs all three phases so that trained-model
quality can be compared against the in-database systems, and it reports
per-phase counters that mirror the paper's runtime breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms import Hyperparameters, get_algorithm
from repro.exceptions import ConfigurationError
from repro.rdbms.database import Database


@dataclass
class ExternalPhaseStats:
    """Bytes and tuples handled by each phase of the external pipeline."""

    exported_tuples: int = 0
    exported_bytes: int = 0
    transformed_tuples: int = 0
    compute_epochs: int = 0


@dataclass
class ExternalResult:
    models: dict[str, np.ndarray]
    stats: ExternalPhaseStats = field(default_factory=ExternalPhaseStats)


class ExternalLibraryRunner:
    """Functional model of exporting a table and training it externally."""

    #: algorithms each library supports (paper §7.3)
    SUPPORT = {
        "liblinear": ("logistic", "svm"),
        "dimmwitted": ("logistic", "svm", "linear"),
    }

    def __init__(
        self,
        database: Database,
        library: str,
        algorithm_key: str,
        hyper: Hyperparameters,
        epochs: int = 1,
    ) -> None:
        library = library.lower()
        if library not in self.SUPPORT:
            raise ConfigurationError(f"unknown external library {library!r}")
        if algorithm_key not in self.SUPPORT[library]:
            raise ConfigurationError(
                f"{library} does not support the {algorithm_key!r} algorithm"
            )
        self.database = database
        self.library = library
        self.algorithm = get_algorithm(algorithm_key)
        self.hyper = hyper
        self.epochs = epochs

    @property
    def system_name(self) -> str:
        return f"{self.library.capitalize()}+PostgreSQL"

    # ------------------------------------------------------------------ #
    # the three phases
    # ------------------------------------------------------------------ #
    def export(self, table_name: str) -> tuple[list[str], ExternalPhaseStats]:
        """Phase 1: COPY the table out of the database as text rows."""
        table = self.database.table(table_name)
        stats = ExternalPhaseStats()
        lines = []
        for row in table.scan_tuples(self.database.buffer_pool):
            line = ",".join(f"{value:.6g}" for value in row)
            lines.append(line)
            stats.exported_tuples += 1
            stats.exported_bytes += len(line) + 1
        return lines, stats

    def transform(self, lines: list[str]) -> np.ndarray:
        """Phase 2: parse the exported text back into the library's format."""
        rows = [
            np.fromiter((float(field) for field in line.split(",")), dtype=np.float64)
            for line in lines
        ]
        if not rows:
            return np.empty((0, 0))
        return np.vstack(rows)

    def compute(self, data: np.ndarray) -> dict[str, np.ndarray]:
        """Phase 3: the library's own training loop."""
        return self.algorithm.reference_fit(data, self.hyper, self.epochs)

    # ------------------------------------------------------------------ #
    # end-to-end
    # ------------------------------------------------------------------ #
    def run(self, table_name: str) -> ExternalResult:
        lines, stats = self.export(table_name)
        data = self.transform(lines)
        stats.transformed_tuples = len(data)
        models = self.compute(data)
        stats.compute_epochs = self.epochs
        return ExternalResult(models=models, stats=stats)
