"""MADlib-style in-database training baseline (functional).

Apache MADlib runs learning algorithms as user-defined aggregates inside
the database: the executor scans the training table through the buffer
pool and feeds every tuple to the UDF's transition function, once per
epoch.  This module reproduces that execution model faithfully on the
miniature RDBMS — pages move through the buffer pool, tuples are decoded
one at a time, and the update rule is applied on the CPU — so its trained
models can be compared against DAnA's and its buffer-pool/I/O behaviour
feeds the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms import Hyperparameters, get_algorithm
from repro.algorithms.base import AlgorithmSpec
from repro.hw.execution_engine import TrainingResult
from repro.rdbms.database import Database
from repro.rdbms.query import QueryResult
from repro.translator import HDFGEvaluator, Region, translate


@dataclass
class MADlibStats:
    """Execution counters of one MADlib-style training run."""

    tuples_processed: int = 0
    epochs_run: int = 0
    pages_scanned: int = 0
    buffer_pool_hits: int = 0
    buffer_pool_misses: int = 0


@dataclass
class MADlibResult:
    """Outcome of a MADlib-style run: trained model plus counters."""

    models: dict[str, np.ndarray]
    stats: MADlibStats = field(default_factory=MADlibStats)
    converged: bool = False


class MADlibRunner:
    """Trains one algorithm over a table with the MADlib execution model."""

    system_name = "MADlib+PostgreSQL"

    def __init__(self, database: Database, spec: AlgorithmSpec, epochs: int | None = None) -> None:
        self.database = database
        self.spec = spec
        self.epochs = epochs if epochs is not None else spec.algo.convergence.epoch_bound
        self.graph = translate(spec.algo)
        self.evaluator = HDFGEvaluator(self.graph)

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def run(self, table_name: str) -> MADlibResult:
        table = self.database.table(table_name)
        pool = self.database.buffer_pool
        models = {k: np.array(v, dtype=np.float64) for k, v in self.spec.initial_models.items()}
        stats = MADlibStats()
        batch = max(1, self.spec.hyperparameters.merge_coefficient)
        has_merge = bool(self.graph.merge_node_ids)
        for _epoch in range(self.epochs):
            rows = []
            for row in table.scan_tuples(pool):
                rows.append(row)
                if len(rows) == (batch if has_merge else 1):
                    self._apply_batch(np.asarray(rows, dtype=np.float64), models)
                    stats.tuples_processed += len(rows)
                    rows = []
            if rows:
                self._apply_batch(np.asarray(rows, dtype=np.float64), models)
                stats.tuples_processed += len(rows)
            stats.epochs_run += 1
        stats.pages_scanned = table.page_count * stats.epochs_run
        stats.buffer_pool_hits = pool.stats.hits
        stats.buffer_pool_misses = pool.stats.misses
        return MADlibResult(models=models, stats=stats)

    def _apply_batch(self, batch: np.ndarray, models: dict[str, np.ndarray]) -> None:
        """Evaluate the update rule for a batch and fold it into the model.

        The computation is identical to DAnA's (same hDFG, same evaluator),
        only the execution substrate differs: here everything runs on the
        "CPU", tuple by tuple.
        """
        per_tuple_envs = []
        for row in batch:
            bindings = dict(self.spec.bind_tuple(row))
            for name, value in models.items():
                bindings.setdefault(name, value)
            env = self.evaluator.initial_env(bindings)
            env = self.evaluator.evaluate(env, [Region.UPDATE_RULE])
            per_tuple_envs.append(env)

        if not self.graph.merge_node_ids:
            for env in per_tuple_envs:
                env = self.evaluator.evaluate(env, [Region.UPDATE_RULE, Region.POST_MERGE])
                self._write_back(env, models)
            return

        lead = per_tuple_envs[0]
        for merge_id in self.graph.merge_node_ids:
            node = self.graph.node(merge_id)
            operand = node.inputs[0]
            values = [env[operand] for env in per_tuple_envs if operand in env]
            lead[merge_id] = self.evaluator.aggregate_merge(node, values)
        lead = self.evaluator.evaluate(lead, [Region.UPDATE_RULE, Region.POST_MERGE])
        self._write_back(lead, models)

    def _write_back(self, env: dict, models: dict[str, np.ndarray]) -> None:
        for name, value in self.evaluator.model_results(env).items():
            current = models.get(name)
            if current is None or value.shape == current.shape:
                models[name] = value
                continue
            row_index = self._gather_row(name, env)
            if row_index is not None:
                updated = current.copy()
                updated[row_index] = value
                models[name] = updated

    def _gather_row(self, model_name: str, env: dict) -> int | None:
        from repro.translator.hdfg import NodeKind

        model_node_ids = {b.node_id for b in self.graph.bindings if b.name == model_name}
        for node in self.graph.nodes():
            if node.kind is NodeKind.GATHER and node.inputs[0] in model_node_ids:
                index_value = env.get(node.inputs[1])
                if index_value is not None:
                    return int(round(float(np.asarray(index_value))))
        return None


def register_madlib_udf(
    database: Database,
    udf_name: str,
    algorithm_key: str,
    n_features: int,
    hyper: Hyperparameters,
    model_topology: tuple[int, ...] = (),
    epochs: int | None = None,
) -> None:
    """Register ``dana.<udf_name>`` as a MADlib-style (CPU) UDF."""
    algorithm = get_algorithm(algorithm_key)
    spec = algorithm.build_spec(n_features, hyper, model_topology)

    def handler(db: Database, table_name: str) -> QueryResult:
        runner = MADlibRunner(db, spec, epochs=epochs)
        result = runner.run(table_name)
        rows = [(name, value.tolist()) for name, value in result.models.items()]
        return QueryResult(
            rows=rows,
            columns=("model", "coefficients"),
            payload=result,
            stats={"system": MADlibRunner.system_name},
        )

    database.register_udf(udf_name, handler)
