"""Greenplum-style segment-parallel MADlib baseline (functional).

Greenplum hash-distributes the training table across segments; MADlib then
trains one partial model per segment each pass and merges them (model
averaging), which is the classic UDA ``transition / merge / final``
execution.  The functional runner reproduces that structure: the table is
range-partitioned across ``segments`` partitions, each partition trains on
its slice with the shared hDFG evaluator, and the per-segment models are
averaged at the end of every epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms import Hyperparameters, get_algorithm
from repro.algorithms.base import AlgorithmSpec
from repro.baselines.madlib import MADlibRunner
from repro.cluster.aggregator import ModelAggregator
from repro.rdbms.database import Database
from repro.rdbms.query import QueryResult


@dataclass
class GreenplumStats:
    segments: int = 0
    epochs_run: int = 0
    tuples_processed: int = 0
    merges_performed: int = 0


@dataclass
class GreenplumResult:
    models: dict[str, np.ndarray]
    stats: GreenplumStats = field(default_factory=GreenplumStats)


class GreenplumRunner:
    """Segment-parallel MADlib training over the miniature RDBMS."""

    def __init__(
        self,
        database: Database,
        spec: AlgorithmSpec,
        segments: int = 8,
        epochs: int | None = None,
    ) -> None:
        if segments < 1:
            raise ValueError("Greenplum needs at least one segment")
        self.database = database
        self.spec = spec
        self.segments = segments
        self.epochs = epochs if epochs is not None else spec.algo.convergence.epoch_bound
        # The UDA merge/final stage is the same ModelAggregator the sharded
        # DAnA subsystem uses (model averaging), so the functional baseline
        # and the accelerated path cannot drift apart.
        self.aggregator = ModelAggregator("average")

    @property
    def system_name(self) -> str:
        return f"MADlib+Greenplum({self.segments})"

    def run(self, table_name: str) -> GreenplumResult:
        table = self.database.table(table_name)
        rows = table.read_all(self.database.buffer_pool)
        partitions = self._partition(rows)
        models = {
            k: np.array(v, dtype=np.float64) for k, v in self.spec.initial_models.items()
        }
        stats = GreenplumStats(segments=self.segments)
        # A single-epoch MADlib runner per segment, re-seeded with the merged
        # model at every epoch boundary (the UDA merge/final functions).
        single_epoch_spec = self.spec
        for _epoch in range(self.epochs):
            segment_models = []
            for part in partitions:
                if len(part) == 0:
                    continue
                runner = _InMemoryMADlib(single_epoch_spec)
                segment_models.append(runner.train_epoch(part, models))
                stats.tuples_processed += len(part)
            if segment_models:
                models = self._merge_models(segment_models)
                stats.merges_performed += 1
            stats.epochs_run += 1
        return GreenplumResult(models=models, stats=stats)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _partition(self, rows: np.ndarray) -> list[np.ndarray]:
        """Round-robin distribution of tuples across segments."""
        return [rows[i :: self.segments] for i in range(self.segments)]

    def _merge_models(self, segment_models: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
        return self.aggregator.merge(segment_models)


class _InMemoryMADlib:
    """One segment's transition function: a MADlib epoch over an array."""

    def __init__(self, spec: AlgorithmSpec) -> None:
        self.spec = spec
        from repro.translator import HDFGEvaluator, translate

        self.graph = translate(spec.algo) if not hasattr(spec, "_graph_cache") else spec._graph_cache
        self.evaluator = HDFGEvaluator(self.graph)
        self._madlib = MADlibRunner.__new__(MADlibRunner)
        self._madlib.spec = spec
        self._madlib.graph = self.graph
        self._madlib.evaluator = self.evaluator

    def train_epoch(self, rows: np.ndarray, models: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        local = {k: np.array(v, dtype=np.float64) for k, v in models.items()}
        batch = max(1, self.spec.hyperparameters.merge_coefficient)
        has_merge = bool(self.graph.merge_node_ids)
        step = batch if has_merge else 1
        for start in range(0, len(rows), step):
            self._madlib._apply_batch(rows[start : start + step], local)
        return local


def register_greenplum_udf(
    database: Database,
    udf_name: str,
    algorithm_key: str,
    n_features: int,
    hyper: Hyperparameters,
    segments: int = 8,
    model_topology: tuple[int, ...] = (),
    epochs: int | None = None,
) -> None:
    """Register ``dana.<udf_name>`` as a Greenplum-style segment-parallel UDF."""
    algorithm = get_algorithm(algorithm_key)
    spec = algorithm.build_spec(n_features, hyper, model_topology)

    def handler(db: Database, table_name: str) -> QueryResult:
        runner = GreenplumRunner(db, spec, segments=segments, epochs=epochs)
        result = runner.run(table_name)
        rows = [(name, value.tolist()) for name, value in result.models.items()]
        return QueryResult(
            rows=rows,
            columns=("model", "coefficients"),
            payload=result,
            stats={"system": runner.system_name},
        )

    database.register_udf(udf_name, handler)
