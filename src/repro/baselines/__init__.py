"""Functional baselines: MADlib, Greenplum and out-of-RDBMS libraries.

The analytical runtime models of these systems live in :mod:`repro.perf`;
this package provides *functional* runners that actually train models over
the miniature RDBMS so that result quality and buffer-pool behaviour can be
compared against DAnA's accelerator.
"""

from repro.baselines.external import ExternalLibraryRunner, ExternalResult
from repro.baselines.greenplum import GreenplumResult, GreenplumRunner, register_greenplum_udf
from repro.baselines.madlib import MADlibResult, MADlibRunner, register_madlib_udf

__all__ = [
    "ExternalLibraryRunner",
    "ExternalResult",
    "GreenplumResult",
    "GreenplumRunner",
    "MADlibResult",
    "MADlibRunner",
    "register_greenplum_udf",
    "register_madlib_udf",
]
