"""Convenience alias so user code can write ``from repro import dana``.

This module re-exports the DSL exactly as the paper's code snippets use it
(``dana.model``, ``dana.input``, ``dana.algo``, ``dana.meta``, ...).
"""

from repro.dsl import (  # noqa: F401
    Algo,
    DanaVariable,
    Expression,
    algo,
    gather,
    gaussian,
    input,
    inter,
    meta,
    model,
    norm,
    output,
    pi,
    sigma,
    sigmoid,
    sqrt,
)

__all__ = [
    "Algo",
    "DanaVariable",
    "Expression",
    "algo",
    "gather",
    "gaussian",
    "input",
    "inter",
    "meta",
    "model",
    "norm",
    "output",
    "pi",
    "sigma",
    "sigmoid",
    "sqrt",
]
