"""Observability: telemetry (metrics + spans), run history, and ops CLI.

The package splits into leaf instrumentation primitives and one
database-backed consumer:

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms;
* :mod:`repro.obs.tracing` — named, nestable wall-clock spans;
* :mod:`repro.obs.telemetry` — the armed-session global and the
  zero-cost-when-off ``telemetry()`` accessor every instrumentation
  site uses (the :func:`~repro.reliability.faults.fault_point`
  discipline);
* :mod:`repro.obs.statement_trace` — statement-scoped capture backing
  ``EXPLAIN ANALYZE`` (a private session composing with any outer one);
* :mod:`repro.obs.recorder` — run history persisted into ``repro_runs``
  / ``repro_run_metrics`` heap tables via the catalog;
* :mod:`repro.obs.cli` — the ``repro`` console entry point
  (``python -m repro.obs``), never imported by library code.
"""

from repro.obs.telemetry import Telemetry, enable_telemetry, telemetry
from repro.obs.statement_trace import StatementTrace
from repro.obs.metrics import (
    Counter,
    Gauge,
    HISTOGRAM_SITES,
    Histogram,
    MetricsRegistry,
    DEFAULT_SECONDS_BUCKETS,
)
from repro.obs.tracing import SPAN_SITES, Span, SpanTracer
from repro.obs.recorder import (
    RUN_KINDS,
    RUN_METRICS_TABLE,
    RUNS_TABLE,
    RunRecorder,
    RunWatch,
)

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "HISTOGRAM_SITES",
    "Histogram",
    "MetricsRegistry",
    "RUN_KINDS",
    "RUN_METRICS_TABLE",
    "RUNS_TABLE",
    "RunRecorder",
    "RunWatch",
    "SPAN_SITES",
    "Span",
    "SpanTracer",
    "StatementTrace",
    "Telemetry",
    "enable_telemetry",
    "telemetry",
]
