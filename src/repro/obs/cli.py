"""The ``repro`` ops console (``python -m repro.obs``).

Subcommands, each with ``--format table|csv|json`` output:

* ``repro runs`` — list the run registry (one row per recorded train /
  score / bench invocation, read back from the ``repro_runs`` heap
  table);
* ``repro runs show <id>`` — one run's full record: config, every named
  metric (schedule-derived counters + span rollups), fired faults and
  retry counters;
* ``repro trace <id>`` — the statement trace an ``EXPLAIN ANALYZE`` run
  persisted into the registry: the rendered predicted-vs-actual plan
  plus the per-site span rollup;
* ``repro models`` — the saved-model registry (``SHOW MODELS`` through
  the SQL executor);
* ``repro bench --compare [OTHER.json]`` — the headline numbers of
  ``BENCH_throughput.json``, optionally diffed against a second result
  file;
* ``repro serve --stats`` — run the micro-batching prediction server on
  the demo workload and print its :meth:`ServingStats.to_dict`.

The database engine is in-process and in-memory, so the CLI cannot
attach to another process's tables; ``runs`` / ``models`` / ``serve``
instead build a small **deterministic demo session** (train → save →
score, telemetry armed, every invocation recorded) and query it back —
the same code path a long-lived embedding application would use against
its own live :class:`~repro.obs.recorder.RunRecorder`.
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys
from pathlib import Path
from typing import Any, Sequence

#: default BENCH result consumed by ``repro bench``.
DEFAULT_BENCH_RESULT = Path(__file__).resolve().parents[3] / "BENCH_throughput.json"

#: demo-session sizing: small enough for a CI smoke step, big enough to
#: exercise multi-page scans and multi-batch serving.
DEMO_TUPLES = 512
DEMO_FEATURES = 8
DEMO_SEGMENTS = 2
DEMO_EPOCHS = 2

OUTPUT_FORMATS = ("table", "csv", "json")


# ---------------------------------------------------------------------- #
# output formatting
# ---------------------------------------------------------------------- #
def format_rows(
    rows: Sequence[dict], fmt: str, columns: Sequence[str] | None = None
) -> str:
    """Render a list of row dicts as an aligned table, CSV, or JSON."""
    if fmt == "json":
        return json.dumps(list(rows), indent=2, default=str)
    if not rows:
        return "(no rows)" if fmt == "table" else ""
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_cell(row.get(col, "")) for col in columns] for row in rows]
    if fmt == "csv":
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(columns)
        writer.writerows(cells)
        return out.getvalue().rstrip("\n")
    widths = [
        max(len(str(col)), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(value.ljust(w) for value, w in zip(line, widths))
        for line in cells
    ]
    return "\n".join([header, rule, *body])


def format_mapping(mapping: dict, fmt: str) -> str:
    """Render one key→value mapping (``json`` keeps the nested dict)."""
    if fmt == "json":
        return json.dumps(mapping, indent=2, default=str)
    rows = [{"key": key, "value": value} for key, value in mapping.items()]
    return format_rows(rows, fmt, columns=("key", "value"))


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


# ---------------------------------------------------------------------- #
# the demo session (deterministic in-process workload)
# ---------------------------------------------------------------------- #
def build_demo_session():
    """Train, save, and score one small deterministic workload, recorded.

    Returns ``(system, telemetry_session)`` — a :class:`~repro.core.DAnA`
    whose :class:`~repro.obs.recorder.RunRecorder` holds one train run,
    one score run, one bench entry and one ``EXPLAIN ANALYZE`` score run
    (with its statement trace attached) in real heap tables.
    """
    from repro.algorithms import Hyperparameters, get_algorithm
    from repro.core.dana import DAnA
    from repro.data.synthetic import generate_for_algorithm
    from repro.obs.telemetry import Telemetry, enable_telemetry
    from repro.rdbms.database import Database

    algorithm = get_algorithm("linear")
    hyper = Hyperparameters(
        learning_rate=0.05, merge_coefficient=8, epochs=DEMO_EPOCHS
    )
    spec = algorithm.build_spec(DEMO_FEATURES, hyper)
    data = generate_for_algorithm(
        "linear", DEMO_TUPLES, DEMO_FEATURES, seed=0
    )
    database = Database(page_size=2048)
    database.load_table("demo_table", spec.schema, data)
    system = DAnA(database, record_runs=True)
    system.register_udf("demo_linear", spec, epochs=DEMO_EPOCHS)
    session = Telemetry()
    recorder = system.run_recorder
    with enable_telemetry(session):
        run = system.train(
            "demo_linear", "demo_table", epochs=DEMO_EPOCHS, segments=DEMO_SEGMENTS
        )
        system.save_model("demo_model", "demo_linear", run.models)
        watch = recorder.begin()
        score = system.score_table(
            "demo_linear", "demo_table", model_name="demo_model"
        )
        recorder.record_bench(
            "demo_score_throughput",
            metrics={
                "tuples": score.tuples_scored,
                "cycles": score.critical_path_cycles,
                "segments": len(score.segments),
            },
            watch=watch,
            config={"workload": "demo", "path": score.path},
        )
        # One EXPLAIN ANALYZE statement so the registry holds a statement
        # trace for `repro trace` (composes with the armed outer session).
        database.execute(
            "EXPLAIN ANALYZE SELECT * FROM dana.score("
            f"'demo_model', 'demo_table', segments => {DEMO_SEGMENTS});"
        )
    return system, session


# ---------------------------------------------------------------------- #
# subcommands
# ---------------------------------------------------------------------- #
def cmd_runs(args: argparse.Namespace) -> int:
    """``repro runs`` / ``repro runs show <id>``."""
    system, _session = build_demo_session()
    recorder = system.run_recorder
    if getattr(args, "runs_cmd", None) == "show":
        detail = recorder.run_detail(args.run_id)
        if args.format == "json":
            print(json.dumps(detail, indent=2, default=str))
            return 0
        metrics = detail.pop("metrics", {})
        faults = detail.pop("faults", [])
        retry = detail.pop("retry", {})
        config = detail.pop("config", {})
        print(format_mapping(detail, args.format))
        print("\n# config")
        print(format_mapping(config, args.format))
        print("\n# metrics")
        print(format_mapping(metrics, args.format))
        if faults:
            print("\n# faults")
            print(format_rows(faults, args.format))
        if retry:
            print("\n# retry")
            print(format_mapping(retry, args.format))
        return 0
    rows = recorder.runs()
    if args.limit is not None:
        rows = rows[-args.limit :]
    print(format_rows(rows, args.format))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace <run_id>`` — a run's persisted statement trace."""
    from repro.exceptions import CatalogError

    system, _session = build_demo_session()
    recorder = system.run_recorder
    try:
        detail = recorder.run_detail(args.run_id)
    except CatalogError as error:
        print(str(error), file=sys.stderr)
        return 1
    trace = detail.get("trace") or {}
    if not trace:
        print(
            f"run {args.run_id} has no recorded statement trace "
            "(traces are attached by EXPLAIN ANALYZE)",
            file=sys.stderr,
        )
        return 1
    if args.format == "json":
        print(json.dumps(trace, indent=2, default=str))
        return 0
    for line in trace.get("plan", ()):
        print(line)
    rollup = trace.get("rollup", {})
    if rollup:
        print("\n# span rollup")
        rows = [{"site": site, **stats} for site, stats in rollup.items()]
        print(format_rows(rows, args.format))
    return 0


def cmd_models(args: argparse.Namespace) -> int:
    """``repro models`` — SHOW MODELS through the SQL executor."""
    system, _session = build_demo_session()
    result = system.database.execute("SHOW MODELS")
    rows = [dict(zip(result.columns, row)) for row in result.rows]
    print(format_rows(rows, args.format, columns=result.columns))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench`` — headline bench numbers, optionally compared."""
    base_path = Path(args.result)
    if not base_path.exists():
        print(f"bench result not found: {base_path}", file=sys.stderr)
        return 1
    base = _flatten_numeric(json.loads(base_path.read_text()))
    if args.compare is None:
        rows = [{"metric": key, "value": value} for key, value in base.items()]
        print(format_rows(rows, args.format, columns=("metric", "value")))
        return 0
    other_path = Path(args.compare)
    if not other_path.exists():
        print(f"comparison result not found: {other_path}", file=sys.stderr)
        return 1
    other = _flatten_numeric(json.loads(other_path.read_text()))
    rows = []
    for key in sorted(set(base) | set(other)):
        a, b = base.get(key), other.get(key)
        delta = (
            f"{(b - a) / abs(a) * 100.0:+.1f}%"
            if a not in (None, 0) and b is not None
            else ""
        )
        rows.append(
            {
                "metric": key,
                "base": a if a is not None else "",
                "other": b if b is not None else "",
                "delta": delta,
            }
        )
    print(format_rows(rows, args.format, columns=("metric", "base", "other", "delta")))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve --stats`` — demo server stats via ServingStats.to_dict."""
    import numpy as np

    system, _session = build_demo_session()
    rng = np.random.default_rng(0)
    rows = rng.normal(size=(args.requests, DEMO_FEATURES))
    server = system.serve(
        "demo_linear", model_name="demo_model", max_batch_size=16, max_wait_ms=1.0
    )
    with server:
        futures = [server.submit(row) for row in rows]
        for future in futures:
            future.result(timeout=30.0)
    print(format_mapping(server.stats.to_dict(), args.format))
    return 0


def _flatten_numeric(value: Any, prefix: str = "") -> dict[str, float]:
    """Flatten a nested JSON result into dotted numeric leaves.

    Lists keep only dict elements keyed by a recognisable label field
    (``workload``/``segments``/...), so per-row sweep entries stay
    addressable without inventing positional names.
    """
    flat: dict[str, float] = {}
    if isinstance(value, dict):
        for key, item in value.items():
            flat.update(_flatten_numeric(item, f"{prefix}{key}."))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            label = None
            if isinstance(item, dict):
                for field in ("workload", "segments", "mode", "name"):
                    if field in item:
                        label = f"{field}={item[field]}"
                        break
            flat.update(_flatten_numeric(item, f"{prefix}{label or index}."))
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        flat[prefix.rstrip(".")] = float(value)
    return flat


# ---------------------------------------------------------------------- #
# entry point
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ops console for the DAnA reproduction",
    )
    parser.add_argument(
        "--format",
        "-f",
        choices=OUTPUT_FORMATS,
        default="table",
        help="output format (default: table)",
    )

    def _accept_format(subparser: argparse.ArgumentParser) -> None:
        # Accept --format after the subcommand too; SUPPRESS keeps the
        # global value unless the flag is actually given here.
        subparser.add_argument(
            "--format",
            "-f",
            choices=OUTPUT_FORMATS,
            default=argparse.SUPPRESS,
            help="output format (default: table)",
        )

    sub = parser.add_subparsers(dest="command", required=True)

    runs = sub.add_parser("runs", help="list recorded runs (demo session)")
    runs.add_argument("--limit", type=int, default=None, help="show only the last N runs")
    _accept_format(runs)
    runs.set_defaults(func=cmd_runs)
    runs_sub = runs.add_subparsers(dest="runs_cmd")
    show = runs_sub.add_parser("show", help="one run's full record")
    show.add_argument("run_id", type=int)
    _accept_format(show)
    show.set_defaults(func=cmd_runs)

    trace = sub.add_parser(
        "trace", help="a run's persisted EXPLAIN ANALYZE statement trace"
    )
    trace.add_argument("run_id", type=int)
    _accept_format(trace)
    trace.set_defaults(func=cmd_trace)

    models = sub.add_parser("models", help="saved models (SHOW MODELS)")
    _accept_format(models)
    models.set_defaults(func=cmd_models)

    bench = sub.add_parser("bench", help="bench result headline numbers")
    bench.add_argument(
        "--result",
        default=str(DEFAULT_BENCH_RESULT),
        help="bench result JSON (default: repo BENCH_throughput.json)",
    )
    bench.add_argument(
        "--compare",
        nargs="?",
        const=str(DEFAULT_BENCH_RESULT),
        default=None,
        metavar="OTHER.json",
        help="second result file to diff against (no value: self-check "
        "against the default result)",
    )
    _accept_format(bench)
    bench.set_defaults(func=cmd_bench)

    serve = sub.add_parser("serve", help="demo prediction-server stats")
    serve.add_argument(
        "--stats", action="store_true", help="print ServingStats.to_dict()"
    )
    serve.add_argument(
        "--requests", type=int, default=64, help="demo requests to serve"
    )
    _accept_format(serve)
    serve.set_defaults(func=cmd_serve)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
