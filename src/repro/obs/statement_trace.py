"""Statement-scoped telemetry capture for ``EXPLAIN ANALYZE``.

:class:`StatementTrace` arms a *private* :class:`~repro.obs.telemetry.Telemetry`
session around exactly one statement execution.  Because
:class:`~repro.obs.telemetry.enable_telemetry` sessions compose, the
trace works both standalone and inside an already-armed outer session
(a test under ``enable_telemetry()``, a benchmark sweep): the outer
session keeps receiving every rollup via the absorb-on-exit path while
the trace holds the statement's own copy.  Child-process spans re-home
into the private session automatically — workers ship their exported
telemetry to the parent, which absorbs into whatever ``telemetry()``
returns, and inside the trace window that is the statement session.
"""

from __future__ import annotations

import time

from repro.obs.telemetry import Telemetry, enable_telemetry


class StatementTrace:
    """Capture spans and metrics for a single statement execution.

    Use as a context manager around the statement::

        trace = StatementTrace()
        with trace:
            result = executor.execute_plan(plan)
        rollup = trace.rollup()   # {"runtime.epoch": {"count": ..., "seconds": ...}, ...}

    Everything recorded is observational wall-clock data; running a
    statement inside a trace is bit-identical to running it bare.
    """

    def __init__(self) -> None:
        self.session = Telemetry()
        self.wall_seconds = 0.0
        self._guard: enable_telemetry | None = None
        self._started_s = 0.0

    def __enter__(self) -> "StatementTrace":
        self._guard = enable_telemetry(self.session)
        self._guard.__enter__()
        self._started_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_seconds = time.perf_counter() - self._started_s
        guard, self._guard = self._guard, None
        if guard is not None:
            guard.__exit__(exc_type, exc, tb)

    def rollup(self) -> dict:
        """Per-site span aggregates: ``{site: {"count", "seconds"}}``."""
        return self.session.tracer.rollup()

    def spans(self) -> list[dict]:
        """Every captured span as a JSON-friendly dict, in finish order."""
        return self.session.tracer.to_list()

    def metrics(self) -> dict:
        """Snapshot of the statement-scoped metrics registry."""
        return self.session.metrics.snapshot()

    def to_payload(self) -> dict:
        """JSON-friendly trace payload for persistence in the run registry."""
        return {
            "wall_seconds": self.wall_seconds,
            "rollup": self.rollup(),
            "spans": self.spans(),
            "metrics": self.metrics(),
        }
