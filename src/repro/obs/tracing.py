"""Named, nestable wall-clock spans for the instrumented execution stack.

A span is opened at one of the fixed instrumentation sites (see
:data:`SPAN_SITES`) and closed by the same thread; nesting is tracked
per-thread, so a ``runtime.epoch`` span opened by the driver thread
parents the ``cluster.segment.train`` spans its workers run *on that
thread* while concurrent threads keep independent stacks.  Finished
spans land in one process-wide list, exportable as a flat trace
(:meth:`SpanTracer.to_list`) or JSON (:meth:`SpanTracer.to_json`), and
roll up per site into ``{count, seconds}`` for run records.

Spans are wall-clock and **observational only**: they never contribute
to the schedule-derived cycle counters, which is what keeps a
telemetry-on run bit-identical to a telemetry-off run.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

#: the named span sites compiled into the stack, top layer to bottom.
#: (High-frequency queue-wait sites are histogram sites instead — see
#: :data:`repro.obs.metrics.HISTOGRAM_SITES`.)
SPAN_SITES = (
    "sql.execute",
    "runtime.epoch",
    "cluster.segment.train",
    "cluster.segment.merge",
    "serving.scorer.segment",
    "serving.server.batch",
    "hw.strider.page_walk",
    "hw.decode",
    "rdbms.wal.append",
    "core.refresh_model",
)


@dataclass
class Span:
    """One finished wall-clock span."""

    #: the instrumentation site that opened the span.
    name: str
    #: ``time.perf_counter()`` at open (process-relative seconds).
    start_s: float
    #: wall-clock duration in seconds.
    duration_s: float
    #: nesting depth on the opening thread (0 = top-level).
    depth: int = 0
    #: site name of the enclosing span on the same thread, if any.
    parent: str | None = None
    #: free-form per-span attributes (segment id, batch size, ...).
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Export as a plain dict for the flat trace list."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": dict(self.attrs),
        }


class _OpenSpan:
    """A started-but-unfinished span; opaque to instrumentation sites."""

    __slots__ = ("name", "start_s", "attrs", "parent", "depth")

    def __init__(
        self, name: str, start_s: float, attrs: dict, parent: "_OpenSpan | None"
    ) -> None:
        self.name = name
        self.start_s = start_s
        self.attrs = attrs
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1


class SpanTracer:
    """Collects finished spans from every thread of one telemetry session.

    ``start``/``finish`` must pair on the same thread (they do at every
    compiled-in site); the finished-span list itself is shared and
    lock-protected, so concurrent threads interleave safely.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def start(self, name: str, **attrs) -> _OpenSpan:
        """Open a span at site ``name``, nesting under the thread's top."""
        parent = getattr(self._local, "top", None)
        span = _OpenSpan(name, time.perf_counter(), attrs, parent)
        self._local.top = span
        return span

    def finish(self, open_span: _OpenSpan, **attrs) -> Span:
        """Close ``open_span``, merge late attrs, and record the result."""
        duration = time.perf_counter() - open_span.start_s
        if attrs:
            open_span.attrs.update(attrs)
        if getattr(self._local, "top", None) is open_span:
            self._local.top = open_span.parent
        span = Span(
            name=open_span.name,
            start_s=open_span.start_s,
            duration_s=duration,
            depth=open_span.depth,
            parent=open_span.parent.name if open_span.parent is not None else None,
            attrs=open_span.attrs,
        )
        with self._lock:
            self.spans.append(span)
        return span

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)

    def mark(self) -> int:
        """Current span count — a resume point for :meth:`rollup` slices."""
        with self._lock:
            return len(self.spans)

    def rollup(self, start: int = 0) -> dict[str, dict[str, float]]:
        """Per-site ``{count, seconds}`` over spans recorded since ``start``.

        ``start`` is a :meth:`mark` taken earlier, so a run recorder can
        roll up only the spans belonging to one train/score invocation.
        """
        with self._lock:
            window = self.spans[start:]
        rollup: dict[str, dict[str, float]] = {}
        for span in window:
            entry = rollup.setdefault(span.name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += span.duration_s
        return rollup

    def absorb(self, span_dicts: list[dict], **extra_attrs) -> None:
        """Append spans exported by another tracer (``to_list`` output).

        ``extra_attrs`` are merged into every absorbed span's attributes —
        the parent session tags worker-process spans with their segment id
        and pid so a merged trace stays attributable.  Start offsets are
        process-relative ``perf_counter`` values and are kept as-is.
        """
        absorbed = []
        for data in span_dicts:
            attrs = dict(data.get("attrs") or {})
            attrs.update(extra_attrs)
            absorbed.append(
                Span(
                    name=data["name"],
                    start_s=float(data["start_s"]),
                    duration_s=float(data["duration_s"]),
                    depth=int(data.get("depth", 0)),
                    parent=data.get("parent"),
                    attrs=attrs,
                )
            )
        with self._lock:
            self.spans.extend(absorbed)

    def to_list(self) -> list[dict]:
        """The flat trace: every finished span as a dict, in finish order."""
        with self._lock:
            spans = list(self.spans)
        return [span.to_dict() for span in spans]

    def to_json(self, indent: int | None = None) -> str:
        """The flat trace serialized as JSON."""
        return json.dumps(self.to_list(), indent=indent, default=str)
