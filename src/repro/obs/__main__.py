"""``python -m repro.obs`` — launch the ``repro`` ops console."""

import sys

from repro.obs.cli import main

if __name__ == "__main__":
    sys.exit(main())
