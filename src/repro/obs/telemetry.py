"""Telemetry arming: the module-global session and its hot-path accessor.

This module follows the exact discipline of
:mod:`repro.reliability.faults`: telemetry is **off by default with zero
hot-loop cost**.  Every instrumentation site compiled into the stack
does one module-global load plus an ``is None`` test::

    obs = telemetry()
    span = obs.span("serving.scorer.segment", segment=3) if obs is not None else None
    ...  # the work being timed
    if span is not None:
        obs.finish(span, tuples=n)

Arming is scoped to one ``with enable_telemetry():`` block.  Sessions
compose: arming a second session inside an armed one re-points the
global at the inner session for the duration of the inner block, and on
exit the inner session's export is absorbed back into the outer one, so
the outer session still sees every rollup while the inner block (a
statement-scoped trace, say) keeps its own private copy.  Sites fire
per page batch / chunk / epoch / micro-batch, never per tuple, and
record only wall-clock observations: a telemetry-on run is
bit-identical (models, predictions, schedule-derived counters) to a
telemetry-off run.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanTracer, _OpenSpan, Span


class Telemetry:
    """One telemetry session: a metrics registry plus a span tracer."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer()

    def span(self, name: str, **attrs) -> _OpenSpan:
        """Open a named span (delegates to the tracer)."""
        return self.tracer.start(name, **attrs)

    def finish(self, open_span: _OpenSpan, **attrs) -> Span:
        """Close an open span, recording late attributes."""
        return self.tracer.finish(open_span, **attrs)

    def export(self) -> dict:
        """Full session snapshot: ``{"metrics": ..., "spans": [...]}``."""
        return {
            "metrics": self.metrics.snapshot(),
            "spans": self.tracer.to_list(),
        }

    def absorb(self, exported: dict, **extra_attrs) -> None:
        """Merge another session's :meth:`export` into this one.

        Worker processes arm their own local session per training window
        and ship the export back; the parent absorbs it here so one merged
        session describes the whole process-parallel run.  ``extra_attrs``
        tag every absorbed span (segment id, worker pid).
        """
        self.metrics.absorb(exported.get("metrics") or {})
        self.tracer.absorb(exported.get("spans") or [], **extra_attrs)


#: the armed session; ``None`` (the default) means every site is a single
#: is-None check and nothing else.
_ACTIVE: Telemetry | None = None
_ARM_LOCK = threading.Lock()


def telemetry() -> Telemetry | None:
    """The armed telemetry session, or ``None`` when telemetry is off.

    This is the only call compiled into the subsystems; with telemetry
    off it is one global load, and the caller's ``is None`` test skips
    everything else.
    """
    return _ACTIVE


class enable_telemetry:
    """Context manager arming a :class:`Telemetry` session.

    Yields the session so callers can read metrics and spans afterwards.
    Sessions compose rather than conflict: entering while another
    session is armed shadows the outer session for the duration of the
    block, and on exit the inner session's export is absorbed into the
    outer one.  The outer session therefore observes the union of
    everything fired while it was armed (directly or via an inner
    session), while the inner block keeps a private copy — this is what
    lets :class:`~repro.obs.statement_trace.StatementTrace` capture one
    statement inside an already-instrumented test or benchmark.
    """

    def __init__(self, session: Telemetry | None = None) -> None:
        self.session = session if session is not None else Telemetry()
        self._outer: Telemetry | None = None

    def __enter__(self) -> Telemetry:
        global _ACTIVE
        with _ARM_LOCK:
            self._outer = _ACTIVE
            _ACTIVE = self.session
        return self.session

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        with _ARM_LOCK:
            _ACTIVE = self._outer
        if self._outer is not None and self._outer is not self.session:
            self._outer.absorb(self.session.export())
        self._outer = None
