"""Telemetry arming: the module-global session and its hot-path accessor.

This module follows the exact discipline of
:mod:`repro.reliability.faults`: telemetry is **off by default with zero
hot-loop cost**.  Every instrumentation site compiled into the stack
does one module-global load plus an ``is None`` test::

    obs = telemetry()
    span = obs.span("serving.scorer.segment", segment=3) if obs is not None else None
    ...  # the work being timed
    if span is not None:
        obs.finish(span, tuples=n)

Arming is exclusive and scoped to one ``with enable_telemetry():``
block — nesting a second session raises, so two instrumented tests
cannot silently interleave spans.  Sites fire per page batch / chunk /
epoch / micro-batch, never per tuple, and record only wall-clock
observations: a telemetry-on run is bit-identical (models, predictions,
schedule-derived counters) to a telemetry-off run.
"""

from __future__ import annotations

import threading

from repro.exceptions import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanTracer, _OpenSpan, Span


class Telemetry:
    """One telemetry session: a metrics registry plus a span tracer."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer()

    def span(self, name: str, **attrs) -> _OpenSpan:
        """Open a named span (delegates to the tracer)."""
        return self.tracer.start(name, **attrs)

    def finish(self, open_span: _OpenSpan, **attrs) -> Span:
        """Close an open span, recording late attributes."""
        return self.tracer.finish(open_span, **attrs)

    def export(self) -> dict:
        """Full session snapshot: ``{"metrics": ..., "spans": [...]}``."""
        return {
            "metrics": self.metrics.snapshot(),
            "spans": self.tracer.to_list(),
        }

    def absorb(self, exported: dict, **extra_attrs) -> None:
        """Merge another session's :meth:`export` into this one.

        Worker processes arm their own local session per training window
        and ship the export back; the parent absorbs it here so one merged
        session describes the whole process-parallel run.  ``extra_attrs``
        tag every absorbed span (segment id, worker pid).
        """
        self.metrics.absorb(exported.get("metrics") or {})
        self.tracer.absorb(exported.get("spans") or [], **extra_attrs)


#: the armed session; ``None`` (the default) means every site is a single
#: is-None check and nothing else.
_ACTIVE: Telemetry | None = None
_ARM_LOCK = threading.Lock()


def telemetry() -> Telemetry | None:
    """The armed telemetry session, or ``None`` when telemetry is off.

    This is the only call compiled into the subsystems; with telemetry
    off it is one global load, and the caller's ``is None`` test skips
    everything else.
    """
    return _ACTIVE


class enable_telemetry:
    """Context manager arming a :class:`Telemetry` session.

    Yields the session so callers can read metrics and spans afterwards.
    Arming is exclusive: nesting raises, mirroring
    :class:`~repro.reliability.faults.inject_faults`.
    """

    def __init__(self, session: Telemetry | None = None) -> None:
        self.session = session if session is not None else Telemetry()

    def __enter__(self) -> Telemetry:
        global _ACTIVE
        with _ARM_LOCK:
            if _ACTIVE is not None:
                raise ConfigurationError(
                    "a telemetry session is already armed; sessions cannot nest"
                )
            _ACTIVE = self.session
        return self.session

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        with _ARM_LOCK:
            _ACTIVE = None
