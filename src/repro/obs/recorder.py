"""Run history persisted in the database's own heap tables.

Every recorded :meth:`DAnA.train <repro.core.dana.DAnA.train>`,
:meth:`DAnA.score_table <repro.core.dana.DAnA.score_table>` or bench
invocation becomes:

* one row in the ``repro_runs`` heap table — the numeric headline
  (run id, kind, segments, epochs, tuples, schedule-derived cycles,
  fault/retry counts, wall milliseconds);
* one row per metric in ``repro_run_metrics`` — every schedule-derived
  counter and per-site span rollup, keyed ``(run_id, metric_id)`` with
  metric names interned in the catalog (heap pages only hold fixed-width
  numeric columns);
* one :class:`~repro.rdbms.catalog.RunEntry` in the catalog for the
  strings a numeric scan cannot reconstruct (labels, config, git rev,
  the fired-fault log, retry counters).

The database is its own telemetry backend: both tables are ordinary
heap files readable through the SQL executor (``SELECT * FROM
repro_runs``), and the ``repro`` CLI is just a client of this module.
"""

from __future__ import annotations

import datetime
import subprocess
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.obs.telemetry import telemetry
from repro.rdbms.catalog import RunEntry
from repro.rdbms.types import ColumnType, Schema
from repro.reliability.faults import active_injector
from repro.reliability.retry import RetryStats

#: heap table holding one headline row per recorded run.
RUNS_TABLE = "repro_runs"
#: heap table holding one ``(run_id, metric_id, value)`` row per metric.
RUN_METRICS_TABLE = "repro_run_metrics"

#: run kinds, in the integer encoding used by the ``kind`` column.
#: ``"refresh"`` is appended last so pre-existing integer encodings in
#: persisted run rows keep decoding to the same kinds.
RUN_KINDS = ("train", "score", "bench", "refresh")

#: schema of :data:`RUNS_TABLE`.
RUNS_SCHEMA = Schema.build(
    [
        ("run_id", ColumnType.INT4),
        ("kind", ColumnType.INT4),
        ("segments", ColumnType.INT4),
        ("epochs", ColumnType.INT4),
        ("tuples", ColumnType.INT8),
        ("cycles", ColumnType.INT8),
        ("faults", ColumnType.INT4),
        ("retries", ColumnType.INT4),
        ("wall_ms", ColumnType.FLOAT8),
    ]
)

#: schema of :data:`RUN_METRICS_TABLE`.
RUN_METRICS_SCHEMA = Schema.build(
    [
        ("run_id", ColumnType.INT4),
        ("metric_id", ColumnType.INT4),
        ("value", ColumnType.FLOAT8),
    ]
)

_GIT_REV: str | None = None


def git_revision() -> str:
    """``git rev-parse --short HEAD`` of the repo, cached ("" off-repo)."""
    global _GIT_REV
    if _GIT_REV is None:
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True,
                text=True,
                timeout=10,
            )
            _GIT_REV = proc.stdout.strip() if proc.returncode == 0 else ""
        except (OSError, subprocess.SubprocessError):
            _GIT_REV = ""
    return _GIT_REV


@dataclass
class RunWatch:
    """Marks captured at run start, resolved into a record at run end."""

    #: ``time.perf_counter()`` at :meth:`RunRecorder.begin`.
    started_s: float
    #: wall-clock ISO timestamp at begin.
    started_at: str
    #: span count of the armed tracer at begin (0 when telemetry is off).
    span_mark: int = 0
    #: fired-fault count of the armed injector at begin (0 when off).
    fault_mark: int = 0


class RunRecorder:
    """Persists run records into one database's heap tables + catalog."""

    def __init__(self, database) -> None:
        self.database = database
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def begin(self) -> RunWatch:
        """Snapshot the clocks and telemetry/fault marks at run start."""
        obs = telemetry()
        injector = active_injector()
        return RunWatch(
            started_s=time.perf_counter(),
            started_at=datetime.datetime.now(datetime.timezone.utc).isoformat(),
            span_mark=obs.tracer.mark() if obs is not None else 0,
            fault_mark=len(injector.fired) if injector is not None else 0,
        )

    def record_train(
        self,
        udf: str,
        table: str,
        config: Mapping[str, Any],
        result,
        watch: RunWatch,
        algorithm: str = "",
        model_name: str = "",
        model_version: int | None = None,
    ) -> RunEntry:
        """Record one completed ``DAnA.train`` invocation.

        ``result`` is either an ``AcceleratorRunResult`` (single engine)
        or a ``ShardedRunResult`` (segments); both expose the aggregate
        ``engine_stats`` / ``access_stats`` surface.
        """
        cluster = getattr(result, "cluster", None)
        training = getattr(result, "training", None)
        epochs = training.epochs_run if training is not None else result.epochs_run
        converged = training.converged if training is not None else result.converged
        engine = result.engine_stats
        access = result.access_stats
        retry = cluster.retry if cluster is not None else result.retry_stats
        metrics = {
            "converged": float(bool(converged)),
            "engine.tuples_processed": engine.tuples_processed,
            "engine.batches_processed": engine.batches_processed,
            "engine.update_rule_cycles": engine.update_rule_cycles,
            "engine.merge_cycles": engine.merge_cycles,
            "engine.post_merge_cycles": engine.post_merge_cycles,
            "engine.convergence_cycles": engine.convergence_cycles,
            "engine.total_cycles": engine.total_cycles,
        }
        metrics.update(self._access_metrics(access))
        if cluster is not None:
            metrics["cluster.merges_performed"] = cluster.merges_performed
            metrics["cluster.cross_merge_cycles"] = cluster.cross_merge_cycles
        return self._record(
            kind="train",
            label=udf,
            table_name=table,
            segments=cluster.segments if cluster is not None else 1,
            epochs=epochs,
            tuples=result.tuples_extracted,
            cycles=engine.total_cycles,
            metrics=metrics,
            config=config,
            retry=retry,
            watch=watch,
            algorithm=algorithm,
            model_name=model_name,
            model_version=model_version,
        )

    def record_refresh(
        self,
        model_name: str,
        table: str,
        config: Mapping[str, Any],
        result,
        watch: RunWatch,
        algorithm: str = "",
        model_version: int | None = None,
    ) -> RunEntry:
        """Record one completed ``DAnA.refresh_model`` invocation.

        ``result`` is the warm-start ``AcceleratorRunResult`` the refresh
        trained over the pages past the model's watermark (no-op refreshes
        record nothing — there was no run).
        """
        engine = result.engine_stats
        metrics = {
            "converged": float(bool(result.training.converged)),
            "engine.tuples_processed": engine.tuples_processed,
            "engine.batches_processed": engine.batches_processed,
            "engine.update_rule_cycles": engine.update_rule_cycles,
            "engine.merge_cycles": engine.merge_cycles,
            "engine.post_merge_cycles": engine.post_merge_cycles,
            "engine.convergence_cycles": engine.convergence_cycles,
            "engine.total_cycles": engine.total_cycles,
        }
        metrics.update(self._access_metrics(result.access_stats))
        return self._record(
            kind="refresh",
            label=model_name,
            table_name=table,
            segments=1,
            epochs=result.training.epochs_run,
            tuples=result.tuples_extracted,
            cycles=engine.total_cycles,
            metrics=metrics,
            config=config,
            retry=result.retry_stats,
            watch=watch,
            algorithm=algorithm,
            model_name=model_name,
            model_version=model_version,
        )

    def record_score(
        self,
        table: str,
        config: Mapping[str, Any],
        result,
        watch: RunWatch,
        algorithm: str = "",
        model_name: str = "",
        model_version: int | None = None,
    ) -> RunEntry:
        """Record one completed ``DAnA.score_table`` invocation.

        ``result`` is a :class:`~repro.serving.scorer.ScoreResult`.
        """
        inference = result.inference_stats
        metrics = {
            "inference.tuples_scored": inference.tuples_scored,
            "inference.batches_scored": inference.batches_scored,
            "inference.forward_cycles": inference.forward_cycles,
            "score.critical_path_cycles": result.critical_path_cycles,
            "score.batch_size": result.batch_size,
            "score.stream": float(bool(result.stream)),
        }
        return self._record(
            kind="score",
            label=table,
            table_name=table,
            segments=len(result.segments),
            epochs=0,
            tuples=result.tuples_scored,
            cycles=result.critical_path_cycles,
            metrics=metrics,
            config=config,
            retry=result.retry,
            watch=watch,
            algorithm=algorithm,
            model_name=model_name,
            model_version=model_version,
        )

    def record_bench(
        self,
        name: str,
        metrics: Mapping[str, float],
        watch: RunWatch,
        config: Mapping[str, Any] | None = None,
    ) -> RunEntry:
        """Record one bench sweep: free-form numeric metrics under a name."""
        return self._record(
            kind="bench",
            label=name,
            table_name="",
            segments=0,
            epochs=0,
            tuples=int(metrics.get("tuples", 0)),
            cycles=int(metrics.get("cycles", 0)),
            metrics=dict(metrics),
            config=config or {},
            retry=None,
            watch=watch,
        )

    # ------------------------------------------------------------------ #
    # read-back (heap tables joined with the catalog)
    # ------------------------------------------------------------------ #
    def runs(self) -> list[dict]:
        """Every recorded run: heap-table headline + catalog strings.

        The numeric columns come from a real scan of ``repro_runs``; the
        strings (kind, labels, git rev) are joined from the catalog entry
        keyed by the scanned ``run_id``.
        """
        database = self.database
        if not database.catalog.has_table(RUNS_TABLE):
            return []
        rows = database.table(RUNS_TABLE).read_all(database.buffer_pool)
        records = []
        for row in rows:
            entry = database.catalog.run(int(row[0]))
            records.append(
                {
                    "run_id": int(row[0]),
                    "kind": RUN_KINDS[int(row[1])],
                    "label": entry.label,
                    "model": self._model_label(entry),
                    "algorithm": entry.algorithm,
                    "segments": int(row[2]),
                    "epochs": int(row[3]),
                    "tuples": int(row[4]),
                    "cycles": int(row[5]),
                    "faults": int(row[6]),
                    "retries": int(row[7]),
                    "wall_ms": float(row[8]),
                    "git_rev": entry.git_rev,
                    "started_at": entry.started_at,
                }
            )
        return records

    def run_detail(self, run_id: int) -> dict:
        """One run's full record: headline, named metrics, faults, retry.

        The metrics come from a filtered scan of ``repro_run_metrics``
        with the ids decoded through the catalog's name registry.
        """
        database = self.database
        summaries = [r for r in self.runs() if r["run_id"] == run_id]
        entry = database.catalog.run(run_id)  # raises on unknown ids
        summary = summaries[0] if summaries else {"run_id": run_id}
        names = database.catalog.run_metric_names()
        metrics: dict[str, float] = {}
        if database.catalog.has_table(RUN_METRICS_TABLE):
            scan = database.table(RUN_METRICS_TABLE).read_all(database.buffer_pool)
            for row in scan:
                if int(row[0]) != run_id:
                    continue
                metrics[names.get(int(row[1]), f"metric_{int(row[1])}")] = float(
                    row[2]
                )
        return {
            **summary,
            "config": dict(entry.config),
            "metrics": dict(sorted(metrics.items())),
            "faults": list(entry.faults),
            "retry": dict(entry.retry),
            "trace": dict(entry.trace),
        }

    def attach_trace(self, run_id: int, trace: dict) -> None:
        """Attach an ``EXPLAIN ANALYZE`` statement trace to a recorded run.

        The payload (rendered plan lines, operator tree with
        predicted-vs-actual costs, span dump) lands on the run's catalog
        entry, so ``repro trace <run_id>`` and :meth:`run_detail` can
        replay the statement's execution after the fact.

        Raises:
            CatalogError: when no run with ``run_id`` is recorded.
        """
        entry = self.database.catalog.run(run_id)  # raises on unknown ids
        with self._lock:
            entry.trace = dict(trace)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _record(
        self,
        kind: str,
        label: str,
        table_name: str,
        segments: int,
        epochs: int,
        tuples: int,
        cycles: int,
        metrics: dict[str, float],
        config: Mapping[str, Any],
        retry: RetryStats | None,
        watch: RunWatch,
        algorithm: str = "",
        model_name: str = "",
        model_version: int | None = None,
    ) -> RunEntry:
        wall_seconds = time.perf_counter() - watch.started_s
        obs = telemetry()
        if obs is not None:
            for site, rollup in obs.tracer.rollup(watch.span_mark).items():
                metrics[f"span.{site}.count"] = float(rollup["count"])
                metrics[f"span.{site}.seconds"] = float(rollup["seconds"])
        injector = active_injector()
        fired = (
            [
                {"site": f.site, "call": f.call, "kind": f.kind}
                for f in injector.fired[watch.fault_mark :]
            ]
            if injector is not None
            else []
        )
        retry_dict = (
            {
                "attempts": retry.attempts,
                "retries": retry.retries,
                "faults": retry.faults,
                "redistributed": retry.redistributed,
            }
            if retry is not None
            else {}
        )
        metrics["wall_seconds"] = wall_seconds
        with self._lock:
            catalog = self.database.catalog
            run_id = catalog.next_run_id()
            entry = RunEntry(
                run_id=run_id,
                kind=kind,
                label=label,
                table_name=table_name,
                model_name=model_name,
                model_version=model_version,
                algorithm=algorithm,
                config=dict(config),
                git_rev=git_revision(),
                started_at=watch.started_at,
                wall_seconds=wall_seconds,
                faults=fired,
                retry=retry_dict,
            )
            catalog.register_run(entry)
            self._append(
                RUNS_TABLE,
                RUNS_SCHEMA,
                [
                    [
                        run_id,
                        RUN_KINDS.index(kind),
                        int(segments),
                        int(epochs),
                        int(tuples),
                        int(cycles),
                        len(fired),
                        int(retry_dict.get("retries", 0) or 0),
                        wall_seconds * 1e3,
                    ]
                ],
            )
            metric_rows = [
                [run_id, catalog.run_metric_id(name), float(value)]
                for name, value in sorted(metrics.items())
            ]
            self._append(RUN_METRICS_TABLE, RUN_METRICS_SCHEMA, metric_rows)
        return entry

    @staticmethod
    def _access_metrics(access) -> dict[str, float]:
        """Flatten an ``AccessEngineStats`` into named run metrics."""
        return {
            "access.pages_processed": access.pages_processed,
            "access.tuples_extracted": access.tuples_extracted,
            "access.bytes_transferred": access.bytes_transferred,
            "access.axi_cycles": access.axi_cycles,
            "access.strider_cycles_total": access.strider_cycles_total,
            "access.strider_cycles_critical": access.strider_cycles_critical,
            "access.shifter_cycles": access.shifter_cycles,
        }

    def _append(self, table_name: str, schema: Schema, rows: list[list]) -> None:
        database = self.database
        if not database.catalog.has_table(table_name):
            heapfile = database.create_table(table_name, schema)
        else:
            heapfile = database.table(table_name)
        heapfile.bulk_load(rows)
        database.catalog.update_tuple_count(table_name, heapfile.tuple_count)

    @staticmethod
    def _model_label(entry: RunEntry) -> str:
        if not entry.model_name:
            return ""
        if entry.model_version is None:
            return entry.model_name
        return f"{entry.model_name}:v{entry.model_version}"
