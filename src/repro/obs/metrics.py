"""Metric primitives and the process-wide metrics registry.

Three metric shapes cover every instrumentation site in the stack:

* :class:`Counter` — a monotonic count (requests served, batches scored);
* :class:`Gauge` — a last-written value (queue depth, active segments);
* :class:`Histogram` — a fixed-bucket distribution of observations, with
  an optional bounded raw-sample window so percentiles stay *exact* over
  the most recent ``window`` observations (this is what lets
  :class:`~repro.serving.microbatch.ServingStats` keep its historical
  p50/p99 semantics while moving onto the shared histogram).

All metrics are thread-safe: serving worker threads, the streaming
``BatchSource`` producer and segment-pool threads all observe into the
same registry.  Everything here is *observational* — wall-clock numbers
never feed back into the schedule-derived cycle counters, so a
telemetry-on run stays bit-identical to a telemetry-off run.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import deque
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

#: the named histogram instrumentation sites compiled into the stack.
#: High-frequency *wait* sites (queue put/get per chunk or request) record
#: into shared histograms instead of emitting a span per event — a span
#: object per chunk would dominate the armed cost of the streaming paths.
HISTOGRAM_SITES = (
    "runtime.batch_source.produce",
    "runtime.batch_source.consume",
    "serving.server.queue",
    "serving.server.latency",
)

#: default bucket upper bounds (seconds) for duration histograms — spans
#: in this stack range from sub-millisecond micro-batches to multi-second
#: training runs.
DEFAULT_SECONDS_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Counter:
    """A monotonic counter; :meth:`add` only accepts non-negative deltas."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def add(self, amount: float = 1.0) -> None:
        """Increment by ``amount`` (must be >= 0; counters never go down)."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot be decremented (got {amount!r})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        return self._value

    def to_dict(self) -> dict:
        """Export as ``{"type", "value"}`` for JSON snapshots."""
        return {"type": "counter", "value": self._value}


class Gauge:
    """A last-written value (no history, no direction constraint)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        """The most recently written value (0.0 before any write)."""
        return self._value

    def to_dict(self) -> dict:
        """Export as ``{"type", "value"}`` for JSON snapshots."""
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket histogram with an optional exact-percentile window.

    ``buckets`` are strictly-increasing upper bounds; one implicit
    overflow bucket catches everything above the last bound.  When
    ``window`` is set, the most recent ``window`` raw observations are
    also retained in a bounded deque and :meth:`percentile` computes the
    *exact* ``np.percentile`` over them — the same math (and the same
    65536-sample window) ``ServingStats`` used before the refactor.
    Without a window, percentiles are estimated by linear interpolation
    inside the bucket that contains the requested rank.
    """

    __slots__ = (
        "name",
        "buckets",
        "bucket_counts",
        "count",
        "sum",
        "min",
        "max",
        "samples",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
        window: int | None = None,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(f"histogram {name!r} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be strictly increasing, got {bounds}"
            )
        if window is not None and window < 1:
            raise ConfigurationError(
                f"histogram {name!r} sample window must be >= 1, got {window!r}"
            )
        self.name = name
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: deque[float] | None = (
            deque(maxlen=window) if window is not None else None
        )
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        # bisect, not np.searchsorted: the bucket list is tiny and this
        # runs per chunk / per request on armed hot paths, where the numpy
        # call overhead alone would dominate the observation cost.
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if self.samples is not None:
                self.samples.append(value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Record every observation in ``values`` (one lock acquisition).

        Bucketing is vectorized, so instrumentation sites that buffer
        observations locally (the batch-source wait sites) can flush a
        few hundred of them for the cost of a couple of ``observe`` calls.
        """
        batch = np.asarray(
            values if isinstance(values, (list, tuple)) else list(values),
            dtype=np.float64,
        )
        if batch.size == 0:
            return
        indices = np.searchsorted(self.buckets, batch, side="left")
        increments = np.bincount(indices, minlength=len(self.bucket_counts))
        with self._lock:
            for index, increment in enumerate(increments):
                if increment:
                    self.bucket_counts[index] += int(increment)
            self.count += int(batch.size)
            self.sum += float(batch.sum())
            low, high = float(batch.min()), float(batch.max())
            if low < self.min:
                self.min = low
            if high > self.max:
                self.max = high
            if self.samples is not None:
                self.samples.extend(batch.tolist())

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, percentile: float) -> float:
        """The ``percentile``-th percentile of the observations.

        Exact (``np.percentile``) over the retained sample window when one
        is configured; otherwise linearly interpolated within the owning
        bucket.  Returns 0.0 when nothing has been observed.
        """
        with self._lock:
            if self.count == 0:
                return 0.0
            if self.samples is not None:
                window = np.fromiter(self.samples, dtype=np.float64)
                return float(np.percentile(window, percentile))
            return self._estimate_locked(percentile)

    def _estimate_locked(self, percentile: float) -> float:
        rank = (percentile / 100.0) * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                lower = self.buckets[index - 1] if index > 0 else min(self.min, 0.0)
                upper = (
                    self.buckets[index]
                    if index < len(self.buckets)
                    else max(self.max, self.buckets[-1])
                )
                fraction = (rank - previous) / bucket_count if bucket_count else 0.0
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.max if self.count else 0.0

    def to_dict(self) -> dict:
        """Export counts, moments and bucket occupancy for JSON snapshots."""
        with self._lock:
            return {
                "type": "histogram",
                "count": self.count,
                "sum": self.sum,
                "mean": self.sum / self.count if self.count else 0.0,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0,
                "buckets": list(self.buckets),
                "bucket_counts": list(self.bucket_counts),
            }


class MetricsRegistry:
    """Get-or-create registry of named metrics for one telemetry session.

    A name is permanently bound to the first metric type created under it;
    asking for the same name as a different type raises, which catches
    site typos early.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name, kind, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ConfigurationError(
                    f"metric {name!r} is already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """The monotonic counter registered under ``name`` (creating it)."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (creating it)."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
        window: int | None = None,
    ) -> Histogram:
        """The histogram registered under ``name`` (creating it).

        ``buckets``/``window`` only apply on first creation; later lookups
        return the existing histogram unchanged.
        """
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets=buckets, window=window)
        )

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def absorb(self, snapshot: dict) -> None:
        """Merge another registry's :meth:`snapshot` into this one.

        Counters add their value, gauges take the snapshot's last-written
        value, histograms merge bucket occupancy and moments (the exact
        raw-sample window is not carried across — percentiles over absorbed
        data fall back to bucket interpolation).  Used to fold a worker
        *process*'s per-window telemetry into the parent session.
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).add(float(data.get("value", 0.0)))
            elif kind == "gauge":
                self.gauge(name).set(float(data.get("value", 0.0)))
            elif kind == "histogram":
                histogram = self.histogram(name, buckets=data["buckets"])
                if tuple(data["buckets"]) != histogram.buckets:
                    raise ConfigurationError(
                        f"histogram {name!r} bucket bounds differ between "
                        "sessions; cannot absorb"
                    )
                count = int(data.get("count", 0))
                if count == 0:
                    continue
                with histogram._lock:
                    for index, increment in enumerate(data["bucket_counts"]):
                        histogram.bucket_counts[index] += int(increment)
                    histogram.count += count
                    histogram.sum += float(data.get("sum", 0.0))
                    histogram.min = min(histogram.min, float(data["min"]))
                    histogram.max = max(histogram.max, float(data["max"]))
            else:
                raise ConfigurationError(
                    f"cannot absorb metric {name!r} of unknown type {kind!r}"
                )

    def snapshot(self) -> dict:
        """Export every metric as ``{name: metric.to_dict()}``."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metric.to_dict() for name, metric in sorted(metrics.items())}
