"""Fault-tolerant runtime: deterministic fault injection + bounded retry.

The reliability layer extends the repo's oracle discipline to failures:
because every subsystem is deterministic, a run that retries (or
redistributes pages) after an injected transient fault must produce
**bit-identical** models, predictions and schedule-derived counters to
the fault-free run.  :mod:`repro.reliability.faults` provides the seeded
:class:`FaultPlan`/:class:`FaultInjector` pair with named injection sites
compiled into the Strider page walk, the
:class:`~repro.runtime.BatchSource` producer, segment-worker epochs and
both scoring paths; :mod:`repro.reliability.retry` provides the
:class:`RetryPolicy` those paths recover with.
"""

from repro.reliability.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultInjector,
    FaultLogEntry,
    FaultPlan,
    FaultSpec,
    fault_point,
    inject_faults,
)
from repro.reliability.retry import DEGRADATION_MODES, RetryPolicy, RetryStats

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "DEGRADATION_MODES",
    "FaultInjector",
    "FaultLogEntry",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "RetryStats",
    "fault_point",
    "inject_faults",
]
