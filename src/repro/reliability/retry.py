"""Bounded retry with exponential backoff, seeded jitter and a deadline.

:class:`RetryPolicy` is the one retry loop shared by every recoverable
path: segment training windows, per-segment scan-and-score, and the
:class:`~repro.runtime.BatchSource` producer restart.  It retries only
:class:`~repro.exceptions.TransientError` (any other exception is a real
bug and propagates immediately), sleeps an exponentially growing backoff
with **seeded** jitter (so a chaos run's sleep schedule is reproducible,
matching the repo's determinism discipline), and gives up by raising
:class:`~repro.exceptions.RetryExhaustedError` once attempts or the
deadline run out.

Determinism under retry is the caller's contract: every attempt must
start from a clean slate (fresh accelerator/engine, restored RNG state,
reset counters), so the *successful* attempt is bit-identical to a
fault-free run.  :meth:`RetryPolicy.run` takes a ``reset`` callback and
invokes it before each re-attempt to make that contract explicit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

import numpy as np

from repro.exceptions import ConfigurationError, RetryExhaustedError, TransientError

T = TypeVar("T")

#: degradation modes a retry-driven run may request once attempts run out.
DEGRADATION_MODES = ("fail", "redistribute")


@dataclass
class RetryStats:
    """Counters for one retry-supervised run (merged into run results)."""

    #: total attempts across all supervised calls (>= calls on success).
    attempts: int = 0
    #: re-attempts after a transient fault (0 on a fault-free run).
    retries: int = 0
    #: transient faults observed (== retries unless attempts exhausted).
    faults: int = 0
    #: work units permanently failed and redistributed to survivors.
    redistributed: int = 0

    def merge(self, other: "RetryStats") -> None:
        """Accumulate another run's counters into this one."""
        self.attempts += other.attempts
        self.retries += other.retries
        self.faults += other.faults
        self.redistributed += other.redistributed


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative retry configuration (validated fail-fast)."""

    #: most attempts per supervised call (1 = no retry).
    max_attempts: int = 3
    #: backoff before the first re-attempt, seconds (grows by
    #: :attr:`multiplier` each further attempt).  The simulated runtime
    #: defaults to 0 so chaos tests never actually sleep.
    backoff_s: float = 0.0
    #: exponential backoff growth factor.
    multiplier: float = 2.0
    #: jitter fraction: each sleep is scaled by ``1 + U(0, jitter)`` drawn
    #: from a generator seeded with :attr:`seed` (deterministic schedule).
    jitter: float = 0.0
    #: wall-clock budget across all attempts, seconds (``None`` = none).
    deadline_s: float | None = None
    #: jitter RNG seed.
    seed: int = 0
    #: what a driver should do with a permanently-failed work unit:
    #: ``"fail"`` raises; ``"redistribute"`` reassigns its pages to the
    #: surviving segments (scan-and-score only).
    degradation: str = "fail"

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be an integer >= 1, got {self.max_attempts!r}"
            )
        if self.backoff_s < 0:
            raise ConfigurationError(
                f"backoff_s must be >= 0, got {self.backoff_s!r}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier!r}"
            )
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter!r}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be positive (or None), got {self.deadline_s!r}"
            )
        if self.degradation not in DEGRADATION_MODES:
            raise ConfigurationError(
                f"unknown degradation mode {self.degradation!r}; "
                f"expected one of {DEGRADATION_MODES}"
            )

    def sleeps(self) -> "_SleepSchedule":
        """The seeded backoff schedule for one supervised call."""
        return _SleepSchedule(self)

    def run(
        self,
        fn: Callable[[], T],
        stats: RetryStats | None = None,
        reset: Callable[[], None] | None = None,
        label: str = "operation",
    ) -> T:
        """Call ``fn`` until it succeeds, retrying transient faults.

        Args:
            fn: the work; each invocation must be a full, clean attempt.
            stats: counters to book attempts/retries/faults into.
            reset: called before every re-attempt to restore pre-attempt
                state (counters, RNG, sources) so the successful attempt
                is bit-identical to a fault-free run.
            label: human-readable name used in the exhaustion error.

        Returns:
            ``fn()``'s result from the first successful attempt.

        Raises:
            RetryExhaustedError: when every permitted attempt raised a
                :class:`~repro.exceptions.TransientError`, or the deadline
                expired; chains the last transient fault.
        """
        own = stats if stats is not None else RetryStats()
        schedule = self.sleeps()
        started = time.monotonic()
        last: TransientError | None = None
        for attempt in range(1, self.max_attempts + 1):
            if attempt > 1 and reset is not None:
                reset()
            own.attempts += 1
            try:
                return fn()
            except TransientError as error:
                own.faults += 1
                last = error
                if attempt == self.max_attempts:
                    break
                if (
                    self.deadline_s is not None
                    and time.monotonic() - started >= self.deadline_s
                ):
                    raise RetryExhaustedError(
                        f"{label} missed its {self.deadline_s}s retry deadline "
                        f"after {attempt} attempt(s)"
                    ) from error
                own.retries += 1
                schedule.sleep(attempt)
        raise RetryExhaustedError(
            f"{label} failed on all {self.max_attempts} attempt(s)"
        ) from last


@dataclass
class _SleepSchedule:
    """Seeded backoff sequence for one supervised call."""

    policy: RetryPolicy
    _rng: np.random.Generator = field(init=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.policy.seed)

    def sleep(self, attempt: int) -> None:
        """Sleep the backoff for the given (1-based) failed attempt."""
        base = self.policy.backoff_s * (self.policy.multiplier ** (attempt - 1))
        if self.policy.jitter:
            base *= 1.0 + float(self._rng.uniform(0.0, self.policy.jitter))
        if base > 0:
            time.sleep(base)
