"""Deterministic, seeded fault injection for the simulated runtime.

A :class:`FaultPlan` is a declarative schedule of faults keyed by **named
injection sites** — fixed strings compiled into the subsystems (the bulk
Strider page walk, the :class:`~repro.runtime.BatchSource` producer,
:class:`~repro.cluster.segment_worker.SegmentWorker` epochs, and the two
scoring paths).  Each entry says *"on the k-th call at this site, raise a
:class:`~repro.exceptions.TransientError` (or sleep)"*, so a chaos run is
exactly reproducible: the same plan against the same workload fires the
same faults at the same points, every time.

Injection is **off by default with zero hot-loop cost**: every site is a
single ``if _ACTIVE is not None`` check on a module global (sites fire per
page batch / chunk / epoch / micro-batch, never per tuple).  Tests arm a
plan for one ``with inject_faults(plan):`` block; nothing else in the
process observes it afterwards.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from repro.exceptions import ConfigurationError, TransientError

#: the named injection sites compiled into the runtime.  A plan may only
#: schedule faults at these points.
FAULT_SITES = (
    "hw.strider.page_walk",
    "runtime.batch_source.producer",
    "cluster.segment_worker.epoch",
    "serving.scorer.segment",
    "serving.inference.score",
    # Fired twice per WAL append: once *before* the record becomes durable
    # (a crash here loses the record) and once *after* durability but
    # *before* the heap apply (a crash here is recovered by replay).  The
    # double fire is what lets tests/test_wal_recovery.py kill the writer
    # at every WAL-record boundary.
    "rdbms.wal.append",
)

#: fault kinds a plan entry may request at its site.  ``"exit"`` terminates
#: the evaluating *process* without cleanup (``os._exit``) — only
#: meaningful inside a worker process of the ``execution="processes"``
#: strategy, where the parent observes the death as a
#: :class:`~repro.exceptions.TransientError` and respawns the worker.
FAULT_KINDS = ("error", "latency", "exit")

#: process exit code used by ``kind="exit"`` faults (distinct from crashes).
FAULT_EXIT_CODE = 23


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: *at this site, on the k-th call, do this*."""

    #: the named injection site (one of :data:`FAULT_SITES`).
    site: str
    #: 1-based call index at ``site`` on which the fault fires.
    call: int
    #: ``"error"`` raises a :class:`~repro.exceptions.TransientError`;
    #: ``"latency"`` sleeps for :attr:`latency_s` and continues.
    kind: str = "error"
    #: injected delay in seconds (``kind="latency"`` only).
    latency_s: float = 0.0

    def validate(self) -> None:
        """Fail fast on a malformed fault entry."""
        if self.site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; expected one of {FAULT_SITES}"
            )
        if not isinstance(self.call, int) or self.call < 1:
            raise ConfigurationError(
                f"fault call index must be an integer >= 1, got {self.call!r}"
            )
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.latency_s < 0:
            raise ConfigurationError(
                f"fault latency must be >= 0 seconds, got {self.latency_s!r}"
            )


class FaultPlan:
    """A validated, immutable schedule of :class:`FaultSpec` entries."""

    def __init__(self, faults: list[FaultSpec] | tuple[FaultSpec, ...] = ()) -> None:
        """Validate the entries and index them by (site, call).

        Raises:
            ConfigurationError: on an unknown site/kind, a non-positive
                call index, or two faults scheduled for the same call.
        """
        specs = tuple(faults)
        for spec in specs:
            spec.validate()
        index: dict[tuple[str, int], FaultSpec] = {}
        for spec in specs:
            key = (spec.site, spec.call)
            if key in index:
                raise ConfigurationError(
                    f"duplicate fault scheduled for call {spec.call} at {spec.site!r}"
                )
            index[key] = spec
        self.faults = specs
        self._index = index

    @classmethod
    def transient(cls, *sites_and_calls: tuple[str, int]) -> "FaultPlan":
        """Shorthand for a plan of one transient error per (site, call)."""
        return cls([FaultSpec(site=s, call=c) for s, c in sites_and_calls])

    def lookup(self, site: str, call: int) -> FaultSpec | None:
        """The fault scheduled for this exact call at ``site``, if any."""
        return self._index.get((site, call))

    def without_kind(self, kind: str) -> "FaultPlan":
        """A copy of the plan with every ``kind`` entry removed.

        Used when respawning a killed worker process: the death already
        happened, so the respawned worker's plan drops the ``"exit"``
        entries (a one-shot crash, not a crash loop).
        """
        return FaultPlan([spec for spec in self.faults if spec.kind != kind])


@dataclass
class FaultLogEntry:
    """One fault the injector actually fired (for test assertions)."""

    site: str
    call: int
    kind: str


class FaultInjector:
    """Counts calls per site and fires the plan's faults deterministically.

    Thread-safe: sites fire from producer threads, segment-worker pool
    threads and the serving scorer thread concurrently; the per-site call
    counters are kept under one lock so the k-th call is well defined
    process-wide.
    """

    def __init__(self, plan: FaultPlan, offsets: dict[str, int] | None = None) -> None:
        """Arm ``plan``; ``offsets`` pre-advances per-site call counters.

        Offsets let a respawned worker process resume counting where the
        previous incarnation left off, so a plan's later faults keep their
        deterministic positions across a process death.
        """
        self.plan = plan
        self.calls: dict[str, int] = {site: 0 for site in FAULT_SITES}
        if offsets:
            for site, count in offsets.items():
                self.calls[site] = int(count)
        #: every fault actually fired, in firing order.
        self.fired: list[FaultLogEntry] = []
        self._lock = threading.Lock()

    def fire(self, site: str) -> None:
        """Record one call at ``site`` and fire its scheduled fault, if any."""
        with self._lock:
            call = self.calls.get(site, 0) + 1
            self.calls[site] = call
            spec = self.plan.lookup(site, call)
            if spec is not None:
                self.fired.append(FaultLogEntry(site=site, call=call, kind=spec.kind))
        if spec is None:
            return
        if spec.kind == "latency":
            time.sleep(spec.latency_s)
            return
        if spec.kind == "exit":
            # Die like a real worker crash: no cleanup, no exception
            # propagation.  The parent sees the broken pipe.
            os._exit(FAULT_EXIT_CODE)
        raise TransientError(
            f"injected fault at {site!r} (call {call} of the fault plan)"
        )


#: the armed injector; ``None`` (the default) means every site is a single
#: is-None check and nothing else.
_ACTIVE: FaultInjector | None = None
_ARM_LOCK = threading.Lock()


def active_injector() -> FaultInjector | None:
    """The armed injector, or ``None`` when no chaos run is active.

    Observability consumers (the run recorder) use this to snapshot the
    fired-fault log around one train/score invocation without taking any
    dependency on how the plan was armed.
    """
    return _ACTIVE


def fault_point(site: str) -> None:
    """Injection site hook: fires the armed injector's fault, if any.

    This is the only call compiled into the subsystems.  With no plan
    armed it is one global load and an ``is None`` test.
    """
    injector = _ACTIVE
    if injector is not None:
        injector.fire(site)


class inject_faults:
    """Context manager arming a :class:`FaultPlan` for one chaos run.

    Yields the :class:`FaultInjector` so tests can assert on
    :attr:`FaultInjector.fired`.  Arming is exclusive: nesting a second
    plan raises, so two chaos tests cannot silently interleave faults.
    """

    def __init__(self, plan: FaultPlan, offsets: dict[str, int] | None = None) -> None:
        self.plan = plan
        self.offsets = offsets
        self.injector: FaultInjector | None = None

    def __enter__(self) -> FaultInjector:
        global _ACTIVE
        with _ARM_LOCK:
            if _ACTIVE is not None:
                raise ConfigurationError(
                    "a fault plan is already armed; chaos runs cannot nest"
                )
            self.injector = FaultInjector(self.plan, offsets=self.offsets)
            _ACTIVE = self.injector
        return self.injector

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        with _ARM_LOCK:
            _ACTIVE = None
