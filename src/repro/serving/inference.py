"""Batched inference engine: the execution engine's forward-only twin.

An :class:`InferencePlan` lowers one compiled UDF for serving exactly the
way PR-1 lowered training: the forward sub-hDFG
(:func:`~repro.translator.forward.forward_slice`) is compiled **once** into
a :class:`~repro.translator.tape.CompiledTape` of batched NumPy kernels,
the per-tuple :class:`~repro.translator.evaluator.HDFGEvaluator` forward
pass is kept as the correctness oracle, and cycle accounting is derived
from a static schedule of the forward region — so the batched and
per-tuple paths report identical counters for identical batches.

:class:`InferenceEngine` instances share one plan (the tape's kernel
closures are stateless, so many engines/threads can score concurrently)
but own their counters, mirroring how every
:class:`~repro.cluster.segment_worker.SegmentWorker` owns its engine stats.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.compiler.scheduler import Scheduler
from repro.exceptions import ConfigurationError
from repro.reliability.faults import fault_point
from repro.translator.evaluator import HDFGEvaluator
from repro.translator.forward import forward_slice
from repro.translator.hdfg import HDFG, Region
from repro.translator.tape import CompiledTape

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.base import AlgorithmSpec
    from repro.compiler.execution_binary import ExecutionBinary

#: scoring paths exposed by the serving layer.
SERVING_PATHS = ("batched", "per_tuple")

#: default scan-scoring micro-batch (tuples per tape invocation).
DEFAULT_SCORE_BATCH = 256

#: fault-injection site fired once per :meth:`InferenceEngine.score` call.
INFERENCE_FAULT_SITE = "serving.inference.score"


@dataclass
class InferenceStats:
    """Counters accumulated while scoring (schedule-derived)."""

    tuples_scored: int = 0
    batches_scored: int = 0
    forward_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        """All cycles booked while scoring (forward-pass only)."""
        return self.forward_cycles


class InferencePlan:
    """Forward lowering + static schedule of one UDF, compiled once."""

    def __init__(
        self,
        graph: HDFG,
        spec: "AlgorithmSpec",
        threads: int,
        acs_per_thread: int,
    ) -> None:
        if spec.bind_predict is None:
            raise ConfigurationError(
                f"algorithm {spec.name!r} declares no bind_predict binder; "
                "serving needs one to map feature rows onto the forward graph"
            )
        self.spec = spec
        self.bind_predict = spec.bind_predict
        self.threads = max(1, int(threads))
        self.forward = forward_slice(graph)
        # Static schedule of the forward region: the single source of truth
        # for inference cycle accounting, exactly like the training
        # schedule's region lengths drive ExecutionEngine.account_batch.
        self.schedule = Scheduler(self.forward.graph, max(1, acs_per_thread)).schedule()
        self.forward_cycles_per_round = self.schedule.update_rule_cycles
        self.tape = CompiledTape(self.forward.graph)
        self.evaluator = HDFGEvaluator(self.forward.graph)

    @classmethod
    def from_binary(cls, binary: "ExecutionBinary", spec: "AlgorithmSpec") -> "InferencePlan":
        """Build the serving plan for a compiled accelerator binary."""
        return cls(
            binary.graph,
            spec,
            threads=binary.design.threads,
            acs_per_thread=binary.design.acs_per_thread,
        )

    def new_engine(self) -> "InferenceEngine":
        """A fresh engine (clean counters) sharing this compiled plan."""
        return InferenceEngine(self)

    def predict_forward_cycles(self, n_tuples: int, batch_size: int | None = None) -> int:
        """Predict the forward-pass cycles of scoring ``n_tuples`` tuples.

        Applies :meth:`InferenceEngine.account_batch`'s arithmetic —
        ``ceil(batch / threads)`` engine rounds per micro-batch, each
        costing the scheduled forward region — over full micro-batches of
        ``batch_size`` (default :data:`DEFAULT_SCORE_BATCH`) plus the
        remainder, without touching any engine counters.  ``EXPLAIN``
        prices scoring statements with this before anything runs.
        """
        if n_tuples <= 0:
            return 0
        size = batch_size or DEFAULT_SCORE_BATCH
        cycles = 0
        full, remainder = divmod(n_tuples, size)
        for batch_len, count in ((size, full), (remainder, 1)):
            if count < 1 or batch_len < 1:
                continue
            rounds = math.ceil(batch_len / self.threads)
            cycles += count * rounds * self.forward_cycles_per_round
        return cycles


class InferenceEngine:
    """Scores tuple batches through one plan, booking forward cycles."""

    def __init__(self, plan: InferencePlan) -> None:
        self.plan = plan
        self.stats = InferenceStats()

    # ------------------------------------------------------------------ #
    # cycle accounting (shared by both paths — counters stay identical)
    # ------------------------------------------------------------------ #
    def account_batch(self, batch_len: int) -> None:
        """Book one scored batch: ``ceil(batch / threads)`` engine rounds."""
        if batch_len < 1:
            return
        rounds = math.ceil(batch_len / self.plan.threads)
        self.stats.tuples_scored += batch_len
        self.stats.batches_scored += 1
        self.stats.forward_cycles += rounds * self.plan.forward_cycles_per_round

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def score(
        self,
        rows: np.ndarray,
        models: Mapping[str, np.ndarray],
        path: str = "batched",
        batch_size: int | None = None,
    ) -> np.ndarray:
        """Predictions for ``rows`` (one score per tuple, storage order).

        ``path="batched"`` evaluates whole micro-batches on the compiled
        forward tape; ``path="per_tuple"`` walks the per-tuple evaluator —
        the oracle.  Both paths slice ``rows`` into the same micro-batches
        and book the same schedule-derived cycles.
        """
        if path not in SERVING_PATHS:
            raise ConfigurationError(
                f"unknown serving path {path!r}; expected one of {SERVING_PATHS}"
            )
        fault_point(INFERENCE_FAULT_SITE)
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2:
            raise ConfigurationError(
                f"score expects a (tuples, columns) matrix, got shape {rows.shape}"
            )
        size = batch_size or DEFAULT_SCORE_BATCH
        chunks: list[np.ndarray] = []
        for start in range(0, len(rows), size):
            batch = rows[start : start + size]
            if path == "batched":
                chunks.append(self._score_batch_tape(batch, models))
            else:
                chunks.append(self._score_batch_oracle(batch, models))
            self.account_batch(len(batch))
        if not chunks:
            return np.empty((0,) + self.plan.forward.score_dims)
        return np.concatenate(chunks, axis=0)

    def _score_batch_tape(
        self, batch: np.ndarray, models: Mapping[str, np.ndarray]
    ) -> np.ndarray:
        env = self.plan.tape.run(self.plan.bind_predict(batch), models)
        return np.asarray(env[self.plan.forward.score_node_id], dtype=np.float64)

    def _score_batch_oracle(
        self, batch: np.ndarray, models: Mapping[str, np.ndarray]
    ) -> np.ndarray:
        evaluator = self.plan.evaluator
        score_id = self.plan.forward.score_node_id
        values = []
        for row in batch:
            bound = {
                name: np.asarray(value)[0]
                for name, value in self.plan.bind_predict(row[None, :]).items()
            }
            for name, value in models.items():
                bound.setdefault(name, value)
            env = evaluator.initial_env(bound)
            env = evaluator.evaluate(env, [Region.UPDATE_RULE])
            values.append(np.asarray(env[score_id], dtype=np.float64))
        return np.stack(values, axis=0)
