"""In-database prediction serving: registry, inference tape, scorers.

The training stack (PRs 1-3) ends with a model dict in memory; this
package is the other half of the MADlib-style in-database analytics shape:

* :class:`ModelRegistry` persists versioned model parameters into real
  heap tables through the catalog (bit-identical round trip);
* :class:`InferencePlan` / :class:`InferenceEngine` lower the hDFG in
  forward-only mode into a batched inference tape, keeping the per-tuple
  evaluator forward pass as the parity oracle with schedule-derived
  cycle counters;
* :class:`ScanScorer` scores whole heap tables via the bulk Strider page
  walk, fanned out across segments with the training cluster's
  partitioner;
* :class:`PredictionServer` coalesces concurrent point requests into
  bounded-latency micro-batches and reports throughput + p50/p99 latency.
"""

from repro.serving.inference import (
    DEFAULT_SCORE_BATCH,
    InferenceEngine,
    InferencePlan,
    InferenceStats,
    SERVING_PATHS,
)
from repro.serving.microbatch import PredictionServer, ServingStats
from repro.serving.registry import MODEL_PARAM_SCHEMA, ModelRegistry, model_table_name
from repro.serving.scorer import (
    SCORING_EXECUTION_STRATEGIES,
    ScanScorer,
    ScoreResult,
    SegmentScoreReport,
)

__all__ = [
    "DEFAULT_SCORE_BATCH",
    "InferenceEngine",
    "InferencePlan",
    "InferenceStats",
    "MODEL_PARAM_SCHEMA",
    "ModelRegistry",
    "PredictionServer",
    "SERVING_PATHS",
    "SCORING_EXECUTION_STRATEGIES",
    "ScanScorer",
    "ScoreResult",
    "SegmentScoreReport",
    "ServingStats",
    "model_table_name",
]
