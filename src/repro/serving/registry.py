"""Model registry: versioned model parameters persisted as heap tables.

MADlib stores trained models as ordinary database tables so that scoring
stays set-oriented and inside the RDBMS; the registry reproduces that
shape on the miniature substrate.  ``save`` flattens every named parameter
into ``(param, idx, value)`` rows, bulk-loads them into a real heap table
(pages, slotted tuples, buffer-pool reads — the same storage path training
tables use) and registers a :class:`~repro.rdbms.catalog.ModelEntry`
descriptor in the system catalog.  ``load`` scans the table back through
the buffer pool and reassembles the arrays from the descriptor's shapes.

Values are stored as ``FLOAT8`` columns, so a save/load round trip is
**bit-identical**: predictions from a loaded model match the in-memory
model exactly.  Missing models/versions raise
:class:`~repro.exceptions.ConfigurationError` naming what *is* available,
in the fail-fast style of ``DAnA.train`` validation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.exceptions import CatalogError, ConfigurationError
from repro.rdbms.catalog import ModelEntry, ModelParam
from repro.rdbms.types import ColumnType, Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rdbms.database import Database

#: heap-table layout of one saved model: one row per scalar element.
MODEL_PARAM_SCHEMA = Schema.build(
    [
        ("param", ColumnType.INT4),   # index into ModelEntry.params
        ("idx", ColumnType.INT8),     # flat (C-order) element index
        ("value", ColumnType.FLOAT8), # exact float64 payload
    ]
)


def model_table_name(name: str, version: int) -> str:
    """The heap table holding one saved model version's parameters."""
    return f"dana_model__{name}__v{version}"


class ModelRegistry:
    """Persists and restores versioned models through the RDBMS."""

    def __init__(self, database: "Database") -> None:
        self.database = database

    # ------------------------------------------------------------------ #
    # save
    # ------------------------------------------------------------------ #
    def save(
        self,
        name: str,
        models: Mapping[str, np.ndarray],
        algorithm: str = "",
        metadata: dict | None = None,
    ) -> ModelEntry:
        """Persist ``models`` as the next version of ``name``."""
        if not isinstance(name, str) or not name:
            raise ConfigurationError(
                f"model name must be a non-empty string, got {name!r}"
            )
        if not models:
            raise ConfigurationError(
                f"cannot save model {name!r}: the model mapping is empty"
            )
        version = self.next_version(name)
        table = model_table_name(name, version)
        params: list[ModelParam] = []
        blocks: list[np.ndarray] = []
        for param_id, param_name in enumerate(sorted(models)):
            array = np.asarray(models[param_name], dtype=np.float64)
            params.append(
                ModelParam(name=param_name, shape=tuple(int(d) for d in array.shape))
            )
            flat = array.ravel(order="C")
            # One (n, 3) float64 block per parameter; float64 carries the
            # INT4 param id and INT8 element index exactly, and the array
            # bulk-load path skips per-element Python boxing.
            blocks.append(
                np.column_stack(
                    [np.full(flat.size, param_id, dtype=np.float64),
                     np.arange(flat.size, dtype=np.float64),
                     flat]
                )
            )
        rows = np.vstack(blocks) if blocks else np.empty((0, 3))
        self.database.load_table(table, MODEL_PARAM_SCHEMA, rows)
        entry = ModelEntry(
            name=name,
            version=version,
            algorithm=algorithm,
            table_name=table,
            params=params,
            metadata=dict(metadata or {}),
        )
        self.database.catalog.register_model(entry)
        return entry

    # ------------------------------------------------------------------ #
    # load
    # ------------------------------------------------------------------ #
    def load(
        self, name: str, version: int | None = None
    ) -> tuple[dict[str, np.ndarray], ModelEntry]:
        """Reassemble a saved model; returns ``(models, entry)``."""
        entry = self.entry(name, version)
        data = self.database.table(entry.table_name).read_all(
            self.database.buffer_pool
        )
        models: dict[str, np.ndarray] = {}
        for param_id, param in enumerate(entry.params):
            rows = data[data[:, 0] == param_id] if len(data) else data
            indices = rows[:, 1].astype(np.int64) if len(rows) else np.empty(0, np.int64)
            # The idx column must be a permutation of the element range —
            # a matching row count alone would let duplicated/missing
            # indices slip through and leave uninitialized elements.
            if len(rows) != param.element_count or not np.array_equal(
                np.sort(indices), np.arange(param.element_count)
            ):
                raise ConfigurationError(
                    f"saved model {name!r} v{entry.version} is corrupt: parameter "
                    f"{param.name!r} has {len(rows)} stored elements "
                    f"(expected every index in 0..{param.element_count - 1} "
                    "exactly once)"
                )
            flat = np.empty(param.element_count, dtype=np.float64)
            flat[indices] = rows[:, 2]
            models[param.name] = flat.reshape(param.shape)
        return models, entry

    def entry(self, name: str, version: int | None = None) -> ModelEntry:
        """Catalog descriptor of a saved model (fail-fast on misses)."""
        try:
            return self.database.catalog.model(name, version)
        except CatalogError as error:
            raise ConfigurationError(str(error)) from None

    # ------------------------------------------------------------------ #
    # drop
    # ------------------------------------------------------------------ #
    def drop(self, name: str, version: int | None = None) -> list[int]:
        """Drop a saved model's parameter tables and catalog entries.

        Args:
            name: the saved model's name.
            version: one version to drop, or ``None`` for all versions.

        Returns:
            The dropped version numbers, ascending.

        Raises:
            ConfigurationError: when the model (or version) does not exist,
                naming what *is* available.
        """
        try:
            return self.database.drop_model(name, version)
        except CatalogError as error:
            raise ConfigurationError(str(error)) from None

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def names(self) -> list[str]:
        """Names of all saved models, sorted."""
        return self.database.catalog.model_names()

    def versions(self, name: str) -> list[int]:
        """Saved versions of ``name``, ascending (empty when unknown)."""
        return self.database.catalog.model_versions(name)

    def next_version(self, name: str) -> int:
        """The version number the next :meth:`save` of ``name`` will get."""
        versions = self.versions(name)
        return (versions[-1] + 1) if versions else 1
