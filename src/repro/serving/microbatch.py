"""Micro-batching prediction server for concurrent point requests.

Heavy serving traffic arrives one tuple at a time, but the inference tape
is fastest on batches.  The :class:`PredictionServer` bridges the two with
the same shape the runtime's :class:`~repro.runtime.BatchSource` uses for
extraction: a **bounded queue** (the software double buffer) decouples the
submitting threads from one scorer thread, which coalesces whatever has
queued into a micro-batch — up to ``max_batch_size`` requests, waiting at
most ``max_wait_ms`` after the first request of a batch arrives, so the
batching latency is bounded by construction.

The served model can be **hot-swapped** without stopping the server:
:meth:`PredictionServer.swap_models` (or the registry-versioned
:meth:`PredictionServer.reload`) replaces the model mapping atomically at a
micro-batch boundary — in-flight batches drain on the old model, later
batches score the new one, bit-identically to a cold restart.

Every request's end-to-end latency (submit → result) is recorded;
:meth:`PredictionServer.stats` reports throughput plus p50/p99 latency,
the two numbers the micro-batch size trades against each other: bigger
batches amortise the tape invocation (throughput up), smaller waits bound
the queueing delay (tail latency down).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    ServerOverloadedError,
    ServingError,
)
from repro.obs.metrics import Histogram
from repro.obs.telemetry import telemetry
from repro.serving.inference import InferenceEngine

#: per-request latencies retained for the percentile stats.  A bounded
#: window keeps a long-lived server's memory (and percentile cost) flat;
#: the request/batch totals stay exact.
LATENCY_WINDOW = 65536

#: fixed bucket upper bounds (seconds) of the request-latency histogram —
#: micro-batch serving latencies live between a fraction of ``max_wait_ms``
#: and a few seconds under backlog.
LATENCY_BUCKETS_S = (
    0.0005,
    0.001,
    0.002,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


def _latency_histogram() -> Histogram:
    """The shared-obs latency histogram backing one server's stats."""
    return Histogram(
        "serving.server.latency", buckets=LATENCY_BUCKETS_S, window=LATENCY_WINDOW
    )


@dataclass
class ServingStats:
    """Aggregate request/latency counters of one server lifetime."""

    requests: int = 0
    batches: int = 0
    #: completed model hot-swaps (swap_models / reload calls).
    swaps: int = 0
    #: requests refused at admission (queue full / per-model limit hit).
    shed: int = 0
    #: queued requests that missed their deadline before being scored.
    deadline_exceeded: int = 0
    #: synchronous :meth:`PredictionServer.predict` calls that timed out
    #: and cancelled their queued request.
    timeouts: int = 0
    #: per-request submit→result latency distribution, seconds — the
    #: shared :class:`~repro.obs.metrics.Histogram`, retaining the most
    #: recent :data:`LATENCY_WINDOW` raw samples so the percentile math
    #: is identical to the pre-histogram implementation.
    latency: Histogram = field(default_factory=_latency_histogram)
    #: wall-clock span from first submit to last completion, seconds.
    span_seconds: float = 0.0

    @property
    def latencies_s(self) -> deque:
        """Raw latency sample window (insertion order), seconds."""
        return self.latency.samples

    @property
    def mean_batch_size(self) -> float:
        """Average requests coalesced per scored micro-batch."""
        return self.requests / self.batches if self.batches else 0.0

    @property
    def requests_per_second(self) -> float:
        """Throughput over the serving span (first submit to last result)."""
        return self.requests / self.span_seconds if self.span_seconds > 0 else 0.0

    def latency_ms(self, percentile: float) -> float:
        """Request latency percentile in milliseconds (0 when idle)."""
        return self.latency.percentile(percentile) * 1e3

    @property
    def p50_latency_ms(self) -> float:
        """Median request latency in milliseconds."""
        return self.latency_ms(50.0)

    @property
    def p99_latency_ms(self) -> float:
        """99th-percentile request latency in milliseconds."""
        return self.latency_ms(99.0)

    def to_dict(self) -> dict:
        """Export every counter plus the latency histogram for the CLI."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "swaps": self.swaps,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "timeouts": self.timeouts,
            "mean_batch_size": self.mean_batch_size,
            "requests_per_second": self.requests_per_second,
            "p50_latency_ms": self.p50_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "span_seconds": self.span_seconds,
            "latency_histogram": self.latency.to_dict(),
        }


@dataclass
class _Request:
    row: np.ndarray
    future: Future
    submitted_at: float
    #: absolute deadline (perf_counter seconds) or None for no deadline.
    deadline: float | None = None
    #: model version the request was admitted against; only meaningful
    #: when ``tracked`` (the server enforces a per-model limit).
    version: int | None = None
    tracked: bool = False


class PredictionServer:
    """Coalesces concurrent point requests into bounded-latency batches."""

    def __init__(
        self,
        engine: InferenceEngine,
        models: Mapping[str, np.ndarray],
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        queue_depth: int | None = None,
        model_loader: Callable[[int | None], tuple] | None = None,
        model_version: int | None = None,
        max_queue_depth: int | None = None,
        deadline_ms: float | None = None,
        max_concurrent_per_model: int | None = None,
    ) -> None:
        """Build a server around one inference engine and one model.

        Args:
            engine: the (forward-only) inference engine scoring batches.
            models: the initial model parameter mapping.
            max_batch_size: most requests coalesced into one micro-batch.
            max_wait_ms: longest a batch waits after its first request.
            queue_depth: bounded request-queue depth (default: two
                micro-batches — one scoring, one queueing).
            model_loader: optional registry-backed loader for
                :meth:`reload` hot-swaps; called with a version (or None
                for latest) and must return ``(models, entry)``.
            model_version: registry version of the initial model, if any.
            max_queue_depth: admission-control queue bound.  ``None``
                (the default) keeps the legacy behaviour — ``submit``
                blocks until the double buffer has room; an integer makes
                ``submit`` shed instead, raising
                :class:`~repro.exceptions.ServerOverloadedError` the
                moment the queue holds this many requests.
            deadline_ms: default per-request deadline.  A queued request
                older than this when its micro-batch is scored fails with
                :class:`~repro.exceptions.DeadlineExceededError` instead
                of being scored late.  ``None`` disables deadlines.
            max_concurrent_per_model: most requests admitted but not yet
                resolved against one served model version; the excess is
                shed like a full queue.  ``None`` disables the limit.

        Raises:
            ConfigurationError: on non-positive ``max_batch_size``,
                ``max_queue_depth``, ``deadline_ms`` or
                ``max_concurrent_per_model``, or a negative
                ``max_wait_ms``.
        """
        if not isinstance(max_batch_size, int) or max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be an integer >= 1, got {max_batch_size!r}"
            )
        if not isinstance(max_wait_ms, (int, float)) or max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms must be a number >= 0, got {max_wait_ms!r}"
            )
        if max_queue_depth is not None and (
            not isinstance(max_queue_depth, int) or max_queue_depth < 1
        ):
            raise ConfigurationError(
                f"max_queue_depth must be an integer >= 1 or None, "
                f"got {max_queue_depth!r}"
            )
        if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
        ):
            raise ConfigurationError(
                f"deadline_ms must be a positive number or None, got {deadline_ms!r}"
            )
        if max_concurrent_per_model is not None and (
            not isinstance(max_concurrent_per_model, int)
            or max_concurrent_per_model < 1
        ):
            raise ConfigurationError(
                f"max_concurrent_per_model must be an integer >= 1 or None, "
                f"got {max_concurrent_per_model!r}"
            )
        self.engine = engine
        self.models = {
            name: np.asarray(value, dtype=np.float64) for name, value in models.items()
        }
        self._model_loader = model_loader
        #: registry version currently being served (None for in-memory
        #: model mappings that never came from the registry).
        self.model_version = model_version
        self.max_batch_size = max_batch_size
        self.max_wait_s = float(max_wait_ms) / 1e3
        self.max_queue_depth = max_queue_depth
        self.deadline_ms = deadline_ms
        self.max_concurrent_per_model = max_concurrent_per_model
        #: in-flight request count per served model version (admission
        #: bookkeeping for ``max_concurrent_per_model``).
        self._inflight: dict[int | None, int] = {}
        # Double-buffer depth: one micro-batch being scored, one queueing
        # (an explicit admission bound overrides it).
        if max_queue_depth is not None:
            depth = max_queue_depth
        elif queue_depth is not None:
            depth = queue_depth
        else:
            depth = 2 * max_batch_size
        self._queue: queue.Queue[_Request] = queue.Queue(maxsize=max(1, depth))
        self._stop = threading.Event()
        #: raised by ``stop(drain=False)``: the scorer exits without
        #: draining and the leftovers are failed, not scored.
        self._abort = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self.stats = ServingStats()
        self._first_submit: float | None = None
        self._last_complete: float | None = None
        #: span accumulated over previous start()/stop() lifetimes, so a
        #: restarted server's throughput excludes the stopped idle gap.
        self._span_base: float = 0.0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "PredictionServer":
        """Start (or restart) the scorer thread; returns ``self``."""
        with self._lock:
            if self._thread is not None:
                return self
            self._stop.clear()  # a stopped server can be restarted
            if self._first_submit is not None:
                # Rebase the throughput clock: the stopped gap is not
                # serving time.
                self._span_base = self.stats.span_seconds
                self._first_submit = None
            self._thread = threading.Thread(
                target=self._serve, name="prediction-server", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the scorer thread, draining outstanding requests first.

        With ``drain=True`` (the default) every request whose
        :meth:`submit` returned before ``stop`` was called is scored:
        submissions are ordered against the stop flag by the server lock,
        so the scorer cannot observe an empty queue and exit while a
        submitted request is still in flight.  ``drain=False`` exits the
        scorer at the next batch boundary instead; anything still queued
        fails with :class:`~repro.exceptions.ServingError` rather than
        being scored — no caller is ever left hanging either way.

        Args:
            drain: score the queued backlog before exiting (default) or
                fail it fast.
        """
        with self._lock:
            if self._thread is None:
                return
            if not drain:
                self._abort.set()
            self._stop.set()
            thread = self._thread
        thread.join()
        with self._lock:
            self._thread = None
            self._abort.clear()
        # Backstop: fail anything still queued rather than strand it (the
        # scorer's own exit hook already drained in every ordinary path).
        self._fail_queued("the prediction server was stopped")

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # model hot-swap
    # ------------------------------------------------------------------ #
    def swap_models(
        self, models: Mapping[str, np.ndarray], version: int | None = None
    ) -> None:
        """Atomically replace the served model between micro-batches.

        The scorer thread snapshots the model mapping once per micro-batch,
        so a micro-batch already in flight when the swap lands drains on
        the **old** model, and every later batch scores with the new one —
        bit-identical to stopping the server and cold-starting it on the
        new model (same engine, same tape, same parameters).

        Args:
            models: the replacement model parameter mapping (non-empty).
            version: registry version tag recorded as
                :attr:`model_version` (``None`` for in-memory swaps).

        Raises:
            ConfigurationError: when ``models`` is empty or not a mapping.
        """
        if not isinstance(models, Mapping) or not models:
            raise ConfigurationError(
                f"swap_models expects a non-empty model mapping, got {models!r}"
            )
        converted = {
            name: np.asarray(value, dtype=np.float64)
            for name, value in models.items()
        }
        with self._lock:
            self.models = converted
            self.model_version = version
            self.stats.swaps += 1

    def reload(self, version: int | None = None):
        """Hot-swap to a registry version of this server's model.

        Args:
            version: the saved version to serve (``None`` = latest).

        Returns:
            The :class:`~repro.rdbms.catalog.ModelEntry` now being served.

        Raises:
            ConfigurationError: when the server was built from an
                in-memory model mapping (no registry to reload from), or
                when the requested version does not exist.
        """
        if self._model_loader is None:
            raise ConfigurationError(
                "this server was built from an in-memory model mapping; "
                "registry hot-swap needs a server created with model_name="
            )
        models, entry = self._model_loader(version)
        self.swap_models(models, version=entry.version if entry else None)
        return entry

    # ------------------------------------------------------------------ #
    # request API
    # ------------------------------------------------------------------ #
    def submit(self, row: np.ndarray, deadline_ms: float | None = None) -> Future:
        """Enqueue one point request; returns a future for its prediction.

        Args:
            row: one feature row (1-D).
            deadline_ms: per-request deadline overriding the server-wide
                ``deadline_ms`` (``None`` inherits the server default).

        Returns:
            A future resolving to the prediction — or to
            :class:`~repro.exceptions.DeadlineExceededError` when the
            request outlives its deadline in the queue.

        Raises:
            ConfigurationError: when the server is not running, the row
                is not 1-D, or ``deadline_ms`` is not a positive number.
            ServerOverloadedError: when admission control is on
                (``max_queue_depth`` / ``max_concurrent_per_model``) and
                the request was shed instead of queued.
        """
        row = np.asarray(row, dtype=np.float64)
        if row.ndim != 1:
            raise ConfigurationError(
                f"submit expects one feature row (1-D), got shape {row.shape}"
            )
        if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
        ):
            raise ConfigurationError(
                f"deadline_ms must be a positive number or None, got {deadline_ms!r}"
            )
        now = time.perf_counter()
        limit_ms = deadline_ms if deadline_ms is not None else self.deadline_ms
        request = _Request(
            row=row,
            future=Future(),
            submitted_at=now,
            deadline=(now + float(limit_ms) / 1e3) if limit_ms is not None else None,
        )
        # The liveness check and the enqueue happen under one lock hold
        # (stop() raises the flag under the same lock), so a successfully
        # submitted request is always still visible to the scorer's
        # stop-and-empty exit check — no request can be stranded.  The put
        # is non-blocking; a full queue sheds (admission control on) or
        # backs off outside the lock (legacy blocking mode).
        while True:
            with self._lock:
                if self._thread is None or self._stop.is_set():
                    raise ConfigurationError(
                        "the prediction server is not running; call start() first"
                    )
                limit = self.max_concurrent_per_model
                if (
                    limit is not None
                    and self._inflight.get(self.model_version, 0) >= limit
                ):
                    self.stats.shed += 1
                    raise ServerOverloadedError(
                        f"model version {self.model_version!r} already has "
                        f"{limit} request(s) in flight; request shed"
                    )
                try:
                    self._queue.put_nowait(request)
                except queue.Full:
                    if self.max_queue_depth is not None:
                        self.stats.shed += 1
                        raise ServerOverloadedError(
                            f"request queue is full "
                            f"({self.max_queue_depth} deep); request shed"
                        )
                else:
                    if limit is not None:
                        request.tracked = True
                        request.version = self.model_version
                        self._inflight[request.version] = (
                            self._inflight.get(request.version, 0) + 1
                        )
                    if self._first_submit is None:
                        self._first_submit = request.submitted_at
                    return request.future
            time.sleep(0.001)

    def predict(
        self,
        row: np.ndarray,
        timeout: float | None = 30.0,
        deadline_ms: float | None = None,
    ) -> float:
        """Synchronous convenience wrapper around :meth:`submit`.

        Args:
            row: one feature row (1-D).
            timeout: seconds to wait for the prediction; on expiry the
                queued request is cancelled (it will not be scored), the
                timeout is counted in :attr:`ServingStats.timeouts`, and
                :class:`~repro.exceptions.DeadlineExceededError` is
                raised.  ``None`` waits forever.
            deadline_ms: per-request deadline passed to :meth:`submit`.

        Returns:
            The scalar prediction for ``row``.

        Raises:
            DeadlineExceededError: when the wait timed out or the queued
                request outlived its ``deadline_ms``.
            ServerOverloadedError: when the request was shed at admission.
        """
        future = self.submit(row, deadline_ms=deadline_ms)
        try:
            return float(future.result(timeout=timeout))
        except FutureTimeoutError:
            future.cancel()
            with self._lock:
                self.stats.timeouts += 1
            raise DeadlineExceededError(
                f"prediction was not ready within timeout={timeout} s; "
                "the queued request was cancelled"
            ) from None

    # ------------------------------------------------------------------ #
    # scorer thread
    # ------------------------------------------------------------------ #
    def _serve(self) -> None:
        try:
            while not (self._stop.is_set() and self._queue.empty()):
                if self._abort.is_set():
                    return
                try:
                    first = self._queue.get(timeout=0.02)
                except queue.Empty:
                    continue
                batch = [first]
                deadline = time.perf_counter() + self.max_wait_s
                while len(batch) < self.max_batch_size:
                    remaining = deadline - time.perf_counter()
                    try:
                        if remaining > 0:
                            batch.append(self._queue.get(timeout=remaining))
                        else:
                            # Deadline passed: take only what already queued.
                            batch.append(self._queue.get_nowait())
                    except queue.Empty:
                        break
                self._score_batch(batch)
        finally:
            # Whatever killed or stopped the scorer, nothing queued may be
            # stranded: fail the leftovers so every caller unblocks, and
            # refuse new submissions (start() after stop() re-arms).
            self._stop.set()
            self._fail_queued("the prediction server stopped before scoring")

    def _score_batch(self, batch: list[_Request]) -> None:
        # Snapshot the model once per micro-batch: a concurrent hot-swap
        # takes effect at the next batch boundary, never mid-batch.
        with self._lock:
            models = self.models
        now = time.perf_counter()
        live: list[_Request] = []
        for request in batch:
            if request.future.cancelled():
                # The caller timed out and withdrew; finalise the
                # cancellation so its waiters wake, and skip the scoring.
                self._release(request)
                request.future.set_running_or_notify_cancel()
            elif request.deadline is not None and now > request.deadline:
                self._release(request)
                with self._lock:
                    self.stats.deadline_exceeded += 1
                _deliver(
                    request.future,
                    error=DeadlineExceededError(
                        "request spent longer than its deadline in the "
                        "serving queue; it was failed, not scored late"
                    ),
                )
            else:
                live.append(request)
        if not live:
            return
        obs = telemetry()
        if obs is not None:
            # Queue delay: submit → micro-batch assembly, per live request.
            queue_hist = obs.metrics.histogram(
                "serving.server.queue", buckets=LATENCY_BUCKETS_S
            )
            for request in live:
                queue_hist.observe(now - request.submitted_at)
        span = (
            obs.span("serving.server.batch", requests=len(live))
            if obs is not None
            else None
        )
        try:
            rows = np.stack([request.row for request in live], axis=0)
            predictions = self.engine.score(
                rows, models, path="batched", batch_size=len(live)
            )
        except BaseException as error:  # noqa: BLE001 - forwarded to callers
            for request in live:
                self._release(request)
                _deliver(request.future, error=error)
            return
        if span is not None:
            obs.finish(span)
        now = time.perf_counter()
        with self._lock:
            self.stats.batches += 1
            self.stats.requests += len(live)
            for request in live:
                self.stats.latency.observe(now - request.submitted_at)
            self._last_complete = now
            if self._first_submit is not None:
                self.stats.span_seconds = self._span_base + (
                    self._last_complete - self._first_submit
                )
        for request, value in zip(live, predictions):
            self._release(request)
            _deliver(request.future, value=value)

    # ------------------------------------------------------------------ #
    # admission bookkeeping
    # ------------------------------------------------------------------ #
    def _release(self, request: _Request) -> None:
        """Return a resolved request's per-model concurrency slot."""
        if not request.tracked:
            return
        with self._lock:
            count = self._inflight.get(request.version, 0) - 1
            if count > 0:
                self._inflight[request.version] = count
            else:
                self._inflight.pop(request.version, None)

    def _fail_queued(self, reason: str) -> None:
        """Fail every still-queued request so no caller blocks forever."""
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                return
            self._release(request)
            _deliver(request.future, error=ServingError(reason))


def _deliver(future: Future, value=None, error: BaseException | None = None) -> None:
    """Complete a request future, tolerating client-side cancellation.

    A caller that timed out may have cancelled its future; delivering into
    a cancelled future raises ``InvalidStateError``, which must not kill
    the scorer thread (it serves every other caller too).
    """
    if not future.set_running_or_notify_cancel():
        return  # cancelled by the client; nothing to deliver
    if error is not None:
        future.set_exception(error)
    else:
        future.set_result(value)
