"""Micro-batching prediction server for concurrent point requests.

Heavy serving traffic arrives one tuple at a time, but the inference tape
is fastest on batches.  The :class:`PredictionServer` bridges the two with
the same shape the runtime's :class:`~repro.runtime.BatchSource` uses for
extraction: a **bounded queue** (the software double buffer) decouples the
submitting threads from one scorer thread, which coalesces whatever has
queued into a micro-batch — up to ``max_batch_size`` requests, waiting at
most ``max_wait_ms`` after the first request of a batch arrives, so the
batching latency is bounded by construction.

The served model can be **hot-swapped** without stopping the server:
:meth:`PredictionServer.swap_models` (or the registry-versioned
:meth:`PredictionServer.reload`) replaces the model mapping atomically at a
micro-batch boundary — in-flight batches drain on the old model, later
batches score the new one, bit-identically to a cold restart.

Every request's end-to-end latency (submit → result) is recorded;
:meth:`PredictionServer.stats` reports throughput plus p50/p99 latency,
the two numbers the micro-batch size trades against each other: bigger
batches amortise the tape invocation (throughput up), smaller waits bound
the queueing delay (tail latency down).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.exceptions import ConfigurationError
from repro.serving.inference import InferenceEngine

#: per-request latencies retained for the percentile stats.  A bounded
#: window keeps a long-lived server's memory (and percentile cost) flat;
#: the request/batch totals stay exact.
LATENCY_WINDOW = 65536


@dataclass
class ServingStats:
    """Aggregate request/latency counters of one server lifetime."""

    requests: int = 0
    batches: int = 0
    #: completed model hot-swaps (swap_models / reload calls).
    swaps: int = 0
    #: per-request submit→result latency, seconds (insertion order; the
    #: most recent :data:`LATENCY_WINDOW` requests).
    latencies_s: deque = field(default_factory=lambda: deque(maxlen=LATENCY_WINDOW))
    #: wall-clock span from first submit to last completion, seconds.
    span_seconds: float = 0.0

    @property
    def mean_batch_size(self) -> float:
        """Average requests coalesced per scored micro-batch."""
        return self.requests / self.batches if self.batches else 0.0

    @property
    def requests_per_second(self) -> float:
        """Throughput over the serving span (first submit to last result)."""
        return self.requests / self.span_seconds if self.span_seconds > 0 else 0.0

    def latency_ms(self, percentile: float) -> float:
        """Request latency percentile in milliseconds (0 when idle)."""
        if not self.latencies_s:
            return 0.0
        return float(
            np.percentile(np.fromiter(self.latencies_s, dtype=np.float64), percentile)
            * 1e3
        )

    @property
    def p50_latency_ms(self) -> float:
        """Median request latency in milliseconds."""
        return self.latency_ms(50.0)

    @property
    def p99_latency_ms(self) -> float:
        """99th-percentile request latency in milliseconds."""
        return self.latency_ms(99.0)


@dataclass
class _Request:
    row: np.ndarray
    future: Future
    submitted_at: float


class PredictionServer:
    """Coalesces concurrent point requests into bounded-latency batches."""

    def __init__(
        self,
        engine: InferenceEngine,
        models: Mapping[str, np.ndarray],
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        queue_depth: int | None = None,
        model_loader: Callable[[int | None], tuple] | None = None,
        model_version: int | None = None,
    ) -> None:
        """Build a server around one inference engine and one model.

        Args:
            engine: the (forward-only) inference engine scoring batches.
            models: the initial model parameter mapping.
            max_batch_size: most requests coalesced into one micro-batch.
            max_wait_ms: longest a batch waits after its first request.
            queue_depth: bounded request-queue depth (default: two
                micro-batches — one scoring, one queueing).
            model_loader: optional registry-backed loader for
                :meth:`reload` hot-swaps; called with a version (or None
                for latest) and must return ``(models, entry)``.
            model_version: registry version of the initial model, if any.

        Raises:
            ConfigurationError: on non-positive ``max_batch_size`` or a
                negative ``max_wait_ms``.
        """
        if not isinstance(max_batch_size, int) or max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be an integer >= 1, got {max_batch_size!r}"
            )
        if not isinstance(max_wait_ms, (int, float)) or max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms must be a number >= 0, got {max_wait_ms!r}"
            )
        self.engine = engine
        self.models = {
            name: np.asarray(value, dtype=np.float64) for name, value in models.items()
        }
        self._model_loader = model_loader
        #: registry version currently being served (None for in-memory
        #: model mappings that never came from the registry).
        self.model_version = model_version
        self.max_batch_size = max_batch_size
        self.max_wait_s = float(max_wait_ms) / 1e3
        # Double-buffer depth: one micro-batch being scored, one queueing.
        depth = queue_depth if queue_depth is not None else 2 * max_batch_size
        self._queue: queue.Queue[_Request] = queue.Queue(maxsize=max(1, depth))
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self.stats = ServingStats()
        self._first_submit: float | None = None
        self._last_complete: float | None = None
        #: span accumulated over previous start()/stop() lifetimes, so a
        #: restarted server's throughput excludes the stopped idle gap.
        self._span_base: float = 0.0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "PredictionServer":
        """Start (or restart) the scorer thread; returns ``self``."""
        with self._lock:
            if self._thread is not None:
                return self
            self._stop.clear()  # a stopped server can be restarted
            if self._first_submit is not None:
                # Rebase the throughput clock: the stopped gap is not
                # serving time.
                self._span_base = self.stats.span_seconds
                self._first_submit = None
            self._thread = threading.Thread(
                target=self._serve, name="prediction-server", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Drain outstanding requests, then stop the scorer thread.

        Every request whose :meth:`submit` returned before ``stop`` was
        called is scored: submissions are ordered against the stop flag by
        the server lock, so the scorer cannot observe an empty queue and
        exit while a submitted request is still in flight.
        """
        with self._lock:
            if self._thread is None:
                return
            self._stop.set()
            thread = self._thread
        thread.join()
        with self._lock:
            self._thread = None
            # Backstop: fail anything still queued rather than strand it.
            while True:
                try:
                    request = self._queue.get_nowait()
                except queue.Empty:
                    break
                _deliver(
                    request.future,
                    error=ConfigurationError("the prediction server was stopped"),
                )

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # model hot-swap
    # ------------------------------------------------------------------ #
    def swap_models(
        self, models: Mapping[str, np.ndarray], version: int | None = None
    ) -> None:
        """Atomically replace the served model between micro-batches.

        The scorer thread snapshots the model mapping once per micro-batch,
        so a micro-batch already in flight when the swap lands drains on
        the **old** model, and every later batch scores with the new one —
        bit-identical to stopping the server and cold-starting it on the
        new model (same engine, same tape, same parameters).

        Args:
            models: the replacement model parameter mapping (non-empty).
            version: registry version tag recorded as
                :attr:`model_version` (``None`` for in-memory swaps).

        Raises:
            ConfigurationError: when ``models`` is empty or not a mapping.
        """
        if not isinstance(models, Mapping) or not models:
            raise ConfigurationError(
                f"swap_models expects a non-empty model mapping, got {models!r}"
            )
        converted = {
            name: np.asarray(value, dtype=np.float64)
            for name, value in models.items()
        }
        with self._lock:
            self.models = converted
            self.model_version = version
            self.stats.swaps += 1

    def reload(self, version: int | None = None):
        """Hot-swap to a registry version of this server's model.

        Args:
            version: the saved version to serve (``None`` = latest).

        Returns:
            The :class:`~repro.rdbms.catalog.ModelEntry` now being served.

        Raises:
            ConfigurationError: when the server was built from an
                in-memory model mapping (no registry to reload from), or
                when the requested version does not exist.
        """
        if self._model_loader is None:
            raise ConfigurationError(
                "this server was built from an in-memory model mapping; "
                "registry hot-swap needs a server created with model_name="
            )
        models, entry = self._model_loader(version)
        self.swap_models(models, version=entry.version if entry else None)
        return entry

    # ------------------------------------------------------------------ #
    # request API
    # ------------------------------------------------------------------ #
    def submit(self, row: np.ndarray) -> Future:
        """Enqueue one point request; returns a future for its prediction."""
        row = np.asarray(row, dtype=np.float64)
        if row.ndim != 1:
            raise ConfigurationError(
                f"submit expects one feature row (1-D), got shape {row.shape}"
            )
        request = _Request(row=row, future=Future(), submitted_at=time.perf_counter())
        # The liveness check and the enqueue happen under one lock hold
        # (stop() raises the flag under the same lock), so a successfully
        # submitted request is always still visible to the scorer's
        # stop-and-empty exit check — no request can be stranded.  The put
        # is non-blocking; a full queue backs off outside the lock.
        while True:
            with self._lock:
                if self._thread is None or self._stop.is_set():
                    raise ConfigurationError(
                        "the prediction server is not running; call start() first"
                    )
                try:
                    self._queue.put_nowait(request)
                except queue.Full:
                    pass
                else:
                    if self._first_submit is None:
                        self._first_submit = request.submitted_at
                    return request.future
            time.sleep(0.001)

    def predict(self, row: np.ndarray, timeout: float | None = 30.0) -> float:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return float(self.submit(row).result(timeout=timeout))

    # ------------------------------------------------------------------ #
    # scorer thread
    # ------------------------------------------------------------------ #
    def _serve(self) -> None:
        while not (self._stop.is_set() and self._queue.empty()):
            try:
                first = self._queue.get(timeout=0.02)
            except queue.Empty:
                continue
            batch = [first]
            deadline = time.perf_counter() + self.max_wait_s
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.perf_counter()
                try:
                    if remaining > 0:
                        batch.append(self._queue.get(timeout=remaining))
                    else:
                        # Deadline passed: take only what already queued.
                        batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            self._score_batch(batch)

    def _score_batch(self, batch: list[_Request]) -> None:
        # Snapshot the model once per micro-batch: a concurrent hot-swap
        # takes effect at the next batch boundary, never mid-batch.
        with self._lock:
            models = self.models
        try:
            rows = np.stack([request.row for request in batch], axis=0)
            predictions = self.engine.score(
                rows, models, path="batched", batch_size=len(batch)
            )
        except BaseException as error:  # noqa: BLE001 - forwarded to callers
            for request in batch:
                _deliver(request.future, error=error)
            return
        now = time.perf_counter()
        with self._lock:
            self.stats.batches += 1
            self.stats.requests += len(batch)
            self.stats.latencies_s.extend(
                now - request.submitted_at for request in batch
            )
            self._last_complete = now
            if self._first_submit is not None:
                self.stats.span_seconds = self._span_base + (
                    self._last_complete - self._first_submit
                )
        for request, value in zip(batch, predictions):
            _deliver(request.future, value=value)


def _deliver(future: Future, value=None, error: BaseException | None = None) -> None:
    """Complete a request future, tolerating client-side cancellation.

    A caller that timed out may have cancelled its future; delivering into
    a cancelled future raises ``InvalidStateError``, which must not kill
    the scorer thread (it serves every other caller too).
    """
    if not future.set_running_or_notify_cancel():
        return  # cancelled by the client; nothing to deliver
    if error is not None:
        future.set_exception(error)
    else:
        future.set_result(value)
