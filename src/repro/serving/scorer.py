"""Whole-table scan-and-score over the bulk Strider page walk.

This is the serving twin of :class:`~repro.cluster.sharded.ShardedDAnA`:
the table's heap pages are partitioned across ``segments`` with the same
:class:`~repro.cluster.partitioner.Partitioner` the training cluster uses,
every segment owns a full :class:`~repro.hw.accelerator.DAnAAccelerator`
(its own Striders and counters) plus a fresh
:class:`~repro.serving.inference.InferenceEngine`, and segments score
concurrently on a thread pool (the NumPy kernels release the GIL).
Per-segment predictions are scattered back into **storage order**, so the
result is independent of the partitioning.

Scoring is **streaming** by default (``stream=True``): within each segment
the bulk Strider page walk runs on a
:class:`~repro.runtime.BatchSource` producer thread — the same bounded
double buffer the training runtime uses for pipelined extraction — while
the forward tape scores micro-batches as they assemble, so extraction
overlaps inference exactly like training's epoch 0.  ``stream=False``
materialises each segment's extraction first and is kept as the overlap
oracle: predictions and schedule-derived counters are bit-identical across
the two modes by construction (identical batch boundaries, identical page
walk).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.cluster.partitioner import PagePartition, Partitioner
from repro.cluster.process_pool import (
    IPCStats,
    ScoreTask,
    builder_metadata,
    score_segment_in_process,
)
from repro.exceptions import ConfigurationError, RetryExhaustedError
from repro.hw.access_engine import AccessEngineStats
from repro.hw.accelerator import DAnAAccelerator
from repro.hw.fpga import DEFAULT_FPGA, FPGASpec
from repro.obs.telemetry import telemetry
from repro.reliability.faults import fault_point
from repro.reliability.retry import RetryPolicy, RetryStats
from repro.runtime.shm import SharedPageStore
from repro.serving.inference import DEFAULT_SCORE_BATCH, InferencePlan, InferenceStats

#: fault-injection site fired once per scored segment attempt.
SCORER_FAULT_SITE = "serving.scorer.segment"

#: segment fan-out strategies for whole-table scoring.
SCORING_EXECUTION_STRATEGIES = ("threads", "processes")

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.base import AlgorithmSpec
    from repro.compiler.execution_binary import ExecutionBinary
    from repro.rdbms.database import Database


@dataclass
class SegmentScoreReport:
    """One segment's contribution to a scan-and-score run."""

    segment_id: int
    pages: int
    tuples_scored: int
    access_stats: AccessEngineStats
    inference_stats: InferenceStats

    @property
    def access_cycles(self) -> int:
        """Extraction stage: AXI transfer + Strider page walk."""
        return (
            self.access_stats.strider_cycles_critical + self.access_stats.axi_cycles
        )

    @property
    def forward_cycles(self) -> int:
        """Compute stage: schedule-derived forward-pass cycles."""
        return self.inference_stats.forward_cycles

    @property
    def cycles(self) -> int:
        """This segment's serial path: extraction + forward compute."""
        return self.access_cycles + self.forward_cycles


@dataclass
class ScoreResult:
    """Predictions + per-segment hardware activity of one table scoring."""

    predictions: np.ndarray
    path: str
    batch_size: int
    partition_strategy: str
    segments: list[SegmentScoreReport]
    #: True when the run overlapped each segment's page walk with its
    #: forward tape (streaming); False for the materialized oracle.
    stream: bool = False
    #: fault/retry counters of the run (all zero when fault-free);
    #: ``retry.redistributed`` counts segments whose pages survivors
    #: adopted after retry exhaustion.
    retry: RetryStats = field(default_factory=RetryStats)
    #: segment fan-out of the run: ``"threads"`` or ``"processes"``.
    execution: str = "threads"
    #: parent<->worker IPC volume (non-zero only for ``processes`` runs).
    ipc: IPCStats = field(default_factory=IPCStats)
    #: concurrent fan-out width of the run: ``min(segments, cpu count)``,
    #: so oversubscribed hosts dispatch at most one segment per core.
    worker_limit: int = 0
    #: WAL LSN the scan was pinned to; rows inserted after it are invisible.
    snapshot_lsn: int = 0

    @property
    def tuples_scored(self) -> int:
        """Total tuples scored across all segments."""
        return len(self.predictions)

    @property
    def inference_stats(self) -> InferenceStats:
        """Aggregate (summed) inference counters across segments."""
        total = InferenceStats()
        for seg in self.segments:
            total.tuples_scored += seg.inference_stats.tuples_scored
            total.batches_scored += seg.inference_stats.batches_scored
            total.forward_cycles += seg.inference_stats.forward_cycles
        return total

    @property
    def critical_path_cycles(self) -> int:
        """Modelled wall-clock cycles: segments scan-and-score concurrently."""
        return max((seg.cycles for seg in self.segments), default=0)


@dataclass
class _ProcessScoreEnv:
    """Shared machinery of one ``execution="processes"`` scoring run."""

    context: multiprocessing.context.BaseContext
    store: SharedPageStore
    ipc: IPCStats
    #: table tuple count the original hardware generation was sized for
    #: (the workers' rebuilds must match it exactly).
    n_tuples: int = 1
    lock: threading.Lock = field(default_factory=threading.Lock)


class ScanScorer:
    """Scores whole heap tables with one accelerator per segment."""

    def __init__(
        self,
        database: "Database",
        binary: "ExecutionBinary",
        spec: "AlgorithmSpec",
        plan: InferencePlan,
        fpga: FPGASpec = DEFAULT_FPGA,
        use_striders: bool = True,
    ) -> None:
        self.database = database
        self.binary = binary
        self.spec = spec
        self.plan = plan
        self.fpga = fpga
        self.use_striders = use_striders

    def score_table(
        self,
        table_name: str,
        models: Mapping[str, np.ndarray],
        segments: int = 1,
        path: str = "batched",
        batch_size: int | None = None,
        partition_strategy: str = "round_robin",
        seed: int = 0,
        stream: bool = True,
        retry: RetryPolicy | None = None,
        execution: str = "threads",
    ) -> ScoreResult:
        """Score every tuple of ``table_name``; predictions in storage order.

        Args:
            table_name: the heap table to scan-and-score.
            models: model parameter mapping the forward pass scores with.
            segments: how many accelerators to partition the pages across.
            path: ``"batched"`` (forward tape) or ``"per_tuple"`` (oracle).
            batch_size: scoring micro-batch (``None`` = the default).
            partition_strategy: how heap pages map to segments.
            seed: partitioning seed (``hash`` strategy reproducibility).
            stream: ``True`` (default) overlaps each segment's Strider page
                walk with its forward tape through a bounded
                :class:`~repro.runtime.BatchSource` double buffer —
                mirroring the training runtime's streaming extraction;
                ``False`` materialises each segment's extraction first (the
                overlap oracle).  Predictions and counters are
                bit-identical either way.
            retry: optional :class:`~repro.reliability.RetryPolicy`.  Each
                segment attempt runs on a fresh accelerator + engine, so a
                retried segment's predictions and counters are
                bit-identical to a fault-free run.  With
                ``degradation="redistribute"``, a segment that fails every
                attempt has its pages adopted by the surviving segments
                (predictions stay bit-identical — reassembly is by page
                number, independent of the partitioning).
            execution: ``"threads"`` (default) scores segments on a thread
                pool in this process; ``"processes"`` exports the table's
                pages into a :class:`~repro.runtime.shm.SharedPageStore`
                and scores each segment in a spawned one-shot worker
                process over zero-copy page views — predictions and
                schedule-derived counters are bit-identical to the threads
                fan-out.  A redistributed segment (after retry exhaustion)
                always falls back to in-parent scoring.

        Returns:
            The :class:`ScoreResult` with storage-order predictions.

        Raises:
            RetryExhaustedError: a segment failed every attempt and the
                policy's degradation mode is ``"fail"`` (or no segment
                survived to adopt the failed pages).
        """
        if execution not in SCORING_EXECUTION_STRATEGIES:
            raise ConfigurationError(
                f"unknown scoring execution strategy {execution!r}; "
                f"expected one of {SCORING_EXECUTION_STRATEGIES}"
            )
        heapfile = self.database.table(table_name)
        pool = self.database.buffer_pool
        # Pin the whole scoring run to the heap as of this LSN: the
        # partitioning, every page image and the worker-process export all
        # come from the snapshot, so concurrent inserts cannot perturb the
        # scan (predictions cover exactly the pre-LSN rows).
        as_of = self.database.wal.current_lsn
        partitioner = Partitioner(partition_strategy, seed=seed)
        parts = partitioner.partition_table(
            self.database, table_name, segments, as_of_lsn=as_of
        )
        env: _ProcessScoreEnv | None = None
        if execution == "processes":
            builder_metadata(self.spec)  # fail fast before exporting pages
            env = _ProcessScoreEnv(
                context=multiprocessing.get_context("spawn"),
                store=SharedPageStore.from_heapfile(
                    heapfile, pool, as_of_lsn=as_of
                ),
                ipc=IPCStats(),
                # Workers rebuild the accelerator design from this count; it
                # must match what the parent's binary was compiled with, not
                # the live catalog count of a table that grew since compile.
                n_tuples=int(
                    self.binary.metadata.get(
                        "n_tuples",
                        max(1, self.database.catalog.table(table_name).tuple_count),
                    )
                ),
            )
        try:
            if env is not None:
                # Zero-copy views of the shared store: the worker children
                # walk the very same blocks, and the in-parent redistribute
                # fallback decodes from these views directly.
                jobs = [
                    (part, [env.store.page(no) for no in part.page_nos])
                    for part in parts
                ]
            else:
                # The buffer pool is not thread-safe: page images are pulled
                # here, on the caller's thread, like the training cluster.
                jobs = [
                    (
                        part,
                        [
                            img
                            for _no, img in heapfile.scan_pages(
                                pool, part.page_nos, as_of_lsn=as_of
                            )
                        ],
                    )
                    for part in parts
                ]
            results = self._run_jobs(jobs, models, path, batch_size, stream, retry, env)
            retry_total = RetryStats()
            for _outcome, stats in results:
                retry_total.merge(stats)
            survivors = [
                (part, images, outcome)
                for (part, images), (outcome, _stats) in zip(jobs, results)
                if outcome is not None
            ]
            failed = [
                (part, images)
                for (part, images), (outcome, _stats) in zip(jobs, results)
                if outcome is None
            ]
            parts_scored = [part for part, _images, _outcome in survivors]
            outcomes = [outcome for _part, _images, outcome in survivors]
            if failed:
                extra_parts, extra_outcomes = self._redistribute(
                    failed, parts_scored, models, path, batch_size, stream, retry,
                    retry_total,
                )
                parts_scored.extend(extra_parts)
                outcomes.extend(extra_outcomes)
            predictions = self._reassemble(parts_scored, outcomes)
        finally:
            if env is not None:
                env.store.close()
                env.store.unlink()
        return ScoreResult(
            predictions=predictions,
            path=path,
            batch_size=batch_size or DEFAULT_SCORE_BATCH,
            partition_strategy=partition_strategy,
            segments=[report for report, _preds, _sizes in outcomes],
            stream=stream and self.use_striders,
            retry=retry_total,
            execution=execution,
            ipc=env.ipc if env is not None else IPCStats(),
            worker_limit=min(len(parts), max(1, os.cpu_count() or 1)),
            snapshot_lsn=as_of,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _run_jobs(
        self,
        jobs: list[tuple[PagePartition, list[bytes]]],
        models: Mapping[str, np.ndarray],
        path: str,
        batch_size: int | None,
        stream: bool,
        retry: RetryPolicy | None,
        env: _ProcessScoreEnv | None = None,
    ) -> list[tuple[tuple | None, RetryStats]]:
        """Score every (partition, images) job, segments concurrently.

        Each element of the returned list is ``(outcome, retry_stats)``;
        ``outcome`` is ``None`` when the segment failed every attempt and
        the policy's degradation mode allows redistribution.  Fan-out is
        clamped to ``min(segments, cpu count)`` — with a process ``env``
        the clamp also bounds how many one-shot worker processes are alive
        at once, so ``segments > cores`` never oversubscribes the host.
        """
        max_workers = min(len(jobs), max(1, os.cpu_count() or 1))
        run = lambda job: self._score_segment_supervised(  # noqa: E731
            job[0], job[1], models, path, batch_size, stream, retry, env
        )
        if max_workers > 1 and len(jobs) > 1:
            with ThreadPoolExecutor(max_workers=max_workers) as pool_exec:
                return list(pool_exec.map(run, jobs))
        return [run(job) for job in jobs]

    def _score_segment_supervised(
        self,
        part: PagePartition,
        images: list[bytes],
        models: Mapping[str, np.ndarray],
        path: str,
        batch_size: int | None,
        stream: bool,
        retry: RetryPolicy | None,
        env: _ProcessScoreEnv | None = None,
    ) -> tuple[tuple | None, RetryStats]:
        """One segment under the retry policy (fresh state per attempt)."""
        stats = RetryStats()
        if env is not None:
            attempt = lambda inner_retry: self._score_segment_process(  # noqa: E731
                part, models, path, batch_size, stream, env
            )
        else:
            attempt = lambda inner_retry: self._score_segment(  # noqa: E731
                part, images, models, path, batch_size, stream, inner_retry, stats
            )
        if retry is None:
            return attempt(None), stats
        try:
            outcome = retry.run(
                lambda: attempt(retry),
                stats=stats,
                label=f"segment {part.segment_id} scan-and-score",
            )
            return outcome, stats
        except RetryExhaustedError:
            if retry.degradation != "redistribute":
                raise
            return None, stats

    def _redistribute(
        self,
        failed: list[tuple[PagePartition, list[bytes]]],
        survivors: list[PagePartition],
        models: Mapping[str, np.ndarray],
        path: str,
        batch_size: int | None,
        stream: bool,
        retry: RetryPolicy,
        retry_total: RetryStats,
    ) -> tuple[list[PagePartition], list[tuple]]:
        """Reassign permanently-failed segments' pages to the survivors.

        The failed pages are dealt round-robin (in page order) across the
        surviving segment ids and scored as extra per-survivor units; each
        unit must succeed (degradation falls back to ``"fail"`` so a
        cluster-wide outage cannot recurse).  Reassembly is by page number,
        so the final predictions are bit-identical to the fault-free run
        regardless of which segment adopted which page.
        """
        survivor_ids = sorted({part.segment_id for part in survivors})
        if not survivor_ids:
            raise RetryExhaustedError(
                "every segment failed permanently; no survivor can adopt "
                "the failed pages"
            )
        retry_total.redistributed += len(failed)
        image_by_page: dict[int, bytes] = {}
        for part, images in failed:
            for page_no, image in zip(part.page_nos, images):
                image_by_page[page_no] = image
        adopted: dict[int, list[int]] = {sid: [] for sid in survivor_ids}
        for i, page_no in enumerate(sorted(image_by_page)):
            adopted[survivor_ids[i % len(survivor_ids)]].append(page_no)
        must_succeed = dataclasses.replace(retry, degradation="fail")
        extra_parts: list[PagePartition] = []
        extra_outcomes: list[tuple] = []
        for sid in survivor_ids:
            if not adopted[sid]:
                continue
            part = PagePartition(segment_id=sid, page_nos=tuple(adopted[sid]))
            images = [image_by_page[page_no] for page_no in part.page_nos]
            outcome, stats = self._score_segment_supervised(
                part, images, models, path, batch_size, stream, must_succeed
            )
            retry_total.merge(stats)
            extra_parts.append(part)
            extra_outcomes.append(outcome)
        return extra_parts, extra_outcomes

    def _score_segment(
        self,
        part: PagePartition,
        images: list[bytes],
        models: Mapping[str, np.ndarray],
        path: str,
        batch_size: int | None,
        stream: bool,
        retry: RetryPolicy | None = None,
        retry_stats: RetryStats | None = None,
    ) -> tuple[SegmentScoreReport, np.ndarray, list[int]]:
        fault_point(SCORER_FAULT_SITE)
        obs = telemetry()
        span = (
            obs.span(
                "serving.scorer.segment",
                segment=part.segment_id,
                pages=len(part),
            )
            if obs is not None
            else None
        )
        engine = self.plan.new_engine()
        if self.use_striders:
            accelerator = DAnAAccelerator(
                binary=self.binary, schema=self.spec.schema, fpga=self.fpga
            )
            if stream:
                predictions, sizes = accelerator.score_stream_from_pages(
                    images,
                    models,
                    engine,
                    batch_size=batch_size or DEFAULT_SCORE_BATCH,
                    path=path,
                    retry=retry,
                    retry_stats=retry_stats,
                )
            else:
                predictions, sizes = accelerator.score_from_pages(
                    images, models, engine, path=path, batch_size=batch_size
                )
            access_stats = accelerator.access_engine.stats
        else:
            chunks = [self._cpu_decode(image) for image in images]
            sizes = [len(chunk) for chunk in chunks]
            rows = (
                np.vstack(chunks)
                if chunks
                else np.empty((0, len(self.spec.schema)))
            )
            predictions = engine.score(rows, models, path=path, batch_size=batch_size)
            access_stats = AccessEngineStats()
        report = SegmentScoreReport(
            segment_id=part.segment_id,
            pages=len(part),
            tuples_scored=engine.stats.tuples_scored,
            access_stats=access_stats,
            inference_stats=engine.stats,
        )
        if span is not None:
            obs.finish(span, tuples=report.tuples_scored)
        return report, predictions, sizes

    def _score_segment_process(
        self,
        part: PagePartition,
        models: Mapping[str, np.ndarray],
        path: str,
        batch_size: int | None,
        stream: bool,
        env: _ProcessScoreEnv,
    ) -> tuple[SegmentScoreReport, np.ndarray, list[int]]:
        """One segment attempt in a fresh one-shot worker process.

        Mirrors :meth:`_score_segment` exactly — the child builds a fresh
        accelerator + engine over the same page blocks (via the shared
        store), so predictions and counters are bit-identical.  The fault
        site and span fire here in the parent, once per attempt, like the
        threads fan-out; the child's shared-store page reads are merged
        into the parent's storage counters.
        """
        fault_point(SCORER_FAULT_SITE)
        obs = telemetry()
        span = (
            obs.span(
                "serving.scorer.segment",
                segment=part.segment_id,
                pages=len(part),
                worker="process",
            )
            if obs is not None
            else None
        )
        builder = builder_metadata(self.spec)
        task = ScoreTask(
            segment_id=part.segment_id,
            udf_name=self.binary.udf_name,
            algorithm=builder["algorithm"],
            n_features=builder["n_features"],
            model_topology=tuple(builder["model_topology"]),
            hyperparameters=self.spec.hyperparameters,
            layout=self.database.layout,
            fpga=self.fpga,
            n_tuples=env.n_tuples,
            page_nos=tuple(part.page_nos),
            use_striders=self.use_striders,
            path=path,
            batch_size=batch_size,
            stream=stream,
        )
        payload = score_segment_in_process(
            env.context, task, env.store.handle(), models, ipc=env.ipc
        )
        storage = payload.get("storage")
        if storage is not None:
            with env.lock:
                stats = self.database.storage.stats
                stats.page_reads += storage.page_reads
                stats.page_writes += storage.page_writes
                stats.bytes_read += storage.bytes_read
                stats.bytes_written += storage.bytes_written
        report = SegmentScoreReport(
            segment_id=part.segment_id,
            pages=len(part),
            tuples_scored=payload["tuples_scored"],
            access_stats=payload["access_stats"],
            inference_stats=payload["inference_stats"],
        )
        if span is not None:
            obs.finish(span, tuples=report.tuples_scored, worker_pid=payload.get("pid"))
        return report, payload["predictions"], payload["sizes"]

    def _cpu_decode(self, image: bytes) -> np.ndarray:
        """RDBMS-side page decode (the ``use_striders=False`` model)."""
        from repro.rdbms.heapfile import decode_page_rows

        return decode_page_rows(image, self.database.layout, self.spec.schema)

    def _reassemble(
        self,
        parts: list[PagePartition],
        outcomes: list[tuple[SegmentScoreReport, np.ndarray, list[int]]],
    ) -> np.ndarray:
        """Scatter per-segment predictions back into heap (storage) order."""
        counts: dict[int, int] = {}
        for part, (_report, _preds, sizes) in zip(parts, outcomes):
            for page_no, size in zip(part.page_nos, sizes):
                counts[page_no] = size
        offsets: dict[int, int] = {}
        total = 0
        for page_no in sorted(counts):
            offsets[page_no] = total
            total += counts[page_no]
        trailing: tuple[int, ...] = ()
        for _report, preds, _sizes in outcomes:
            if len(preds):
                trailing = preds.shape[1:]
                break
        predictions = np.empty((total,) + trailing, dtype=np.float64)
        for part, (_report, preds, sizes) in zip(parts, outcomes):
            position = 0
            for page_no, size in zip(part.page_nos, sizes):
                offset = offsets[page_no]
                predictions[offset : offset + size] = preds[position : position + size]
                position += size
        return predictions
