"""Translator: DSL UDF → hierarchical DataFlow Graph (hDFG)."""

from repro.translator.dimensions import (
    broadcast_primary,
    element_count,
    gather,
    group_fused,
    group_single,
    merge,
    nonlinear,
)
from repro.translator.evaluator import HDFGEvaluator
from repro.translator.forward import ForwardGraph, find_score_node, forward_slice
from repro.translator.hdfg import HDFG, HDFGNode, NodeKind, Region, VariableBinding
from repro.translator.tape import BatchBinder, CompiledTape, TapeCompilationError
from repro.translator.translate import Translator, translate

__all__ = [
    "BatchBinder",
    "CompiledTape",
    "ForwardGraph",
    "find_score_node",
    "forward_slice",
    "HDFG",
    "HDFGEvaluator",
    "TapeCompilationError",
    "HDFGNode",
    "NodeKind",
    "Region",
    "Translator",
    "VariableBinding",
    "broadcast_primary",
    "element_count",
    "gather",
    "group_fused",
    "group_single",
    "merge",
    "nonlinear",
    "translate",
]
