"""Batched execution tape compiled once from a hierarchical DataFlow Graph.

:class:`~repro.translator.evaluator.HDFGEvaluator` walks the graph once per
training tuple with a fresh ``dict`` environment — exactly the
tuple-at-a-time anti-pattern the paper builds DAnA to eliminate.  The
:class:`CompiledTape` removes that overhead by lowering the hDFG **once**
into a flat list of NumPy kernel closures:

* topological order, operator dispatch, region filtering and broadcast
  shapes are all resolved at compile time;
* the environment is a preallocated list indexed by node id instead of a
  per-tuple dict;
* every per-tuple value carries a leading **batch axis**, so one
  :meth:`CompiledTape.run` evaluates the update rule for an entire
  ``(B, ...)`` batch of tuples in one shot — including batched GATHER
  (LRMF row addressing via fancy indexing) and the tree-bus merge, which
  becomes a single ``ufunc.reduce`` over the batch axis.

A tape can additionally be compiled with ``segment_axis=True`` for the
sharded execution subsystem (:mod:`repro.cluster`): model values then carry
a leading **segment axis** ``S`` (one independent model replica per DAnA
accelerator/segment) and per-tuple values are laid out as ``(B, S, ...)``,
so one :meth:`run` call executes the same lock-step batch for *every*
segment at once.  The batch-axis merge still reduces over axis 0 and leaves
one merged value per segment.  Graphs whose lowering cannot carry the
extra axis (gathers, outer-product contractions) raise
:class:`TapeCompilationError` under ``segment_axis=True`` and the cluster
layer falls back to per-segment execution.

The tape computes exactly what the per-tuple evaluator computes (the
microcode path and :class:`HDFGEvaluator` remain the correctness oracles);
graphs that use constructs the batched lowering cannot prove equivalent
(non-associative merge operators, outer-product group contractions over
batched operands) raise :class:`TapeCompilationError` so callers can fall
back to the per-tuple path.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.exceptions import TranslationError
from repro.dsl.operations import Operator
from repro.translator.hdfg import HDFG, HDFGNode, NodeKind, Region

BatchEnv = list  # preallocated, indexed by node id
BatchBinder = Callable[[np.ndarray], Mapping[str, "np.ndarray | float"]]


class TapeCompilationError(TranslationError):
    """The graph uses a construct the batched tape cannot lower faithfully."""


_PRIMARY_UFUNCS = {
    Operator.ADD: np.add,
    Operator.SUB: np.subtract,
    Operator.MUL: np.multiply,
    Operator.DIV: np.divide,
}

_COMPARE_UFUNCS = {
    Operator.GT: np.greater,
    Operator.LT: np.less,
}

# Merging across the batch axis is only order-independent for associative
# operators; the tree bus merges pairwise, a ufunc reduction sequentially.
_ASSOCIATIVE_MERGE_UFUNCS = {
    Operator.ADD: np.add,
    Operator.MUL: np.multiply,
}


def _pad_after_lead(lead: int, pad: int) -> Callable[[np.ndarray], np.ndarray]:
    """Insert ``pad`` singleton axes right after the ``lead`` structure axes.

    An operand stores its logical dims after its structure axes (the batch
    axis, and in segment mode the segment axis), so right-aligning it
    against a higher-rank operand needs the singletons *between* the
    structure axes and the logical dims (a plain NumPy broadcast would
    misalign a structure axis with a logical axis).
    """

    def prep(value: np.ndarray) -> np.ndarray:
        return value.reshape(value.shape[:lead] + (1,) * pad + value.shape[lead:])

    return prep


def _reducer(op: Operator, axis: int) -> Callable[[np.ndarray], np.ndarray]:
    if op is Operator.SIGMA:
        return lambda v: np.sum(v, axis=axis)
    if op is Operator.PI:
        return lambda v: np.prod(v, axis=axis)
    if op is Operator.NORM:
        return lambda v: np.sqrt(np.sum(np.square(v), axis=axis))
    raise TapeCompilationError(f"{op.value!r} is not a group operation")


class CompiledTape:
    """One hDFG lowered into a flat list of batched NumPy kernels."""

    def __init__(self, graph: HDFG, segment_axis: bool = False) -> None:
        self.graph = graph
        self.segment_axis = segment_axis
        self._slots = (max(n.node_id for n in graph.nodes()) + 1) if len(graph) else 0
        #: per-node flag: does the value carry a leading batch axis?
        self._batched: list[bool] = [False] * self._slots
        #: per-node flag (segment mode only): does the value carry a segment
        #: axis?  Batched values are laid out ``(B, S, ...)``, model-derived
        #: values ``(S, ...)``; metas and constants stay shared/scalar.
        self._segmented: list[bool] = [False] * self._slots
        self._steps: list[Callable[[BatchEnv], None]] = []
        # environment seeding, resolved once:
        #   (name, node_id, required) for per-tuple variables,
        #   (name, node_id) for models/metas, (node_id, value) for constants
        self._batch_vars: list[tuple[str, int]] = []
        self._named_vars: list[tuple[str, int, np.ndarray | None]] = []
        self._const_values: list[tuple[int, np.ndarray]] = []
        self._compile_leaves()
        # Convergence-region kernels are split off the per-batch hot path:
        # the engine checks convergence once per epoch, so they run lazily
        # in :meth:`convergence_reached` on the epoch's last batch env.
        self._conv_steps: list[Callable[[BatchEnv], None]] = []
        for node in graph.topological_order():
            if node.is_leaf:
                continue
            step = self._compile_node(node)
            if node.region is Region.CONVERGENCE:
                self._conv_steps.append(step)
            else:
                self._steps.append(step)
        self._updates = self._compile_updates()
        conv = graph.convergence_node_id
        self._conv_id = conv
        self._conv_batched = self._batched[conv] if conv is not None else False
        # Which tuple of a batch stands in for a per-tuple (batched) value
        # when the engine needs a single representative: the per-tuple
        # oracle carries the *first* tuple's env through the merge path
        # (lead env) but the *last* tuple's env through the gather and
        # sequential paths.
        self._lead_index = 0 if graph.merge_node_ids else -1

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def _compile_leaves(self) -> None:
        bound_names = set()
        for binding in self.graph.bindings:
            bound_names.add(binding.node_id)
            if binding.kind in ("input", "output"):
                self._batched[binding.node_id] = True
                if self.segment_axis:
                    self._segmented[binding.node_id] = True
                self._batch_vars.append((binding.name, binding.node_id))
            else:
                if self.segment_axis and binding.kind == "model":
                    self._segmented[binding.node_id] = True
                default = (
                    np.asarray(binding.value, dtype=np.float64)
                    if binding.value is not None
                    else None
                )
                self._named_vars.append((binding.name, binding.node_id, default))
        for node in self.graph.nodes():
            if node.kind is NodeKind.CONSTANT:
                self._const_values.append(
                    (node.node_id, np.asarray(node.constant_value, dtype=np.float64))
                )
            elif (
                node.kind is NodeKind.VARIABLE
                and node.node_id not in bound_names
                and node.constant_value is not None
            ):
                self._const_values.append(
                    (node.node_id, np.asarray(node.constant_value, dtype=np.float64))
                )

    def _compile_node(self, node: HDFGNode) -> Callable[[BatchEnv], None]:
        if node.kind is NodeKind.PRIMARY:
            return self._compile_primary(node)
        if node.kind is NodeKind.NONLINEAR:
            return self._compile_nonlinear(node)
        if node.kind is NodeKind.GROUP:
            return self._compile_group(node)
        if node.kind is NodeKind.GATHER:
            return self._compile_gather(node)
        if node.kind is NodeKind.MERGE:
            return self._compile_merge(node)
        if node.kind is NodeKind.UPDATE:
            return self._compile_update_node(node)
        raise TapeCompilationError(f"cannot compile node of kind {node.kind}")

    def _input_dims(self, node_id: int) -> tuple[int, ...]:
        return self.graph.node(node_id).dims

    def _lead_axes(self, node_id: int) -> int:
        """Number of structure axes ahead of the node's logical dims."""
        return int(self._batched[node_id]) + int(self._segmented[node_id])

    def _elementwise_preps(
        self, input_ids: tuple[int, ...]
    ) -> list[Callable[[np.ndarray], np.ndarray] | None]:
        """Broadcast fix-ups so structured operands right-align their logical dims."""
        target_rank = max(len(self._input_dims(i)) for i in input_ids)
        preps: list[Callable[[np.ndarray], np.ndarray] | None] = []
        for i in input_ids:
            pad = target_rank - len(self._input_dims(i))
            lead = self._lead_axes(i)
            if lead and pad:
                preps.append(_pad_after_lead(lead, pad))
            else:
                preps.append(None)
        return preps

    def _compile_primary(self, node: HDFGNode) -> Callable[[BatchEnv], None]:
        a, b = node.inputs
        nid = node.node_id
        self._batched[nid] = self._batched[a] or self._batched[b]
        self._segmented[nid] = self._segmented[a] or self._segmented[b]
        prep_a, prep_b = self._elementwise_preps(node.inputs)
        if node.op in _PRIMARY_UFUNCS:
            ufunc = _PRIMARY_UFUNCS[node.op]

            def step(env: BatchEnv) -> None:
                va, vb = env[a], env[b]
                if prep_a is not None:
                    va = prep_a(va)
                if prep_b is not None:
                    vb = prep_b(vb)
                env[nid] = ufunc(va, vb)

            return step
        if node.op in _COMPARE_UFUNCS:
            cmp = _COMPARE_UFUNCS[node.op]

            def step(env: BatchEnv) -> None:
                va, vb = env[a], env[b]
                if prep_a is not None:
                    va = prep_a(va)
                if prep_b is not None:
                    vb = prep_b(vb)
                env[nid] = cmp(va, vb).astype(np.float64)

            return step
        raise TapeCompilationError(f"{node.op!r} is not a primary operation")

    def _compile_nonlinear(self, node: HDFGNode) -> Callable[[BatchEnv], None]:
        (operand,) = node.inputs
        nid = node.node_id
        self._batched[nid] = self._batched[operand]
        self._segmented[nid] = self._segmented[operand]
        if node.op is Operator.SIGMOID:
            return lambda env: env.__setitem__(
                nid, 1.0 / (1.0 + np.exp(-env[operand]))
            )
        if node.op is Operator.GAUSSIAN:
            return lambda env: env.__setitem__(nid, np.exp(-np.square(env[operand])))
        if node.op is Operator.SQRT:
            return lambda env: env.__setitem__(nid, np.sqrt(env[operand]))
        raise TapeCompilationError(f"{node.op!r} is not a non-linear operation")

    def _compile_group(self, node: HDFGNode) -> Callable[[BatchEnv], None]:
        nid = node.node_id
        axis0 = (node.axis or 1) - 1
        self._batched[nid] = any(self._batched[i] for i in node.inputs)
        self._segmented[nid] = any(self._segmented[i] for i in node.inputs)
        if node.inner_op is None or len(node.inputs) == 1:
            (operand,) = node.inputs
            reduce_fn = _reducer(node.op, axis0 + self._lead_axes(operand))
            return lambda env: env.__setitem__(nid, reduce_fn(env[operand]))
        a, b = node.inputs
        ldims, rdims = self._input_dims(a), self._input_dims(b)
        if ldims == rdims or not ldims or not rdims:
            inner = _PRIMARY_UFUNCS.get(node.inner_op)
            if inner is None:
                raise TapeCompilationError(
                    f"cannot fuse {node.inner_op!r} into a batched group operation"
                )
            prep_a, prep_b = self._elementwise_preps(node.inputs)
            reduce_fn = _reducer(node.op, axis0 + self._lead_axes(nid))

            def step(env: BatchEnv) -> None:
                va, vb = env[a], env[b]
                if prep_a is not None:
                    va = prep_a(va)
                if prep_b is not None:
                    vb = prep_b(vb)
                env[nid] = reduce_fn(inner(va, vb))

            return step
        # Outer-combining contraction (generalised matrix product): only
        # lowered for unbatched operands; a batched version would need a
        # per-node einsum plan, which no current workload exercises.
        if self._batched[a] or self._batched[b]:
            raise TapeCompilationError(
                f"group node {node.name!r} outer-combines batched operands of "
                f"shapes {list(ldims)} and {list(rdims)}"
            )
        if self._segmented[a] or self._segmented[b]:
            raise TapeCompilationError(
                f"group node {node.name!r} outer-combines segment-replicated "
                "operands; the contraction plan cannot carry a segment axis"
            )
        inner = _PRIMARY_UFUNCS.get(node.inner_op)
        if inner is None:
            raise TapeCompilationError(
                f"cannot fuse {node.inner_op!r} into a contraction"
            )
        reduce_fn = _reducer(node.op, -1)
        a_rank = len(ldims) - 1
        b_rank = len(rdims) - 1

        def step(env: BatchEnv) -> None:
            left = np.moveaxis(env[a], axis0, -1)
            right = np.moveaxis(env[b], axis0, -1)
            left = left.reshape(left.shape[:-1] + (1,) * b_rank + (left.shape[-1],))
            right = right.reshape((1,) * a_rank + right.shape)
            env[nid] = reduce_fn(inner(left, right))

        return step

    def _compile_gather(self, node: HDFGNode) -> Callable[[BatchEnv], None]:
        source, index = node.inputs
        nid = node.node_id
        if self.segment_axis:
            # A gathered row would need per-segment fancy indexing over the
            # stacked source; the cluster layer executes gather graphs
            # (LRMF) per segment instead.
            raise TapeCompilationError(
                f"gather node {node.name!r} cannot be lowered with a segment axis"
            )
        if self._batched[source]:
            raise TapeCompilationError(
                f"gather node {node.name!r} selects from a per-tuple source"
            )
        if self._batched[index]:
            self._batched[nid] = True

            def step(env: BatchEnv) -> None:
                rows = np.rint(np.asarray(env[index])).astype(np.int64)
                env[nid] = env[source][rows]

            return step

        def step(env: BatchEnv) -> None:
            env[nid] = np.asarray(
                env[source][int(round(float(env[index])))], dtype=np.float64
            )

        return step

    def _compile_merge(self, node: HDFGNode) -> Callable[[BatchEnv], None]:
        (operand,) = node.inputs
        nid = node.node_id
        if node.merge_operator not in _ASSOCIATIVE_MERGE_UFUNCS:
            raise TapeCompilationError(
                f"merge operator {node.merge_operator!r} is not associative; "
                "the batched reduction would not match the tree bus"
            )
        if not self._batched[operand]:
            raise TapeCompilationError(
                f"merge node {node.name!r} aggregates a value that does not "
                "depend on the training tuple"
            )
        ufunc = _ASSOCIATIVE_MERGE_UFUNCS[node.merge_operator]
        self._batched[nid] = False
        # The reduction collapses the batch axis only; in segment mode the
        # result keeps one merged value per segment ((S, ...) layout).
        self._segmented[nid] = self._segmented[operand]
        return lambda env: env.__setitem__(nid, ufunc.reduce(env[operand], axis=0))

    def _compile_update_node(self, node: HDFGNode) -> Callable[[BatchEnv], None]:
        (operand,) = node.inputs
        nid = node.node_id
        self._batched[nid] = self._batched[operand]
        self._segmented[nid] = self._segmented[operand]
        return lambda env: env.__setitem__(nid, env[operand])

    def _compile_updates(self) -> list[tuple[str, int, bool, int | None]]:
        """Resolve each model update to (name, node, batched, gather index)."""
        updates: list[tuple[str, int, bool, int | None]] = []
        gather_nodes = [n for n in self.graph.nodes() if n.kind is NodeKind.GATHER]
        for name, var_node_id, update_node_id in self.graph.update_targets:
            update_node = self.graph.node(update_node_id)
            row_addressed = (
                var_node_id >= 0
                and update_node.dims != self.graph.node(var_node_id).dims
            )
            index_node: int | None = None
            if row_addressed:
                binding_ids = {
                    b.node_id for b in self.graph.bindings if b.name == name
                }
                for gather in gather_nodes:
                    if gather.inputs[0] in binding_ids:
                        index_node = gather.inputs[1]
                        break
                if index_node is None:
                    raise TapeCompilationError(
                        f"row-addressed update of model {name!r} has no gather index"
                    )
            updates.append(
                (name, update_node_id, self._batched[update_node_id], index_node)
            )
        return updates

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        batch_values: Mapping[str, np.ndarray | float],
        models: Mapping[str, np.ndarray],
    ) -> BatchEnv:
        """Evaluate every region for one batch; returns the node-id env list.

        ``batch_values`` binds per-tuple variables to arrays with a leading
        batch axis (and may override meta variables with scalars);
        ``models`` binds model variables to their current, shared values.
        """
        env: BatchEnv = [None] * self._slots
        for node_id, value in self._const_values:
            env[node_id] = value
        for name, node_id in self._batch_vars:
            try:
                value = batch_values[name]
            except KeyError:
                raise TapeCompilationError(
                    f"batch bindings are missing per-tuple variable {name!r}"
                ) from None
            env[node_id] = np.asarray(value, dtype=np.float64)
        for name, node_id, default in self._named_vars:
            if name in batch_values:
                env[node_id] = np.asarray(batch_values[name], dtype=np.float64)
            elif name in models:
                env[node_id] = np.asarray(models[name], dtype=np.float64)
            elif default is not None:
                env[node_id] = default
        for step in self._steps:
            step(env)
        return env

    def model_results(self, env: BatchEnv) -> dict[str, np.ndarray]:
        """Updated model value per model name (batched for gathered updates)."""
        return {
            name: np.asarray(env[node_id], dtype=np.float64)
            for name, node_id, _batched, _index in self._updates
            if env[node_id] is not None
        }

    def apply_updates(self, env: BatchEnv, models: dict[str, np.ndarray]) -> None:
        """Write the batch's model updates back into ``models``.

        Row-addressed models (LRMF) take the whole batch of gathered-row
        updates via one fancy-index assignment; duplicate row indices keep
        the last tuple's value, matching the engine's Hogwild-style
        sequential application of updates computed from batch-start models.
        """
        for name, node_id, batched, index_node in self._updates:
            value = env[node_id]
            if value is None:
                continue
            if index_node is not None:
                rows = np.rint(np.asarray(env[index_node])).astype(np.int64)
                current = np.array(models[name], dtype=np.float64)
                current[rows] = value
                models[name] = current
            elif batched:
                # A full-model update that stays per-tuple: the oracle
                # applies the lead env's value (first tuple on the merge
                # path, last tuple on the gather/sequential paths).
                models[name] = np.asarray(value, dtype=np.float64)[self._lead_index]
            else:
                models[name] = np.asarray(value, dtype=np.float64)

    def convergence_value(self, env: BatchEnv | None) -> np.ndarray | None:
        """Evaluate the convergence predicate on a finished batch env.

        Convergence kernels were kept off the per-batch hot path, so they
        are evaluated here, once per epoch, against the last batch's env.
        Returns the raw predicate value (``> 0.5`` means converged) — a
        scalar for a plain tape, one verdict per segment for a
        ``segment_axis`` tape — or None when the graph has no convergence
        condition or the env is empty.
        """
        if self._conv_id is None or env is None:
            return None
        for step in self._conv_steps:
            step(env)
        value = env[self._conv_id]
        if value is None:
            return None
        value = np.asarray(value)
        if self._conv_batched:
            # Match the env the per-tuple engine checks convergence on.
            value = value[self._lead_index]
        return value

    def convergence_reached(self, env: BatchEnv | None) -> bool:
        """True when every lane of the convergence predicate holds."""
        value = self.convergence_value(env)
        if value is None:
            return False
        return bool(np.all(value > 0.5))
