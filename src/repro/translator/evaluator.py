"""Reference (functional) evaluator for hierarchical DataFlow Graphs.

The evaluator computes node values with NumPy, following exactly the
semantics the execution engine implements in hardware.  It serves two
purposes:

* it is the functional core of the execution-engine simulator's fast path
  (the cycle model is derived separately from the static schedule);
* it is the oracle used by the test-suite to check that scheduled microcode
  execution and the analytical algorithms produce the same numbers.

Evaluation is region-aware: the update-rule region is evaluated once per
training tuple per thread, merge values are aggregated across threads by
the caller, and the post-merge/convergence regions are evaluated once per
batch/epoch with the merged values injected into the environment.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.exceptions import TranslationError
from repro.dsl.operations import Operator
from repro.translator.hdfg import HDFG, HDFGNode, NodeKind, Region

Env = dict[int, np.ndarray]


def _apply_primary(op: Operator, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if op is Operator.ADD:
        return left + right
    if op is Operator.SUB:
        return left - right
    if op is Operator.MUL:
        return left * right
    if op is Operator.DIV:
        return left / right
    if op is Operator.GT:
        return (left > right).astype(np.float64)
    if op is Operator.LT:
        return (left < right).astype(np.float64)
    raise TranslationError(f"{op.value!r} is not a primary operation")


def _apply_nonlinear(op: Operator, operand: np.ndarray) -> np.ndarray:
    if op is Operator.SIGMOID:
        return 1.0 / (1.0 + np.exp(-operand))
    if op is Operator.GAUSSIAN:
        return np.exp(-np.square(operand))
    if op is Operator.SQRT:
        return np.sqrt(operand)
    raise TranslationError(f"{op.value!r} is not a non-linear operation")


def _reduce(op: Operator, value: np.ndarray, axis: int) -> np.ndarray:
    if op is Operator.SIGMA:
        return np.sum(value, axis=axis)
    if op is Operator.PI:
        return np.prod(value, axis=axis)
    if op is Operator.NORM:
        return np.sqrt(np.sum(np.square(value), axis=axis))
    raise TranslationError(f"{op.value!r} is not a group operation")


class HDFGEvaluator:
    """Evaluates an :class:`HDFG` over NumPy values."""

    def __init__(self, graph: HDFG) -> None:
        self.graph = graph
        # The graph is immutable once translated; walking it per tuple is
        # pure overhead, so the dependency order is resolved once here.
        self._topo_order = graph.topological_order()

    # ------------------------------------------------------------------ #
    # environment helpers
    # ------------------------------------------------------------------ #
    def initial_env(self, values_by_name: Mapping[str, np.ndarray | float]) -> Env:
        """Build an environment keyed by node id from variable names.

        Meta variables not supplied fall back to their declared constant.
        """
        env: Env = {}
        for binding in self.graph.bindings:
            if binding.name in values_by_name:
                env[binding.node_id] = np.asarray(
                    values_by_name[binding.name], dtype=np.float64
                )
            elif binding.value is not None:
                env[binding.node_id] = np.asarray(binding.value, dtype=np.float64)
        return env

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, env: Env, regions: Iterable[Region]) -> Env:
        """Evaluate every node in the selected regions; returns the env.

        Leaves (variables, constants) must already be present in ``env``;
        MERGE nodes are only computed when evaluating the post-merge region
        and, in that case, must already have been injected by the caller
        (the engine aggregates them across threads).
        """
        wanted = set(regions)
        for node in self._topo_order:
            if node.node_id in env:
                continue
            if node.kind is NodeKind.CONSTANT:
                env[node.node_id] = np.asarray(node.constant_value, dtype=np.float64)
                continue
            if node.kind is NodeKind.VARIABLE:
                if node.constant_value is not None:
                    env[node.node_id] = np.asarray(node.constant_value, dtype=np.float64)
                continue
            if node.region not in wanted:
                continue
            if node.kind is NodeKind.MERGE:
                # Merge values are produced by cross-thread aggregation.
                continue
            if not all(i in env for i in node.inputs):
                continue
            env[node.node_id] = self._evaluate_node(node, env)
        return env

    def _evaluate_node(self, node: HDFGNode, env: Env) -> np.ndarray:
        values = [np.asarray(env[i], dtype=np.float64) for i in node.inputs]
        if node.kind is NodeKind.PRIMARY:
            return _apply_primary(node.op, values[0], values[1])
        if node.kind is NodeKind.NONLINEAR:
            return _apply_nonlinear(node.op, values[0])
        if node.kind is NodeKind.GATHER:
            source, index = values
            return np.asarray(source[int(round(float(index)))], dtype=np.float64)
        if node.kind is NodeKind.UPDATE:
            return values[0]
        if node.kind is NodeKind.GROUP:
            return self._evaluate_group(node, values)
        raise TranslationError(f"cannot evaluate node of kind {node.kind}")

    def _evaluate_group(self, node: HDFGNode, values: list[np.ndarray]) -> np.ndarray:
        axis0 = node.axis - 1  # 1-based constant -> 0-based axis
        if node.inner_op is None or len(values) == 1:
            return _reduce(node.op, values[0], axis0)
        left, right = values
        if left.shape == right.shape:
            combined = _apply_primary(node.inner_op, left, right)
            return _reduce(node.op, combined, axis0)
        if left.ndim == 0 or right.ndim == 0:
            combined = _apply_primary(node.inner_op, left, right)
            return _reduce(node.op, combined, axis0)
        # Different shapes: contract the shared grouping axis and
        # outer-combine the remaining axes (generalised matrix product).
        left_moved = np.moveaxis(left, axis0, -1)       # (*A, K)
        right_moved = np.moveaxis(right, axis0, -1)     # (*B, K)
        a_rank = left_moved.ndim - 1
        b_rank = right_moved.ndim - 1
        left_expanded = left_moved.reshape(left_moved.shape[:-1] + (1,) * b_rank + (left_moved.shape[-1],))
        right_expanded = right_moved.reshape((1,) * a_rank + right_moved.shape)
        combined = _apply_primary(node.inner_op, left_expanded, right_expanded)
        return _reduce(node.op, combined, -1)

    # ------------------------------------------------------------------ #
    # merge helpers (used by the execution engine and the baselines)
    # ------------------------------------------------------------------ #
    def aggregate_merge(
        self, node: HDFGNode, per_thread_values: list[np.ndarray]
    ) -> np.ndarray:
        """Combine per-thread values of a merge node with its operator."""
        if node.kind is not NodeKind.MERGE:
            raise TranslationError(f"{node.name} is not a merge node")
        if not per_thread_values:
            raise TranslationError("cannot merge an empty set of thread results")
        result = np.asarray(per_thread_values[0], dtype=np.float64)
        for value in per_thread_values[1:]:
            result = _apply_primary(node.merge_operator, result, np.asarray(value))
        return result

    def model_results(self, env: Env) -> dict[str, np.ndarray]:
        """Extract the updated model value(s) from an evaluated environment."""
        results: dict[str, np.ndarray] = {}
        for name, _var_node_id, update_node_id in self.graph.update_targets:
            node = self.graph.node(update_node_id)
            if node.inputs[0] in env:
                results[name] = np.asarray(env[node.inputs[0]], dtype=np.float64)
        return results

    def convergence_reached(self, env: Env) -> bool:
        """Evaluate the convergence condition, if one was declared."""
        conv_id = self.graph.convergence_node_id
        if conv_id is None:
            return False
        if conv_id not in env:
            return False
        return bool(np.all(np.asarray(env[conv_id]) > 0.5))
