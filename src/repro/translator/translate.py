"""Translator front end: DSL ``algo`` component → hierarchical DataFlow Graph.

The translator walks the expression DAG rooted at the updated-model
expression (and the convergence condition, if any), fuses group operations
with their inner primary operation, infers every node's dimensions, and
labels each node with the region it executes in:

* nodes feeding a merge boundary belong to the **update rule** and are run
  once per training tuple in every thread;
* nodes strictly after a merge boundary belong to the **post-merge** region
  and run once per merge batch;
* nodes reachable only from the convergence condition run once per epoch.
"""

from __future__ import annotations

import itertools

from repro.exceptions import TranslationError
from repro.dsl.algo import Algo
from repro.dsl.expressions import (
    BinaryExpression,
    ConstantExpression,
    Expression,
    GatherExpression,
    GroupExpression,
    MergeExpression,
    NonlinearExpression,
)
from repro.dsl.variables import DanaVariable, VariableKind
from repro.translator import dimensions as dim_rules
from repro.translator.hdfg import HDFG, HDFGNode, NodeKind, Region, VariableBinding


class Translator:
    """Converts an :class:`~repro.dsl.algo.Algo` into an :class:`HDFG`."""

    def __init__(self, algo: Algo) -> None:
        self.algo = algo
        self._ids = itertools.count()
        self._expr_to_node: dict[int, int] = {}
        self.graph = HDFG(name=algo.name)
        self.bindings: list[VariableBinding] = []
        # "DAnA's compiler implicitly understands that the merge function is
        # performed before the gradient descent optimizer" (§4.3): if the
        # user wrote the optimizer against the un-merged value and declared
        # the merge separately, consumers of that value are rewired to the
        # merge node.  The bypass set prevents the merge's own operand visit
        # from redirecting to itself.
        self._merge_for_operand = {m.operand.expr_id: m for m in algo.merges}
        self._merge_bypass: set[int] = set()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def translate(self) -> HDFG:
        """Build and return the hDFG for the algo component."""
        self.algo.validate()
        root_ids = [
            (var, self._visit(expr, Region.UPDATE_RULE))
            for var, expr in self.algo.model_updates
        ]
        self._mark_post_merge()
        for var, root_id in root_ids:
            update = HDFGNode(
                node_id=next(self._ids),
                kind=NodeKind.UPDATE,
                inputs=(root_id,),
                dims=self.graph.node(root_id).dims,
                name=f"model_update:{var.name}",
                region=(
                    Region.POST_MERGE if self.graph.merge_node_ids else Region.UPDATE_RULE
                ),
            )
            self.graph.add_node(update)
            self.graph.update_node_ids.append(update.node_id)
            var_node_id = self._expr_to_node.get(var.expr_id, -1)
            self.graph.update_targets.append((var.name, var_node_id, update.node_id))
            self._check_model_dims(var, root_id)
        self.graph.update_node_id = self.graph.update_node_ids[0]
        if self.algo.convergence.condition is not None:
            conv_id = self._visit(self.algo.convergence.condition, Region.CONVERGENCE)
            self.graph.convergence_node_id = conv_id
            self._mark_convergence_region(conv_id)
        self.graph.bindings = self.bindings
        return self.graph

    # ------------------------------------------------------------------ #
    # expression visitors
    # ------------------------------------------------------------------ #
    def _visit(self, expr: Expression, region: Region) -> int:
        if (
            expr.expr_id in self._merge_for_operand
            and expr.expr_id not in self._merge_bypass
            and not isinstance(expr, MergeExpression)
        ):
            # Redirect consumers of a merged value to the merge node itself.
            return self._visit(self._merge_for_operand[expr.expr_id], region)
        if expr.expr_id in self._expr_to_node:
            return self._expr_to_node[expr.expr_id]
        if isinstance(expr, DanaVariable):
            node_id = self._visit_variable(expr)
        elif isinstance(expr, ConstantExpression):
            node_id = self._visit_constant(expr)
        elif isinstance(expr, GroupExpression):
            node_id = self._visit_group(expr, region)
        elif isinstance(expr, BinaryExpression):
            node_id = self._visit_binary(expr, region)
        elif isinstance(expr, NonlinearExpression):
            node_id = self._visit_nonlinear(expr, region)
        elif isinstance(expr, GatherExpression):
            node_id = self._visit_gather(expr, region)
        elif isinstance(expr, MergeExpression):
            node_id = self._visit_merge(expr, region)
        else:
            raise TranslationError(f"unsupported expression type {type(expr).__name__}")
        self._expr_to_node[expr.expr_id] = node_id
        return node_id

    def _visit_variable(self, var: DanaVariable) -> int:
        node = HDFGNode(
            node_id=next(self._ids),
            kind=NodeKind.VARIABLE,
            dims=var.dims,
            name=var.name,
            variable_kind=var.kind.value,
            constant_value=var.value,
        )
        self.graph.add_node(node)
        binding = VariableBinding(
            node_id=node.node_id,
            name=var.name,
            kind=var.kind.value,
            dims=var.dims,
            value=var.value,
        )
        self.bindings.append(binding)
        if var.kind is VariableKind.MODEL:
            self.graph.model_node_ids.append(node.node_id)
        elif var.kind is VariableKind.INPUT:
            self.graph.input_node_ids.append(node.node_id)
        elif var.kind is VariableKind.OUTPUT:
            self.graph.output_node_ids.append(node.node_id)
        elif var.kind is VariableKind.META:
            self.graph.meta_node_ids.append(node.node_id)
        return node.node_id

    def _visit_constant(self, expr: ConstantExpression) -> int:
        node = HDFGNode(
            node_id=next(self._ids),
            kind=NodeKind.CONSTANT,
            dims=(),
            name=expr.name,
            constant_value=expr.value,
        )
        self.graph.add_node(node)
        return node.node_id

    def _visit_binary(self, expr: BinaryExpression, region: Region) -> int:
        left_id = self._visit(expr.left, region)
        right_id = self._visit(expr.right, region)
        left_dims = self.graph.node(left_id).dims
        right_dims = self.graph.node(right_id).dims
        dims = dim_rules.broadcast_primary(left_dims, right_dims)
        node = HDFGNode(
            node_id=next(self._ids),
            kind=NodeKind.PRIMARY,
            op=expr.op,
            inputs=(left_id, right_id),
            dims=dims,
            name=expr.name,
            region=region,
        )
        self.graph.add_node(node)
        return node.node_id

    def _visit_nonlinear(self, expr: NonlinearExpression, region: Region) -> int:
        operand_id = self._visit(expr.operand, region)
        dims = dim_rules.nonlinear(self.graph.node(operand_id).dims)
        node = HDFGNode(
            node_id=next(self._ids),
            kind=NodeKind.NONLINEAR,
            op=expr.op,
            inputs=(operand_id,),
            dims=dims,
            name=expr.name,
            region=region,
        )
        self.graph.add_node(node)
        return node.node_id

    def _visit_group(self, expr: GroupExpression, region: Region) -> int:
        # Fuse an inner binary operation into the group node (Figure 3b).
        operand = expr.operand
        if isinstance(operand, BinaryExpression) and operand.expr_id not in self._expr_to_node:
            left_id = self._visit(operand.left, region)
            right_id = self._visit(operand.right, region)
            left_dims = self.graph.node(left_id).dims
            right_dims = self.graph.node(right_id).dims
            dims = dim_rules.group_fused(left_dims, right_dims, expr.axis)
            node = HDFGNode(
                node_id=next(self._ids),
                kind=NodeKind.GROUP,
                op=expr.op,
                inner_op=operand.op,
                inputs=(left_id, right_id),
                dims=dims,
                axis=expr.axis,
                name=expr.name,
                region=region,
            )
        else:
            operand_id = self._visit(operand, region)
            dims = dim_rules.group_single(self.graph.node(operand_id).dims, expr.axis)
            node = HDFGNode(
                node_id=next(self._ids),
                kind=NodeKind.GROUP,
                op=expr.op,
                inputs=(operand_id,),
                dims=dims,
                axis=expr.axis,
                name=expr.name,
                region=region,
            )
        self.graph.add_node(node)
        return node.node_id

    def _visit_gather(self, expr: GatherExpression, region: Region) -> int:
        source_id = self._visit(expr.source, region)
        index_id = self._visit(expr.index, region)
        dims = dim_rules.gather(
            self.graph.node(source_id).dims, self.graph.node(index_id).dims
        )
        node = HDFGNode(
            node_id=next(self._ids),
            kind=NodeKind.GATHER,
            inputs=(source_id, index_id),
            dims=dims,
            name=expr.name,
            region=region,
        )
        self.graph.add_node(node)
        return node.node_id

    def _visit_merge(self, expr: MergeExpression, region: Region) -> int:
        self._merge_bypass.add(expr.operand.expr_id)
        operand_id = self._visit(expr.operand, Region.UPDATE_RULE)
        dims = dim_rules.merge(self.graph.node(operand_id).dims)
        node = HDFGNode(
            node_id=next(self._ids),
            kind=NodeKind.MERGE,
            inputs=(operand_id,),
            dims=dims,
            name=expr.name,
            region=Region.POST_MERGE,
            merge_operator=expr.spec.operator,
            merge_coefficient=expr.spec.coefficient,
        )
        self.graph.add_node(node)
        self.graph.merge_node_ids.append(node.node_id)
        return node.node_id

    # ------------------------------------------------------------------ #
    # region labelling and validation
    # ------------------------------------------------------------------ #
    def _mark_post_merge(self) -> None:
        """Every node downstream of a merge node runs once per batch."""
        if not self.graph.merge_node_ids:
            return
        downstream: set[int] = set(self.graph.merge_node_ids)
        changed = True
        while changed:
            changed = False
            for node in self.graph.nodes():
                if node.node_id in downstream or node.is_leaf:
                    continue
                if any(i in downstream for i in node.inputs):
                    downstream.add(node.node_id)
                    changed = True
        for node_id in downstream:
            node = self.graph.node(node_id)
            if node.region is Region.UPDATE_RULE:
                node.region = Region.POST_MERGE

    def _mark_convergence_region(self, conv_id: int) -> None:
        """Nodes reachable only from the convergence root run once per epoch."""
        conv_reachable: set[int] = set()
        stack = [conv_id]
        while stack:
            node = self.graph.node(stack.pop())
            if node.node_id in conv_reachable:
                continue
            conv_reachable.add(node.node_id)
            stack.extend(node.inputs)
        update_reachable: set[int] = set()
        stack = list(self.graph.update_node_ids)
        while stack:
            node = self.graph.node(stack.pop())
            if node.node_id in update_reachable:
                continue
            update_reachable.add(node.node_id)
            stack.extend(node.inputs)
        for node_id in conv_reachable - update_reachable:
            node = self.graph.node(node_id)
            if not node.is_leaf:
                node.region = Region.CONVERGENCE

    def _check_model_dims(self, var: DanaVariable, root_id: int) -> None:
        root_dims = self.graph.node(root_id).dims
        model_dims = var.dims
        # An update may address the whole model or one gathered row of it
        # (the LRMF case), so both shapes are legal.
        gathered_dims = model_dims[1:] if len(model_dims) > 1 else model_dims
        if root_dims not in (model_dims, gathered_dims):
            raise TranslationError(
                f"updated model has shape {list(root_dims)} but the model variable "
                f"{var.name!r} was declared with shape {list(model_dims)}"
            )


def translate(algo: Algo) -> HDFG:
    """Convenience wrapper: translate an algo component into an hDFG."""
    return Translator(algo).translate()
