"""Hierarchical DataFlow Graph (hDFG) produced by DAnA's translator.

Each node of the hDFG represents a multi-dimensional operation; each edge is
a multi-dimensional vector (paper §3/§4.4).  Nodes are *hierarchical*: a
node decomposes into atomic **sub-nodes**, each a single scalar operation of
the execution engine, which is the unit the scheduler maps onto Analytic
Units.

Group operations fuse their inner primary operation, exactly as the paper's
Figure 3b shows a single ``SIGMA`` node consuming ``mo`` and ``in``
directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator

from repro.exceptions import TranslationError
from repro.dsl.operations import Operator


class NodeKind(Enum):
    """Kinds of hDFG nodes."""

    VARIABLE = "variable"      # model / input / output / meta leaf
    CONSTANT = "constant"      # literal constant leaf
    PRIMARY = "primary"        # element-wise +,-,*,/,>,<
    NONLINEAR = "nonlinear"    # sigmoid, gaussian, sqrt
    GROUP = "group"            # sigma, pi, norm (with optional fused inner op)
    GATHER = "gather"          # row selection for LRMF-style models
    MERGE = "merge"            # merge boundary between threads
    UPDATE = "update"          # binds the updated model value to the model variable


class Region(Enum):
    """Which phase of the per-epoch computation a node belongs to.

    ``UPDATE_RULE`` nodes run once per training tuple in every thread;
    ``POST_MERGE`` nodes run once per merge batch (they consume merged
    values); ``CONVERGENCE`` nodes run once per epoch.
    """

    UPDATE_RULE = "update_rule"
    POST_MERGE = "post_merge"
    CONVERGENCE = "convergence"


@dataclass
class HDFGNode:
    """One node of the hierarchical dataflow graph."""

    node_id: int
    kind: NodeKind
    op: Operator | None = None
    inputs: tuple[int, ...] = ()
    dims: tuple[int, ...] = ()
    axis: int | None = None
    inner_op: Operator | None = None
    name: str = ""
    region: Region = Region.UPDATE_RULE
    variable_kind: str | None = None   # for VARIABLE nodes: model/input/output/meta
    constant_value: float | None = None
    merge_operator: Operator | None = None
    merge_coefficient: int | None = None

    @property
    def element_count(self) -> int:
        """Number of scalar elements produced by this node."""
        count = 1
        for d in self.dims:
            count *= d
        return count

    @property
    def is_leaf(self) -> bool:
        return self.kind in (NodeKind.VARIABLE, NodeKind.CONSTANT)

    def sub_node_count(self, input_dims: list[tuple[int, ...]]) -> int:
        """Number of atomic scalar operations this node decomposes into.

        ``input_dims`` are the dimensions of the node's inputs in order.
        Leaves contribute no compute.  Group operations contract over the
        grouping axis, so they contribute ``K`` multiplies and ``K - 1``
        reduction operations per output element (``K`` being the extent of
        the contracted axis).
        """
        if self.is_leaf or self.kind in (NodeKind.UPDATE,):
            return 0
        if self.kind in (NodeKind.PRIMARY, NodeKind.NONLINEAR):
            return self.element_count
        if self.kind is NodeKind.GATHER:
            return self.element_count  # one move per selected element
        if self.kind is NodeKind.MERGE:
            return self.element_count
        if self.kind is NodeKind.GROUP:
            contracted = self._contracted_extent(input_dims)
            per_output = contracted if self.inner_op is not None else 0
            per_output += max(0, contracted - 1)
            extra = 1 if self.op is Operator.NORM else 0  # final sqrt
            return self.element_count * per_output + extra
        raise TranslationError(f"cannot size node of kind {self.kind}")

    def reduction_depth(self, input_dims: list[tuple[int, ...]]) -> int:
        """Critical-path depth (in dependent operations) of this node."""
        if self.kind is NodeKind.GROUP:
            contracted = self._contracted_extent(input_dims)
            depth = math.ceil(math.log2(contracted)) if contracted > 1 else 1
            if self.inner_op is not None:
                depth += 1
            if self.op is Operator.NORM:
                depth += 1
            return depth
        if self.is_leaf or self.kind is NodeKind.UPDATE:
            return 0
        return 1

    def _contracted_extent(self, input_dims: list[tuple[int, ...]]) -> int:
        if self.axis is None:
            raise TranslationError(f"group node {self.name} has no axis")
        if not input_dims:
            return 1
        dims = input_dims[0]
        if self.axis > len(dims):
            raise TranslationError(
                f"group axis {self.axis} exceeds operand rank {len(dims)} in {self.name}"
            )
        return dims[self.axis - 1]


class HDFG:
    """The hierarchical dataflow graph for one UDF."""

    def __init__(self, name: str = "hdfg") -> None:
        self.name = name
        self._nodes: dict[int, HDFGNode] = {}
        self._order: list[int] = []
        self.model_node_ids: list[int] = []
        self.input_node_ids: list[int] = []
        self.output_node_ids: list[int] = []
        self.meta_node_ids: list[int] = []
        self.update_node_id: int | None = None
        self.update_node_ids: list[int] = []
        # (model variable name, model variable node id, update node id)
        self.update_targets: list[tuple[str, int, int]] = []
        self.convergence_node_id: int | None = None
        self.merge_node_ids: list[int] = []
        self.bindings: list["VariableBinding"] = []

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: HDFGNode) -> HDFGNode:
        if node.node_id in self._nodes:
            raise TranslationError(f"duplicate node id {node.node_id}")
        for dep in node.inputs:
            if dep not in self._nodes:
                raise TranslationError(
                    f"node {node.name!r} depends on unknown node id {dep}"
                )
        self._nodes[node.node_id] = node
        self._order.append(node.node_id)
        return node

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def node(self, node_id: int) -> HDFGNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TranslationError(f"no node with id {node_id}") from None

    def nodes(self) -> list[HDFGNode]:
        return [self._nodes[i] for i in self._order]

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[HDFGNode]:
        return iter(self.nodes())

    def input_dims_of(self, node: HDFGNode) -> list[tuple[int, ...]]:
        return [self.node(i).dims for i in node.inputs]

    def compute_nodes(self, regions: Iterable[Region] | None = None) -> list[HDFGNode]:
        """Non-leaf nodes, optionally filtered to the given regions."""
        selected = []
        wanted = set(regions) if regions is not None else None
        for node in self.nodes():
            if node.is_leaf or node.kind is NodeKind.UPDATE:
                continue
            if wanted is not None and node.region not in wanted:
                continue
            selected.append(node)
        return selected

    def consumers(self, node_id: int) -> list[HDFGNode]:
        return [n for n in self.nodes() if node_id in n.inputs]

    # ------------------------------------------------------------------ #
    # aggregate statistics used by the hardware generator
    # ------------------------------------------------------------------ #
    def topological_order(self) -> list[HDFGNode]:
        """Nodes in dependency order (construction order is already topological)."""
        return self.nodes()

    def total_sub_nodes(self, regions: Iterable[Region] | None = None) -> int:
        """Total number of atomic operations across the selected regions."""
        return sum(
            node.sub_node_count(self.input_dims_of(node))
            for node in self.compute_nodes(regions)
        )

    def critical_path_depth(self, regions: Iterable[Region] | None = None) -> int:
        """Length (in dependent atomic operations) of the longest path."""
        wanted = set(regions) if regions is not None else None
        depth: dict[int, int] = {}
        best = 0
        for node in self.nodes():
            if node.is_leaf:
                depth[node.node_id] = 0
                continue
            if wanted is not None and node.region not in wanted:
                depth[node.node_id] = max(
                    (depth.get(i, 0) for i in node.inputs), default=0
                )
                continue
            own = node.reduction_depth(self.input_dims_of(node))
            depth[node.node_id] = own + max(
                (depth.get(i, 0) for i in node.inputs), default=0
            )
            best = max(best, depth[node.node_id])
        return best

    def required_operators(self) -> set[Operator]:
        """The set of ALU operations the accelerator must support."""
        ops: set[Operator] = set()
        for node in self.nodes():
            if node.op is not None and node.kind is not NodeKind.GROUP:
                ops.add(node.op)
            if node.kind is NodeKind.GROUP:
                from repro.dsl.operations import GROUP_REDUCE_OP

                ops.add(GROUP_REDUCE_OP[node.op])
                if node.inner_op is not None:
                    ops.add(node.inner_op)
                if node.op is Operator.NORM:
                    ops.add(Operator.SQRT)
            if node.merge_operator is not None:
                ops.add(node.merge_operator)
        return ops

    def summary(self) -> dict[str, int]:
        """Compact statistics dictionary (useful for reports and tests)."""
        return {
            "nodes": len(self),
            "compute_nodes": len(self.compute_nodes()),
            "sub_nodes_update_rule": self.total_sub_nodes([Region.UPDATE_RULE]),
            "sub_nodes_post_merge": self.total_sub_nodes([Region.POST_MERGE]),
            "sub_nodes_convergence": self.total_sub_nodes([Region.CONVERGENCE]),
            "critical_path": self.critical_path_depth(),
            "merge_nodes": len(self.merge_node_ids),
        }


@dataclass
class VariableBinding:
    """Mapping from hDFG variable nodes back to the DSL declarations."""

    node_id: int
    name: str
    kind: str
    dims: tuple[int, ...]
    value: float | None = None
    column_slice: tuple[int, int] | None = field(default=None)
