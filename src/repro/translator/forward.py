"""Forward-only lowering of an hDFG for prediction serving.

Training graphs compute a *gradient*: the update rule scores one tuple,
compares the score against the label, and turns the error into a model
update that flows through merge nodes into the optimizer.  Serving only
needs the first third of that pipeline — the score.  :func:`forward_slice`
recovers it structurally from the translated graph, with no extra DSL
surface:

* the **score node** is the first node (in topological order) that combines
  a label-dependent operand with a label-free one — ``er = s - y`` for the
  regressions, ``margin = y * s`` for SVM, ``err = pred - value`` for LRMF.
  Its label-free input is the prediction the algorithm compares against the
  training label;
* the **forward graph** is the ancestor closure of that score node: a
  sub-hDFG sharing node ids (and node objects) with the training graph, so
  the same :class:`~repro.translator.tape.CompiledTape` and
  :class:`~repro.translator.evaluator.HDFGEvaluator` machinery — and the
  same static scheduler, for cycle accounting — run on it unchanged.

The slice never crosses a merge boundary (gradients depend on the label,
so merge nodes are always downstream of the score); a graph where it would
raises :class:`TranslationError` instead of silently lowering batched
merge semantics into a forward pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import TranslationError
from repro.translator.hdfg import HDFG, NodeKind, Region


@dataclass(frozen=True)
class ForwardGraph:
    """The forward-only slice of one training hDFG."""

    #: sub-hDFG containing only the score node's ancestor closure.
    graph: HDFG
    #: node whose evaluated value is the per-tuple prediction.
    score_node_id: int
    #: the training graph the slice was taken from.
    source: HDFG

    @property
    def score_dims(self) -> tuple[int, ...]:
        return self.graph.node(self.score_node_id).dims


def _label_dependent(graph: HDFG) -> set[int]:
    """Node ids whose value depends on an output (label) variable."""
    dependent = set(graph.output_node_ids)
    changed = True
    while changed:
        changed = False
        for node in graph.nodes():
            if node.node_id in dependent or node.is_leaf:
                continue
            if any(i in dependent for i in node.inputs):
                dependent.add(node.node_id)
                changed = True
    return dependent


def find_score_node(graph: HDFG) -> int:
    """The node holding the prediction the update rule scores labels against."""
    if not graph.output_node_ids:
        raise TranslationError(
            f"graph {graph.name!r} binds no output variable; cannot identify "
            "a prediction node for forward-only lowering"
        )
    dependent = _label_dependent(graph)
    for node in graph.topological_order():
        if node.is_leaf or node.node_id not in dependent:
            continue
        free = [i for i in node.inputs if i not in dependent]
        if not free:
            continue
        # Prefer a computed score over a bare leaf operand; ties keep
        # input order (deterministic for a given translation).
        free.sort(key=lambda i: graph.node(i).is_leaf)
        return free[0]
    raise TranslationError(
        f"graph {graph.name!r} never combines a label-free value with the "
        "output variable; cannot identify a prediction node"
    )


def _ancestor_closure(graph: HDFG, root_id: int) -> set[int]:
    closure: set[int] = set()
    stack = [root_id]
    while stack:
        node = graph.node(stack.pop())
        if node.node_id in closure:
            continue
        closure.add(node.node_id)
        stack.extend(node.inputs)
    return closure


def forward_slice(graph: HDFG) -> ForwardGraph:
    """Lower a training hDFG to its forward-only (inference) sub-graph."""
    score_id = find_score_node(graph)
    closure = _ancestor_closure(graph, score_id)
    forward = HDFG(name=f"{graph.name}_forward")
    for node in graph.nodes():
        if node.node_id not in closure:
            continue
        if node.kind is NodeKind.MERGE or node.region is not Region.UPDATE_RULE:
            raise TranslationError(
                f"forward slice of {graph.name!r} crosses a merge/epoch "
                f"boundary at node {node.name!r}; the prediction must be a "
                "pure per-tuple value"
            )
        forward.add_node(node)
    forward.bindings = [b for b in graph.bindings if b.node_id in closure]
    forward.model_node_ids = [i for i in graph.model_node_ids if i in closure]
    forward.input_node_ids = [i for i in graph.input_node_ids if i in closure]
    forward.meta_node_ids = [i for i in graph.meta_node_ids if i in closure]
    return ForwardGraph(graph=forward, score_node_id=score_id, source=graph)
