"""Dimensionality-inference rules used by the translator (paper §4.4).

The rules follow the paper's prose:

* For basic (primary) operations, equal input dimensions translate into an
  element-by-element operation; if the dimensions differ, the lower-
  dimensional input is logically replicated and the output takes the
  dimensions of the larger input.
* Non-linear operations have a single input that determines the output
  dimensions.
* For group operations, the output dimension is determined by the grouping
  axis constant: the contracted axis disappears and, when the two operands
  have *different* shapes, their remaining axes are outer-combined — this is
  what makes ``sigma(mo * in, 2)`` with ``mo`` of ``[5][10]`` and ``in`` of
  ``[2][10]`` produce a ``[5][2]`` output.
"""

from __future__ import annotations

from repro.exceptions import DimensionError

Dims = tuple[int, ...]


def element_count(dims: Dims) -> int:
    count = 1
    for d in dims:
        count *= d
    return count


def broadcast_primary(left: Dims, right: Dims) -> Dims:
    """Output dimensions of an element-wise primary operation."""
    if left == right:
        return left
    if not left:
        return right
    if not right:
        return left
    # The lower-dimensional operand is logically replicated along the leading
    # axes of the larger operand, so it must match a suffix of the larger one.
    if len(left) < len(right):
        small, large = left, right
    elif len(right) < len(left):
        small, large = right, left
    else:
        raise DimensionError(
            f"primary operation on incompatible shapes {list(left)} and {list(right)}; "
            "use a group operation to contract differing axes"
        )
    if large[len(large) - len(small):] != small:
        raise DimensionError(
            f"cannot replicate shape {list(small)} against {list(large)}: "
            "the smaller shape must match a suffix of the larger shape"
        )
    return large


def nonlinear(operand: Dims) -> Dims:
    """Output dimensions of a non-linear operation."""
    return operand


def group_single(operand: Dims, axis: int) -> Dims:
    """Output dimensions of a group operation over a single operand."""
    _check_axis(operand, axis)
    return operand[: axis - 1] + operand[axis:]


def group_fused(left: Dims, right: Dims, axis: int) -> Dims:
    """Output dimensions of a group operation fused with a binary inner op."""
    if not left or not right:
        # One operand is a scalar: the reduction happens over the other.
        operand = left or right
        return group_single(operand, axis)
    _check_axis(left, axis)
    _check_axis(right, axis)
    if left[axis - 1] != right[axis - 1]:
        raise DimensionError(
            f"group axis {axis} has extent {left[axis - 1]} on one operand and "
            f"{right[axis - 1]} on the other"
        )
    if left == right:
        return group_single(left, axis)
    left_rest = left[: axis - 1] + left[axis:]
    right_rest = right[: axis - 1] + right[axis:]
    return left_rest + right_rest


def gather(source: Dims, index: Dims) -> Dims:
    """Output dimensions of selecting one row of ``source``."""
    if index not in ((), (1,)):
        raise DimensionError(f"gather index must be a scalar, got shape {list(index)}")
    if len(source) < 1:
        raise DimensionError("cannot gather from a scalar")
    return source[1:]


def merge(operand: Dims) -> Dims:
    """Merging across threads preserves the operand dimensions."""
    return operand


def _check_axis(dims: Dims, axis: int) -> None:
    if axis < 1:
        raise DimensionError("group axis is 1-based and must be >= 1")
    if axis > len(dims):
        raise DimensionError(
            f"group axis {axis} exceeds operand rank {len(dims)} (shape {list(dims)})"
        )
