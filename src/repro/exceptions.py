"""Exception hierarchy for the DAnA reproduction library.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish library failures from programming errors in user
code.  The hierarchy mirrors the major subsystems (RDBMS substrate, DSL
front end, translator, compiler, hardware simulation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class RDBMSError(ReproError):
    """Base class for errors raised by the RDBMS substrate."""


class PageError(RDBMSError):
    """A database page is malformed or an operation on it is invalid."""


class PageFullError(PageError):
    """A tuple does not fit in the remaining free space of a page."""


class BufferPoolError(RDBMSError):
    """Invalid buffer-pool operation (e.g. unpinning a free frame)."""


class CatalogError(RDBMSError):
    """Catalog lookups or registrations failed."""


class QueryError(RDBMSError):
    """A query could not be parsed or executed."""


class StorageError(RDBMSError):
    """The simulated storage manager was used incorrectly."""


class SharedPageStoreError(RDBMSError):
    """A shared-memory page store was used after unlink or misused."""


class DSLError(ReproError):
    """Base class for user-facing DSL errors."""


class DeclarationError(DSLError):
    """A DSL variable declaration is invalid."""


class OperationError(DSLError):
    """A DSL operation was applied to incompatible operands."""


class AlgoError(DSLError):
    """The ``algo`` component is incomplete or inconsistent."""


class TranslationError(ReproError):
    """The translator could not convert the UDF to an hDFG."""


class DimensionError(TranslationError):
    """Dimension inference failed for an hDFG node."""


class CompilerError(ReproError):
    """Base class for compiler/back-end failures."""


class SchedulingError(CompilerError):
    """The static scheduler could not place an operation."""


class ResourceError(CompilerError):
    """The hardware generator cannot fit the design on the target FPGA."""


class ISAError(ReproError):
    """Encoding or decoding of an instruction failed."""


class HardwareError(ReproError):
    """The hardware simulator reached an invalid state."""


class StriderError(HardwareError):
    """A Strider program performed an illegal access."""


class ExecutionEngineError(HardwareError):
    """The execution-engine simulator reached an invalid state."""


class ConfigurationError(ReproError):
    """A component was configured with invalid parameters."""


class TransientError(ReproError):
    """A recoverable runtime fault (retrying the same work may succeed)."""


class RetryExhaustedError(ReproError):
    """A retried operation failed on every permitted attempt."""


class ServingError(ReproError):
    """Base class for prediction-serving admission/runtime failures."""


class ServerOverloadedError(ServingError):
    """The prediction server shed a request because its queue was full."""


class DeadlineExceededError(ServingError):
    """A request missed its deadline before (or while) being scored."""
