"""The shared pipelined epoch loop behind every DAnA execution path.

Before this layer existed the repo ran three divergent epoch loops: the
single-engine ``ExecutionEngine.train`` loop, the sharded lock-step runner
and the sharded thread-pool runner.  :class:`EpochDriver` is the single
loop they all share now.  A path plugs in an :class:`EpochStep` — its
strategy for computing one local epoch — and a
:class:`~repro.runtime.sync_policy.SyncPolicy` deciding when per-segment
models are merged into a global one and whether that merge may overlap with
the next epoch's preparation.

The driver is deliberately dumb about *what* an epoch computes: the step
owns batch iteration, cycle accounting and convergence evaluation.  The
driver owns the schedule — window sizing from the sync policy, the merge /
broadcast cadence, the overlap executor, and the run-level counters — so a
scheduling change (a new sync policy, a different overlap strategy) never
touches engine code again.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.obs.telemetry import telemetry
from repro.runtime.sync_policy import BulkSynchronous, SyncPolicy


class EpochStep:
    """One execution strategy's contribution to the shared epoch loop.

    ``state`` is strategy-defined: the model dict itself for a single
    engine, a per-segment list for the thread-pool strategy, a stacked
    ``(segments, ...)`` block for the lock-step strategy.  Only the step
    interprets it; the driver just threads it through the loop.
    """

    #: True when this step produces per-segment models that need merging.
    merges: bool = False

    @property
    def active(self) -> bool:
        """False when there is no data to train on (epochs still count)."""
        return True

    def begin(self, models: dict[str, np.ndarray]) -> Any:
        """Build the initial state from the global model."""
        return models

    def run_epoch(self, state: Any, epoch_index: int) -> tuple[Any, bool]:
        """Run one local epoch; returns ``(state, converged)``."""
        raise NotImplementedError

    def run_window(
        self, state: Any, epoch_index: int, count: int
    ) -> tuple[Any, bool, int]:
        """Run up to ``count`` merge-free epochs; default loops run_epoch.

        Returns ``(state, converged, epochs_executed)``.  Strategies that
        can amortise dispatch overhead across a whole staleness window
        (e.g. one thread-pool submission for ``count`` local epochs)
        override this.
        """
        executed = 0
        converged = False
        for offset in range(count):
            state, converged = self.run_epoch(state, epoch_index + offset)
            executed += 1
            if converged:
                break
        return state, converged, executed

    def merge(self, state: Any, base: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Collapse per-segment state into a global model (``merges`` only)."""
        raise NotImplementedError

    def broadcast(self, models: dict[str, np.ndarray], state: Any) -> Any:
        """Re-seed the state from a freshly merged global model."""
        return models

    def prefetch(self, epoch_index: int) -> None:
        """Prepare the next epoch's inputs; runs concurrently with an
        overlapped merge under ``async_merge`` (no-op by default)."""

    def finish(self) -> None:
        """Release resources owned by the step (thread pools, sources)."""


@dataclass
class DriverResult:
    """Outcome of one :meth:`EpochDriver.run`."""

    models: dict[str, np.ndarray]
    epochs_run: int
    merges_performed: int
    converged: bool


class EpochDriver:
    """Runs the epoch schedule for one training call."""

    def __init__(
        self,
        step: EpochStep,
        policy: SyncPolicy | None = None,
        convergence_check: bool = True,
    ) -> None:
        self.step = step
        self.policy = policy or BulkSynchronous()
        self.convergence_check = convergence_check

    def run(
        self, initial_models: Mapping[str, np.ndarray], epochs: int
    ) -> DriverResult:
        """Drive every epoch window through the step, merging at boundaries."""
        models = {
            k: np.array(v, dtype=np.float64) for k, v in initial_models.items()
        }
        step, policy = self.step, self.policy
        state = step.begin(models)
        epochs_run = 0
        merges = 0
        converged = False
        overlap_pool: ThreadPoolExecutor | None = None
        try:
            epoch = 0
            while epoch < epochs:
                boundary = policy.next_boundary(epoch, epochs)
                window = max(1, boundary - epoch + 1)
                obs = telemetry()
                span = (
                    obs.span("runtime.epoch", epoch=epoch, window=window)
                    if obs is not None
                    else None
                )
                state, window_converged, executed = step.run_window(
                    state, epoch, window
                )
                if span is not None:
                    obs.finish(span, executed=executed)
                executed = max(1, executed)
                epochs_run += executed
                epoch += executed
                stop = self.convergence_check and window_converged
                if step.merges and step.active:
                    if policy.overlap_merge and epoch < epochs and not stop:
                        # Pipelined merge: combine the segments on a
                        # background thread while the step prepares the next
                        # epoch's first batches, then block on the merged
                        # model right before it is actually consumed.
                        if overlap_pool is None:
                            overlap_pool = ThreadPoolExecutor(
                                max_workers=1, thread_name_prefix="merge-overlap"
                            )
                        future = overlap_pool.submit(step.merge, state, models)
                        step.prefetch(epoch)
                        models = future.result()
                    else:
                        models = step.merge(state, models)
                    merges += 1
                    state = step.broadcast(models, state)
                if stop:
                    converged = True
                    break
        finally:
            if overlap_pool is not None:
                overlap_pool.shutdown(wait=True)
        return DriverResult(
            models=models,
            epochs_run=epochs_run,
            merges_performed=merges,
            converged=converged,
        )
