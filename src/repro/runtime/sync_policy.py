"""Pluggable cross-segment synchronization policies for the epoch runtime.

The paper's deployment merges per-segment models every epoch behind a full
barrier — classic bulk-synchronous parallelism.  That is the right default
(it is bit-identical to sequential semantics up to model averaging), but it
serializes the cross-segment merge into the critical path and makes every
epoch wait for the slowest segment.  The :class:`SyncPolicy` hierarchy lets
the :class:`~repro.runtime.epoch_driver.EpochDriver` relax that barrier:

* :class:`BulkSynchronous` — merge after every epoch, fully barriered; the
  default and the reference semantics;
* :class:`StaleSynchronous` — segments run up to ``staleness`` local epochs
  between global merges (merge boundaries at every ``staleness``-th epoch,
  plus the final epoch), trading bounded model staleness for far fewer
  synchronization points;
* :class:`AsyncMerge` — merge after every epoch like BSP, but the merge is
  *overlapped* with the next epoch's batch preparation on a background
  thread.  It computes bit-identical models to ``bulk_synchronous`` — the
  merge order is unchanged — only the wall-clock (and the modelled critical
  path, see :mod:`repro.perf.segment_model`) is pipelined.

Policies are pure schedule objects: they decide *when* a merge happens and
whether it may overlap; the driver and the execution steps own the how.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError

SYNC_POLICIES = ("bulk_synchronous", "stale_synchronous", "async_merge")


class SyncPolicy:
    """When to merge per-segment models, and whether the merge may overlap."""

    #: policy name as accepted by ``DAnA.train(sync=...)``.
    name: str = "bulk_synchronous"
    #: maximum number of local epochs a segment may run past the last merge.
    staleness: int = 1
    #: True when the merge may run concurrently with next-epoch preparation.
    overlap_merge: bool = False

    def next_boundary(self, epoch_index: int, epochs: int) -> int:
        """Index of the next merge epoch at or after ``epoch_index``.

        The driver runs epochs ``epoch_index..next_boundary`` as one window
        and merges at the window's end.  The final epoch is always a
        boundary so every run ends on a merged global model.
        """
        return epoch_index

    def describe(self) -> dict:
        """The policy as a ``{sync, staleness, overlap_merge}`` dict."""
        return {
            "sync": self.name,
            "staleness": self.staleness,
            "overlap_merge": self.overlap_merge,
        }


class BulkSynchronous(SyncPolicy):
    """Merge every epoch behind a full barrier (the paper's semantics)."""

    name = "bulk_synchronous"


class StaleSynchronous(SyncPolicy):
    """Bounded staleness: merge only every ``staleness`` epochs.

    ``staleness=1`` degenerates to the bulk-synchronous cadence.  Between
    boundaries each segment keeps training on its own local model, so fast
    segments are never throttled by per-epoch merges; convergence is judged
    at merge boundaries only (the only points where a global model exists).
    """

    name = "stale_synchronous"

    def __init__(self, staleness: int = 2) -> None:
        if not isinstance(staleness, int) or staleness < 1:
            raise ConfigurationError(
                f"staleness must be an integer >= 1, got {staleness!r}"
            )
        self.staleness = staleness

    def next_boundary(self, epoch_index: int, epochs: int) -> int:
        """Next merge epoch: every ``staleness``-th epoch, plus the last."""
        k = self.staleness
        boundary = epoch_index + (k - 1) - (epoch_index % k)
        return min(boundary, epochs - 1)


class AsyncMerge(SyncPolicy):
    """Per-epoch merge overlapped with the next epoch's first batches."""

    name = "async_merge"
    overlap_merge = True


def make_sync_policy(name: str, staleness: int = 1) -> SyncPolicy:
    """Build a policy by name, failing fast with the valid choices.

    Staleness bounds are enforced by :class:`StaleSynchronous` itself (the
    only policy that consumes the value).
    """
    if name == "bulk_synchronous":
        return BulkSynchronous()
    if name == "stale_synchronous":
        return StaleSynchronous(staleness)
    if name == "async_merge":
        return AsyncMerge()
    raise ConfigurationError(
        f"unknown sync policy {name!r}; expected one of {SYNC_POLICIES}"
    )
