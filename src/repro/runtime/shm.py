"""Shared-memory heap-page export for process-parallel execution.

A :class:`SharedPageStore` copies a heap table's page images into **one**
``multiprocessing.shared_memory`` block so that worker *processes* can walk
the same pages with zero per-page pickling: every page a child sees is a
``memoryview`` slice of the mapped block, and both the Strider bulk walk
(``np.frombuffer`` over the slice) and :meth:`PayloadDecoder.decode_many`
consume such views unchanged.

Lifecycle
---------
The process that calls :meth:`SharedPageStore.from_heapfile` (or
:meth:`SharedPageStore.create`) **owns** the block: it must eventually call
:meth:`SharedPageStore.unlink` exactly once (usually via ``close(); unlink()``
in a ``finally`` block).  Children receive the pickle-safe
:class:`SharedPageStoreHandle` and call :meth:`SharedPageStore.attach`;
attaching after the owner unlinked raises
:class:`~repro.exceptions.SharedPageStoreError` cleanly instead of leaking a
``FileNotFoundError``.  Per-process attachments are refcounted: attaching the
same block twice in one process shares the underlying mapping, and the
mapping is closed when the last attachment closes.  Spawned children share
the owner's :mod:`multiprocessing.resource_tracker` process, so the block
has exactly one tracker registration (the owner's) and the owner's
``unlink`` retires it — which is what keeps interpreter exits free of
``leaked shared_memory objects`` warnings.

Reads served from the store are counted in a local
:class:`~repro.rdbms.storage.StorageStats` so a child's page I/O can be
shipped back and merged into the parent instead of being silently dropped.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.exceptions import SharedPageStoreError
from repro.rdbms.storage import StorageStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rdbms.buffer_pool import BufferPool
    from repro.rdbms.heapfile import HeapFile


@dataclass(frozen=True)
class SharedPageStoreHandle:
    """Pickle-safe reference to a shared page block (ship this to children)."""

    #: OS-level name of the shared-memory block.
    name: str
    #: size of every page image in bytes.
    page_size: int
    #: heap page numbers stored in the block, in block order.
    page_nos: tuple[int, ...]

    @property
    def page_count(self) -> int:
        """Number of pages stored in the block."""
        return len(self.page_nos)

    @property
    def size_bytes(self) -> int:
        """Total payload bytes of the block."""
        return self.page_count * self.page_size


class _Block:
    """One per-process mapping of a shared block, with an attach refcount."""

    __slots__ = ("shm", "refs")

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self.shm = shm
        self.refs = 1


#: per-process registry of open mappings (refcounted attach/close).
_OPEN: dict[str, _Block] = {}
_OPEN_LOCK = threading.Lock()


def live_store_names() -> list[str]:
    """Names of shared blocks still mapped in this process (leak checks)."""
    with _OPEN_LOCK:
        return sorted(name for name, block in _OPEN.items() if block.refs > 0)


class SharedPageStore:
    """Zero-copy page images in one shared-memory block.

    Instances are created with :meth:`create` / :meth:`from_heapfile`
    (owner side) or :meth:`attach` (worker side) — never directly.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        page_size: int,
        page_nos: Sequence[int],
        owner: bool,
    ) -> None:
        self._shm = shm
        self.page_size = int(page_size)
        self.page_nos = tuple(int(no) for no in page_nos)
        self._slots = {no: i for i, no in enumerate(self.page_nos)}
        self.owner = owner
        self._closed = False
        self._unlinked = False
        #: lazily-built page views; one reusable memoryview per page so
        #: repeated scans do not accumulate buffer exports.
        self._views: dict[int, memoryview] = {}
        #: page I/O served from this mapping (mergeable into the parent).
        self.stats = StorageStats()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls, pages: Iterable[tuple[int, bytes]], page_size: int
    ) -> "SharedPageStore":
        """Export ``(page_no, image)`` pairs into a new owned block."""
        items = list(pages)
        page_size = int(page_size)
        for no, image in items:
            if len(image) != page_size:
                raise SharedPageStoreError(
                    f"page {no} image is {len(image)} bytes, expected {page_size}"
                )
        size = max(1, len(items) * page_size)
        shm = shared_memory.SharedMemory(create=True, size=size)
        for slot, (_no, image) in enumerate(items):
            shm.buf[slot * page_size : (slot + 1) * page_size] = image
        store = cls(shm, page_size, [no for no, _ in items], owner=True)
        with _OPEN_LOCK:
            _OPEN[shm.name] = _Block(shm)
        return store

    @classmethod
    def from_heapfile(
        cls,
        heapfile: "HeapFile",
        pool: "BufferPool",
        page_nos: Sequence[int] | None = None,
        as_of_lsn: int | None = None,
    ) -> "SharedPageStore":
        """Export a heap table's pages (through the buffer pool) once.

        The pulls go through the caller's buffer pool on the caller's
        thread, so the physical reads are booked in the parent's
        :class:`~repro.rdbms.storage.StorageStats` exactly as a threaded
        run would book them.  ``as_of_lsn`` pins the export to a snapshot:
        the block then holds exactly the page images the heap had at that
        LSN, so worker processes are isolated from concurrent inserts by
        construction.
        """
        return cls.create(
            heapfile.scan_pages(
                pool,
                None if page_nos is None else list(page_nos),
                as_of_lsn=as_of_lsn,
            ),
            heapfile.layout.page_size,
        )

    @classmethod
    def attach(cls, handle: SharedPageStoreHandle) -> "SharedPageStore":
        """Map an existing block from its handle (worker side).

        Raises:
            SharedPageStoreError: when the block was already unlinked (or
                never created) — the owner controls the lifecycle.
        """
        with _OPEN_LOCK:
            block = _OPEN.get(handle.name)
            if block is not None and block.refs > 0:
                block.refs += 1
                return cls(block.shm, handle.page_size, handle.page_nos, owner=False)
        try:
            shm = shared_memory.SharedMemory(name=handle.name)
        except FileNotFoundError as error:
            raise SharedPageStoreError(
                f"shared page store {handle.name!r} is gone (already unlinked "
                "by its owner, or never created)"
            ) from error
        # NOTE on the resource tracker: spawned children inherit the
        # parent's tracker process, so this attach's register message is a
        # set-level duplicate of the owner's create — NOT a second cleanup
        # obligation.  Unregistering here would corrupt the shared cache
        # (the owner's later unlink would double-unregister), so we leave
        # the single registration to the owner's create/unlink pair.
        with _OPEN_LOCK:
            _OPEN[handle.name] = _Block(shm)
        return cls(shm, handle.page_size, handle.page_nos, owner=False)

    # ------------------------------------------------------------------ #
    # read surface (mirrors HeapFile.scan_pages)
    # ------------------------------------------------------------------ #
    def handle(self) -> SharedPageStoreHandle:
        """The pickle-safe handle children attach with."""
        return SharedPageStoreHandle(
            name=self._shm.name, page_size=self.page_size, page_nos=self.page_nos
        )

    def page(self, page_no: int) -> memoryview:
        """Zero-copy view of one page image."""
        if self._closed:
            raise SharedPageStoreError(
                f"shared page store {self._shm.name!r} is closed"
            )
        view = self._views.get(page_no)
        if view is None:
            slot = self._slots.get(page_no)
            if slot is None:
                raise SharedPageStoreError(
                    f"page {page_no} is not stored in shared block "
                    f"{self._shm.name!r}"
                )
            view = self._shm.buf[slot * self.page_size : (slot + 1) * self.page_size]
            self._views[page_no] = view
        self.stats.page_reads += 1
        self.stats.bytes_read += self.page_size
        return view

    def scan_pages(
        self, page_nos: Sequence[int] | None = None
    ) -> Iterator[tuple[int, memoryview]]:
        """Yield ``(page_no, view)`` pairs, mirroring ``HeapFile.scan_pages``."""
        for no in self.page_nos if page_nos is None else page_nos:
            yield no, self.page(no)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop this attachment; unmaps the block when it is the last one.

        Idempotent.  Views handed out by :meth:`page`/:meth:`scan_pages`
        are released, so callers must not use them after closing.
        """
        if self._closed:
            return
        self._closed = True
        for view in self._views.values():
            view.release()
        self._views.clear()
        name = self._shm.name
        with _OPEN_LOCK:
            block = _OPEN.get(name)
            if block is None:
                return
            block.refs -= 1
            if block.refs > 0:
                return
            del _OPEN[name]
        try:
            self._shm.close()
        except BufferError as error:  # views still exported somewhere
            raise SharedPageStoreError(
                f"shared page store {name!r} still has exported page views; "
                "drop all arrays/views derived from it before close()"
            ) from error

    def unlink(self) -> None:
        """Destroy the block (owner only; call after :meth:`close`)."""
        if not self.owner:
            raise SharedPageStoreError(
                "only the creating process may unlink a shared page store"
            )
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedPageStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        if self.owner:
            self.unlink()
